"""Figure 14 — effect of watermarking on the bins established by binning.

Paper shape to reproduce: for every attribute and every k, many bins change
size under watermarking but none drops below k (the last column of the
figure's table is all zeros).
"""

from conftest import run_once

from repro.experiments.fig14 import run_fig14

K_VALUES = (10, 20, 45)


def test_fig14_watermarking_effect_on_binning(benchmark, bench_config):
    reports = run_once(benchmark, run_fig14, bench_config, k_values=K_VALUES)

    benchmark.extra_info["series"] = [
        {
            "k": report.k,
            "rows": [
                {"column": column, "total_bins": total, "bins_changed": changed, "bins_below_k": below}
                for column, total, changed, below in report.as_rows()
            ],
        }
        for report in reports
    ]

    assert [report.k for report in reports] == list(K_VALUES)
    for report in reports:
        # Watermarking touches bins...
        assert sum(column.bins_changed for column in report.columns) > 0
        # ...but never breaks the k-anonymity binning established.
        assert not report.any_bin_below_k
