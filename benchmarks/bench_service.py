"""Service benchmark: streaming protect throughput and shard-parallel detect.

Measures the :class:`~repro.service.api.ProtectionService` paths on a table
of ``REPRO_BENCH_SIZE`` rows (default 2 500; the service targets 100k+):

* **streaming protect** — two-pass chunked ingest -> bin -> embed -> emit,
  reported as rows/s (the constant-memory path a million-row file takes);
* **detect, serial vs shard-parallel** — cold-vault detection over the
  protected CSV with 1 and 4 workers; the recovered marks are asserted
  identical (the executor's merge is bit-identical by construction) and the
  measured ratio lands in ``extra_info`` like ``bench_scaling.py``'s
  ``speedup``;
* **thread vs process runner** — the same detect with
  ``runner="thread"`` and ``runner="process"``: the thread pool is GIL-bound
  (historically ~1.0x), the process runner parses *and* hashes in its
  workers, so on a multi-core host it should win.  Marks are asserted
  bit-identical; the ratio is asserted ``> 1.1`` only at >= 100k rows on
  >= 4 cores (the acceptance bar — smaller runs and small hosts just record
  the numbers in the JSON artifact);
* **parallel protect** — pass 2 (rewrite + embed + emit) on the thread and
  process runners versus the serial single-worker path, with the output
  files asserted byte-identical; ratios land in ``extra_info`` for the
  trajectory (the same conditional multi-core bar as detect).

Run standalone for a plain-text sweep over several sizes::

    PYTHONPATH=src python benchmarks/bench_service.py            # 2.5k/20k/100k
    REPRO_BENCH_SIZES=1000,20000 PYTHONPATH=src python benchmarks/bench_service.py

or through pytest-benchmark at a single size::

    REPRO_BENCH_SIZE=20000 PYTHONPATH=src python -m pytest benchmarks/bench_service.py
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from dataclasses import dataclass

import pytest

from repro.datagen.medical import generate_medical_table
from repro.service import KeyVault, ProtectionService

TIMING_ROUNDS = 3
DETECT_WORKERS = 4
BENCH_CHUNK_SIZE = 10_000


@dataclass
class ServiceEnv:
    """A vault, a service and one protected dataset on disk."""

    base: str
    service: ProtectionService
    raw_csv: str
    protected_csv: str
    rows: int


def _build_env(base: str, size: int, *, k: int, eta: int) -> ServiceEnv:
    raw_csv = os.path.join(base, "raw.csv")
    protected_csv = os.path.join(base, "protected.csv")
    generate_medical_table(size=size, seed=2005).to_csv(raw_csv)
    vault = KeyVault.init(os.path.join(base, "vault"))
    service = ProtectionService(vault, chunk_size=BENCH_CHUNK_SIZE)
    service.register_tenant("owner", k=k, eta=eta, epsilon=5)
    service.protect("owner", raw_csv, protected_csv, dataset_id="bench")
    return ServiceEnv(
        base=base, service=service, raw_csv=raw_csv, protected_csv=protected_csv, rows=size
    )


def _best_of(func, rounds: int = TIMING_ROUNDS) -> float:
    """Best wall-clock of *rounds* runs (this host shows heavy timer noise)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


# --------------------------------------------------------------------- pytest
@pytest.fixture(scope="module")
def service_env(bench_config, tmp_path_factory):
    base = str(tmp_path_factory.mktemp("service-bench"))
    return _build_env(base, bench_config.table_size, k=bench_config.k, eta=bench_config.eta)


def test_streaming_protect_throughput(benchmark, service_env):
    out = os.path.join(service_env.base, "protect_rerun.csv")
    benchmark.pedantic(
        service_env.service.protect,
        args=("owner", service_env.raw_csv, out),
        kwargs={"dataset_id": "bench"},
        rounds=TIMING_ROUNDS,
        iterations=1,
        warmup_rounds=1,
    )
    seconds = _best_of(
        lambda: service_env.service.protect(
            "owner", service_env.raw_csv, out, dataset_id="bench"
        )
    )
    benchmark.extra_info["rows"] = service_env.rows
    benchmark.extra_info["rows_per_second"] = round(service_env.rows / seconds)


def test_detect_serial(benchmark, service_env):
    benchmark.pedantic(
        service_env.service.detect,
        args=("owner", service_env.protected_csv),
        kwargs={"dataset_id": "bench", "workers": 1},
        rounds=TIMING_ROUNDS,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["rows"] = service_env.rows


def test_detect_shard_parallel(benchmark, service_env):
    outcome = benchmark.pedantic(
        service_env.service.detect,
        args=("owner", service_env.protected_csv),
        kwargs={"dataset_id": "bench", "workers": DETECT_WORKERS},
        rounds=TIMING_ROUNDS,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["rows"] = service_env.rows
    benchmark.extra_info["workers"] = DETECT_WORKERS
    assert outcome.mark_loss == 0.0


def test_detect_soft_decode_overhead(benchmark, service_env):
    """Soft (ECC) decoding must ride along nearly for free on a full detect.

    Vote collection dominates detection; swapping the finalize stage from the
    hard two-stage majority to the soft combiner re-prices only the decode,
    so the end-to-end ratio is asserted ``<= 1.1`` (from the perf-gate size
    up — the 1k smoke just records the numbers).
    """
    service = service_env.service
    kwargs = {"dataset_id": "bench", "workers": 1}
    hard = service.detect("owner", service_env.protected_csv, **kwargs)
    soft = service.detect("owner", service_env.protected_csv, code="soft", **kwargs)
    # On the un-attacked table both decoders recover the registered mark.
    assert hard.mark_loss == 0.0
    assert soft.mark_loss == 0.0
    assert soft.code == "soft"
    assert hard.code == "repetition"
    assert len(soft.bit_confidence) == len(soft.mark)

    hard_time = _best_of(lambda: service.detect("owner", service_env.protected_csv, **kwargs))
    soft_time = _best_of(
        lambda: service.detect("owner", service_env.protected_csv, code="soft", **kwargs)
    )
    ratio = soft_time / hard_time
    benchmark.extra_info["rows"] = service_env.rows
    benchmark.extra_info["hard_seconds"] = round(hard_time, 4)
    benchmark.extra_info["soft_seconds"] = round(soft_time, 4)
    benchmark.extra_info["soft_over_hard"] = round(ratio, 3)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if service_env.rows >= 5000:
        assert ratio <= 1.1, (
            f"soft decode ({soft_time:.3f}s) must stay within 1.1x of the "
            f"majority-vote detect ({hard_time:.3f}s) at {service_env.rows} rows"
        )


def test_detect_thread_vs_process_runner(benchmark, service_env):
    """The PR 3 acceptance bar: ProcessRunner beats threads at scale, bit-identically."""
    service = service_env.service
    kwargs = {"dataset_id": "bench", "workers": DETECT_WORKERS}
    thread = service.detect("owner", service_env.protected_csv, runner="thread", **kwargs)
    process = service.detect("owner", service_env.protected_csv, runner="process", **kwargs)
    assert process.mark == thread.mark
    assert process.rows == thread.rows
    assert process.tuples_selected == thread.tuples_selected
    assert process.positions_with_votes == thread.positions_with_votes
    assert process.mark_loss == 0.0

    thread_time = _best_of(
        lambda: service.detect("owner", service_env.protected_csv, runner="thread", **kwargs)
    )
    process_time = _best_of(
        lambda: service.detect("owner", service_env.protected_csv, runner="process", **kwargs)
    )
    ratio = thread_time / process_time
    benchmark.extra_info["rows"] = service_env.rows
    benchmark.extra_info["workers"] = DETECT_WORKERS
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["thread_seconds"] = round(thread_time, 4)
    benchmark.extra_info["process_seconds"] = round(process_time, 4)
    benchmark.extra_info["process_over_thread"] = round(ratio, 2)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if service_env.rows >= 100_000 and (os.cpu_count() or 1) >= 4:
        assert ratio > 1.1, (
            f"ProcessRunner ({process_time:.3f}s) should beat ThreadRunner "
            f"({thread_time:.3f}s) at {service_env.rows} rows on {os.cpu_count()} cores"
        )


def test_protect_thread_vs_process_runner(benchmark, service_env):
    """PR 5: runner-parallel protect pass 2 — byte-identical, ratio tracked."""
    import filecmp

    service = service_env.service
    serial_out = os.path.join(service_env.base, "protect_serial.csv")
    thread_out = os.path.join(service_env.base, "protect_thread.csv")
    process_out = os.path.join(service_env.base, "protect_process.csv")
    kwargs = {"dataset_id": "bench"}
    service.protect("owner", service_env.raw_csv, serial_out, workers=1, **kwargs)
    service.protect(
        "owner", service_env.raw_csv, thread_out, workers=DETECT_WORKERS, runner="thread", **kwargs
    )
    service.protect(
        "owner", service_env.raw_csv, process_out, workers=DETECT_WORKERS, runner="process", **kwargs
    )
    assert filecmp.cmp(serial_out, thread_out, shallow=False)
    assert filecmp.cmp(serial_out, process_out, shallow=False)

    serial_time = _best_of(
        lambda: service.protect("owner", service_env.raw_csv, serial_out, workers=1, **kwargs)
    )
    process_time = _best_of(
        lambda: service.protect(
            "owner",
            service_env.raw_csv,
            process_out,
            workers=DETECT_WORKERS,
            runner="process",
            **kwargs,
        )
    )
    ratio = serial_time / process_time
    benchmark.extra_info["rows"] = service_env.rows
    benchmark.extra_info["workers"] = DETECT_WORKERS
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["serial_seconds"] = round(serial_time, 4)
    benchmark.extra_info["process_seconds"] = round(process_time, 4)
    benchmark.extra_info["process_over_serial"] = round(ratio, 2)
    benchmark.extra_info["rows_per_second_process"] = round(service_env.rows / process_time)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if service_env.rows >= 100_000 and (os.cpu_count() or 1) >= 4:
        assert ratio > 1.1, (
            f"parallel protect ({process_time:.3f}s) should beat serial "
            f"({serial_time:.3f}s) at {service_env.rows} rows on {os.cpu_count()} cores"
        )


def test_detect_parallel_equivalence_and_ratio(benchmark, service_env):
    """Shard-parallel vs serial: identical mark, ratio recorded for the trajectory."""
    service = service_env.service
    serial = service.detect("owner", service_env.protected_csv, dataset_id="bench", workers=1)
    parallel = service.detect(
        "owner", service_env.protected_csv, dataset_id="bench", workers=DETECT_WORKERS
    )
    assert parallel.mark == serial.mark
    assert parallel.tuples_selected == serial.tuples_selected
    assert parallel.mark_loss == 0.0

    serial_time = _best_of(
        lambda: service.detect("owner", service_env.protected_csv, dataset_id="bench", workers=1)
    )
    parallel_time = _best_of(
        lambda: service.detect(
            "owner", service_env.protected_csv, dataset_id="bench", workers=DETECT_WORKERS
        )
    )
    benchmark.extra_info["rows"] = service_env.rows
    benchmark.extra_info["workers"] = DETECT_WORKERS
    benchmark.extra_info["serial_seconds"] = round(serial_time, 4)
    benchmark.extra_info["parallel_seconds"] = round(parallel_time, 4)
    benchmark.extra_info["parallel_over_serial"] = round(serial_time / parallel_time, 2)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_telemetry_overhead(benchmark, service_env):
    """Observability ISSUE bar: tracing a detect costs < 5% at >= 20k rows.

    Spans sit at chunk granularity, so the traced run adds a handful of
    context-manager entries per chunk — the ratio should be noise.  The
    assertion is gated to sizes where a run is long enough to measure; small
    runs just record both timings in ``extra_info``.
    """
    from repro.telemetry.trace import Tracer, activate

    service = service_env.service
    kwargs = {"dataset_id": "bench", "workers": DETECT_WORKERS}

    def traced_detect():
        with activate(Tracer()):
            service.detect("owner", service_env.protected_csv, **kwargs)

    base_time = _best_of(
        lambda: service.detect("owner", service_env.protected_csv, **kwargs)
    )
    traced_time = _best_of(traced_detect)
    ratio = traced_time / base_time
    benchmark.extra_info["rows"] = service_env.rows
    benchmark.extra_info["workers"] = DETECT_WORKERS
    benchmark.extra_info["base_seconds"] = round(base_time, 4)
    benchmark.extra_info["traced_seconds"] = round(traced_time, 4)
    benchmark.extra_info["traced_over_base"] = round(ratio, 3)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if service_env.rows >= 20_000:
        assert traced_time <= base_time * 1.05, (
            f"tracing overhead {ratio:.1%} exceeds 5% at {service_env.rows} rows "
            f"(base {base_time:.3f}s, traced {traced_time:.3f}s)"
        )


# ----------------------------------------------------------------- standalone
def _standalone_sizes() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_SIZES", "2500,20000,100000")
    return [int(part) for part in raw.split(",") if part.strip()]


def main() -> int:
    print(f"cpu_count={os.cpu_count()} workers={DETECT_WORKERS}")
    print(
        f"{'rows':>8} {'protect s':>10} {'rows/s':>9} {'prot-proc s':>12} "
        f"{'detect-1 s':>11} {'thread s':>9} {'process s':>10} {'proc/thr':>9}"
    )
    for size in _standalone_sizes():
        with tempfile.TemporaryDirectory(prefix="repro-service-bench-") as base:
            env = _build_env(base, size, k=20, eta=50)
            out = os.path.join(base, "rerun.csv")
            protect_time = _best_of(
                lambda: env.service.protect("owner", env.raw_csv, out, dataset_id="bench")
            )
            protect_process_time = _best_of(
                lambda: env.service.protect(
                    "owner",
                    env.raw_csv,
                    out,
                    dataset_id="bench",
                    workers=DETECT_WORKERS,
                    runner="process",
                )
            )
            serial_time = _best_of(
                lambda: env.service.detect("owner", env.protected_csv, dataset_id="bench", workers=1)
            )
            thread_time = _best_of(
                lambda: env.service.detect(
                    "owner",
                    env.protected_csv,
                    dataset_id="bench",
                    workers=DETECT_WORKERS,
                    runner="thread",
                )
            )
            process_time = _best_of(
                lambda: env.service.detect(
                    "owner",
                    env.protected_csv,
                    dataset_id="bench",
                    workers=DETECT_WORKERS,
                    runner="process",
                )
            )
            print(
                f"{size:>8} {protect_time:>10.3f} {size / protect_time:>9.0f} "
                f"{protect_process_time:>12.3f} "
                f"{serial_time:>11.3f} {thread_time:>9.3f} {process_time:>10.3f} "
                f"{thread_time / process_time:>8.2f}x"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
