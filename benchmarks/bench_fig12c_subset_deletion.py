"""Figure 12(c) — mark loss under the Subset Deletion attack.

Paper shape to reproduce: mark loss grows roughly with the deleted share but
remains bounded; range deletes over the (encrypted) identifier behave like
random deletions.
"""

from conftest import run_once

from repro.experiments.fig12 import run_fig12c

ETAS = (50, 100)
FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8)


def test_fig12c_subset_deletion(benchmark, bench_config):
    points = run_once(benchmark, run_fig12c, bench_config, etas=ETAS, fractions=FRACTIONS)

    benchmark.extra_info["series"] = [
        {
            "eta": point.eta,
            "fraction": point.fraction,
            "mark_loss": round(point.mark_loss, 3),
            "soft_mark_loss": round(point.soft_mark_loss, 3),
            "corrected_bits": point.corrected_bits,
        }
        for point in points
    ]

    for eta in ETAS:
        curve = sorted((point for point in points if point.eta == eta), key=lambda p: p.fraction)
        assert curve[0].mark_loss == 0.0
        # Deleting tuples only removes votes; the mark degrades but gradually.
        assert all(point.mark_loss <= 0.4 for point in curve)
        assert curve[-1].mark_loss >= curve[0].mark_loss
    # The soft decoder never recovers fewer bits than majority voting.
    for point in points:
        assert point.soft_mark_loss <= point.mark_loss, (point.eta, point.fraction)
