"""Ablation (Section 5.2/5.3) — generalization attack vs both watermarking schemes.

The claim that motivates the hierarchical design: generalising the table one
level up the DHT — which the usage-metrics gap allows without the secret key —
destroys the single-level scheme's mark but not the hierarchical scheme's.
"""

from conftest import run_once

from repro.experiments.ablations import run_generalization_attack_ablation


def test_generalization_attack_hierarchical_vs_single_level(benchmark, bench_config):
    rows = run_once(benchmark, run_generalization_attack_ablation, bench_config, levels=(1, 2))

    benchmark.extra_info["series"] = [
        {
            "levels": row.levels,
            "hierarchical_mark_loss": round(row.hierarchical_mark_loss, 3),
            "single_level_mark_loss": round(row.single_level_mark_loss, 3),
        }
        for row in rows
    ]

    for row in rows:
        assert row.hierarchical_mark_loss <= 0.1
        assert row.single_level_mark_loss >= 0.2
        assert row.single_level_mark_loss > row.hierarchical_mark_loss
