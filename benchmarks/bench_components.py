"""Micro-benchmarks of the framework's building blocks.

Not a figure of the paper — these time the individual pipeline stages
(data generation, binning, embedding, detection, identifier encryption) so
regressions in any one stage are visible independently of the
full-experiment benchmarks.
"""

import pytest

from repro.binning.binner import BinningAgent
from repro.binning.kanonymity import EnforcementMode, KAnonymitySpec
from repro.crypto.cipher import FieldEncryptor
from repro.datagen.medical import generate_medical_table
from repro.metrics.usage_metrics import UsageMetrics
from repro.ontology.registry import standard_ontology
from repro.watermarking.hierarchical import HierarchicalWatermarker
from repro.watermarking.keys import WatermarkKey
from repro.watermarking.mark import random_mark

ROWS = 2_000


@pytest.fixture(scope="module")
def component_setup():
    table = generate_medical_table(size=ROWS, seed=1)
    trees = dict(standard_ontology().items())
    metrics = UsageMetrics.uniform_depth(trees, 1)
    spec = KAnonymitySpec(k=20, mode=EnforcementMode.MONO)
    agent = BinningAgent(trees, metrics, spec, "bench-encryption-key")
    binned = agent.bin(table).binned
    key = WatermarkKey.from_secret("bench-watermark-secret", 50)
    watermarker = HierarchicalWatermarker(key, copies=4)
    mark = random_mark(20, seed="bench")
    watermarked = watermarker.embed(binned, mark).watermarked
    return table, trees, metrics, spec, agent, binned, watermarker, mark, watermarked


def test_generate_table(benchmark):
    table = benchmark(generate_medical_table, size=ROWS, seed=2)
    assert len(table) == ROWS


def test_binning_agent(benchmark, component_setup):
    table, trees, metrics, spec, agent, *_ = component_setup
    result = benchmark(agent.bin, table)
    assert result.satisfied


def test_watermark_embedding(benchmark, component_setup):
    *_, binned, watermarker, mark, _ = component_setup
    report = benchmark(watermarker.embed, binned, mark)
    assert report.cells_embedded > 0


def test_watermark_detection(benchmark, component_setup):
    *_, watermarker, mark, watermarked = component_setup
    report = benchmark(watermarker.detect, watermarked, len(mark))
    assert report.mark == mark


def test_identifier_encryption(benchmark):
    encryptor = FieldEncryptor("bench-encryption-key")

    def encrypt_block():
        return [encryptor.encrypt(f"{i:09d}") for i in range(200)]

    tokens = benchmark(encrypt_block)
    assert len(tokens) == 200
