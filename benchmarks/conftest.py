"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation by
calling the corresponding driver in :mod:`repro.experiments`.  The drivers run
on a table whose size is controlled by the ``REPRO_BENCH_SIZE`` environment
variable (default 2 500 rows, which keeps the whole suite to a couple of
minutes; set it to 20000 to match the paper exactly).

The measured quantity is the wall-clock time of the full experiment; the
reproduced data series (the numbers the paper plots) are attached to each
benchmark via ``benchmark.extra_info`` so they appear in the JSON/console
report next to the timings.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig

DEFAULT_BENCH_SIZE = 2_500


def bench_table_size() -> int:
    return int(os.environ.get("REPRO_BENCH_SIZE", DEFAULT_BENCH_SIZE))


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The experiment configuration shared by every benchmark."""
    return ExperimentConfig(table_size=bench_table_size(), seed=2005, k=20, eta=50)


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment driver exactly once under the benchmark timer.

    The drivers are full experiments (seconds each), so the usual
    multi-round calibration of pytest-benchmark is unnecessary and would
    multiply the suite's runtime.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
