"""Ablations — LSB-baseline fragility (Section 2) and Lemmas 1–2 (Section 6).

Two smaller checks that back claims made outside the numbered figures:

* Agrawal–Kiernan style LSB watermarking collapses to chance under trivial
  bit flipping, while the hierarchical scheme shrugs off its cheapest attack
  (the generalization attack) — the paper's justification for permutation-
  based embedding.
* The closed-form interference probabilities of Lemmas 1 and 2 match a
  Monte-Carlo simulation of the embedding primitive.
"""

import pytest
from conftest import run_once

from repro.experiments.ablations import run_lsb_ablation, run_seamlessness_theory_check


def test_lsb_baseline_fragility(benchmark, bench_config):
    row = run_once(benchmark, run_lsb_ablation, bench_config)

    benchmark.extra_info["series"] = {
        "lsb_match_rate_clean": round(row.lsb_match_rate_clean, 3),
        "lsb_match_rate_after_flip": round(row.lsb_match_rate_after_flip, 3),
        "lsb_survives_flip": row.lsb_survives_flip,
        "hierarchical_loss_after_generalization": round(row.hierarchical_loss_after_generalization, 3),
    }

    assert row.lsb_match_rate_clean > 0.95
    assert not row.lsb_survives_flip
    assert row.hierarchical_loss_after_generalization <= 0.1


def test_seamlessness_lemmas_match_simulation(benchmark):
    point = run_once(
        benchmark, run_seamlessness_theory_check, group_sizes=(4, 3, 5), n_k=4, trials=50_000, seed=0
    )

    benchmark.extra_info["series"] = {
        "pr_minus_theory": round(point.pr_minus_theory, 5),
        "pr_minus_simulated": round(point.pr_minus_simulated, 5),
        "pr_plus_theory": round(point.pr_plus_theory, 5),
        "pr_plus_simulated": round(point.pr_plus_simulated, 5),
    }

    assert point.pr_minus_theory == pytest.approx(point.pr_plus_theory)
    assert point.pr_minus_simulated == pytest.approx(point.pr_minus_theory, abs=0.005)
    assert point.pr_plus_simulated == pytest.approx(point.pr_plus_theory, abs=0.005)
