"""Registry backend benchmark: mutation throughput at fleet scale.

Seeds both registry backends with ``2 x REPRO_BENCH_SIZE`` tenants through
the bulk ``import_state`` path (10 000 tenants at the CI perf-gate size of
5 000), then times a batch of *real* ``register_tenant`` mutations on each.
The file backend rewrites and fsyncs the whole ``vault.json`` document per
mutation — O(tenants) per write — while SQLite's per-row inserts stay O(1),
so the gap widens with registry size; the issue's acceptance bar is a >= 5x
SQLite advantage at 10k+ tenants, asserted here whenever the seeded registry
is that large (smaller runs just record the ratio in ``extra_info``).

Run standalone for a plain-text sweep over several registry sizes::

    PYTHONPATH=src python benchmarks/bench_registry.py           # 1k/5k/10k
    REPRO_BENCH_SIZES=500,2000 PYTHONPATH=src python benchmarks/bench_registry.py

or through pytest-benchmark at a single size (baseline-gated in CI)::

    REPRO_BENCH_SIZE=5000 PYTHONPATH=src python -m pytest benchmarks/bench_registry.py
"""

from __future__ import annotations

import itertools
import os
import sys
import tempfile
import time
from dataclasses import dataclass

import pytest

from repro.service import KeyVault

TIMING_ROUNDS = 2
MUTATIONS_PER_ROUND = 50
SEED_MULTIPLIER = 2  # tenants = 2 x REPRO_BENCH_SIZE -> 10k at the gate size
RATIO_FLOOR = 5.0
RATIO_ASSERTED_FROM = 10_000  # tenants; below this the ratio is informational


def _tenant_template(base: str) -> dict:
    """One real tenant record (JSON form) to clone for bulk seeding."""
    scratch = KeyVault.init(os.path.join(base, "template"))
    scratch.register_tenant("template")
    return scratch.export_state()["tenants"]["template"]["record"]


def _seed_state(template: dict, count: int) -> dict:
    tenants = {}
    for index in range(count):
        tenant_id = f"seed-{index:07d}"
        tenants[tenant_id] = {
            "record": {**template, "tenant_id": tenant_id},
            "datasets": {},
        }
    return {"tenants": tenants, "claims": {}}


def _timed_batch(vault: KeyVault, counter, label: str) -> float:
    """Register ``MUTATIONS_PER_ROUND`` fresh tenants; return the wall time."""
    start = time.perf_counter()
    for _ in range(MUTATIONS_PER_ROUND):
        vault.register_tenant(f"{label}-{next(counter)}")
    return time.perf_counter() - start


@dataclass
class RegistryEnv:
    base: str
    tenants: int
    roots: dict  # backend name -> vault root


def _build_env(base: str, tenants: int) -> RegistryEnv:
    template = _tenant_template(base)
    state = _seed_state(template, tenants)
    roots = {}
    for backend in ("file", "sqlite"):
        root = os.path.join(base, backend)
        KeyVault.init(root, backend=backend).import_state(state)
        roots[backend] = root
    return RegistryEnv(base=base, tenants=tenants, roots=roots)


# --------------------------------------------------------------------- pytest
#: Best mutation-batch seconds per backend, shared with the ratio test below.
_BEST: dict[str, float] = {}


@pytest.fixture(scope="module")
def registry_env(tmp_path_factory):
    from conftest import bench_table_size

    base = str(tmp_path_factory.mktemp("registry-bench"))
    return _build_env(base, SEED_MULTIPLIER * bench_table_size())


def _run_backend(benchmark, env: RegistryEnv, backend: str) -> None:
    vault = KeyVault(env.roots[backend])
    counter = itertools.count()
    durations: list[float] = []

    def round_() -> None:
        durations.append(_timed_batch(vault, counter, f"mut-{backend}"))

    benchmark.pedantic(round_, rounds=TIMING_ROUNDS, iterations=1, warmup_rounds=0)
    _BEST[backend] = best = min(durations)
    benchmark.extra_info["tenants_seeded"] = env.tenants
    benchmark.extra_info["mutations_per_round"] = MUTATIONS_PER_ROUND
    benchmark.extra_info["mutations_per_second"] = round(MUTATIONS_PER_ROUND / best)


def test_registry_mutations_file(benchmark, registry_env):
    _run_backend(benchmark, registry_env, "file")


def test_registry_mutations_sqlite(benchmark, registry_env):
    _run_backend(benchmark, registry_env, "sqlite")


def test_registry_sqlite_vs_file_ratio(benchmark, registry_env):
    """The acceptance ratio, from the timings the two tests above captured."""
    assert set(_BEST) == {"file", "sqlite"}, "backend benchmarks must run first"
    ratio = _BEST["file"] / _BEST["sqlite"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["tenants_seeded"] = registry_env.tenants
    benchmark.extra_info["file_batch_seconds"] = round(_BEST["file"], 6)
    benchmark.extra_info["sqlite_batch_seconds"] = round(_BEST["sqlite"], 6)
    benchmark.extra_info["sqlite_speedup"] = round(ratio, 2)
    if registry_env.tenants >= RATIO_ASSERTED_FROM:
        assert ratio >= RATIO_FLOOR, (
            f"sqlite should sustain >= {RATIO_FLOOR}x file-backend mutation "
            f"throughput at {registry_env.tenants} tenants, got {ratio:.2f}x"
        )


# ----------------------------------------------------------------- standalone
def _sweep(sizes: list[int]) -> None:
    print(f"{'tenants':>9}  {'file ms':>9}  {'sqlite ms':>10}  {'speedup':>8}")
    for size in sizes:
        with tempfile.TemporaryDirectory(prefix="bench-registry-") as base:
            env = _build_env(base, size)
            best: dict[str, float] = {}
            for backend in ("file", "sqlite"):
                vault = KeyVault(env.roots[backend])
                counter = itertools.count()
                best[backend] = min(
                    _timed_batch(vault, counter, f"mut-{backend}")
                    for _ in range(TIMING_ROUNDS)
                )
            print(
                f"{size:>9}  {best['file'] * 1e3:>9.1f}  {best['sqlite'] * 1e3:>10.1f}"
                f"  {best['file'] / best['sqlite']:>7.1f}x"
            )


if __name__ == "__main__":
    raw = os.environ.get("REPRO_BENCH_SIZES", "1000,5000,10000")
    _sweep([int(token) for token in raw.split(",") if token])
    sys.exit(0)
