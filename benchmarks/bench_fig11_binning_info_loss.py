"""Figure 11 — k versus information loss, mono- vs multi-attribute binning.

Paper shape to reproduce: multi-attribute binning loses far more information
than mono-attribute binning at every k, and both curves rise with k before
saturating.
"""

from conftest import run_once

from repro.experiments.fig11 import run_fig11

K_VALUES = (2, 10, 50, 150, 350)


def test_fig11_k_vs_information_loss(benchmark, bench_config):
    points = run_once(benchmark, run_fig11, bench_config, K_VALUES)

    benchmark.extra_info["series"] = [
        {
            "k": point.k,
            "mono_information_loss": round(point.mono_information_loss, 4),
            "multi_information_loss": round(point.multi_information_loss, 4),
        }
        for point in points
    ]

    # Shape assertions (not absolute numbers): multi >= mono everywhere, and
    # both curves are (weakly) increasing in k.
    for point in points:
        assert point.multi_information_loss >= point.mono_information_loss
    mono = [point.mono_information_loss for point in points]
    assert mono[0] <= mono[-1] + 1e-9
    assert points[-1].multi_information_loss > 0.5
