"""Closed-loop load benchmark: the pre-fork server vs the threading baseline.

A fleet of concurrent tenants hammers one server with the real traffic mix —
``protect`` uploads, ``detect`` round trips and ``status`` polls — each
client looping over a keep-alive :class:`ServiceClient` (closed loop: a
client issues its next request the moment the previous answer lands).  Per
phase the harness records p50/p99 latency and the aggregate rows/s, and it
re-asserts the serving-layer invariants *under concurrency*:

* every protected CSV that comes back is **byte-identical** to the
  in-process reference protect;
* every detect report is **bit-identical** to the in-process reference;
* no response is a 5xx other than deliberate ``503`` load sheds.

Two servers are driven with the identical workload:

* **threading** — the legacy ``wsgiref`` server (one request per
  connection), in-process, the PR-before baseline;
* **prefork** — the real thing: a ``repro serve`` subprocess with
  ``--processes`` workers sharing the port via ``SO_REUSEPORT`` and
  keep-alive connections (``REPRO_LOAD_PROCESSES``, default CPU count
  capped at 4).

The ISSUE's acceptance bar — pre-fork ≥ 2× rows/s with no worse p99 — is
asserted only at ≥ 32 clients on ≥ 4 cores (like ``bench_service``'s
multi-core bars); smaller runs record the ratio in ``extra_info`` and print
a note.  Knobs: ``REPRO_LOAD_CLIENTS`` (default 6), ``REPRO_LOAD_OPS``
(requests per client, default 4), ``REPRO_LOAD_PROCESSES``.  The dataset is
``min(REPRO_BENCH_SIZE, 1200)`` rows — serving concurrency is what is being
measured, not table size.

Run standalone for a plain-text sweep::

    PYTHONPATH=src python benchmarks/bench_load.py
    REPRO_LOAD_CLIENTS=32 PYTHONPATH=src python benchmarks/bench_load.py

or through pytest-benchmark (what CI's ``load-smoke`` and ``perf-gate``
jobs run)::

    PYTHONPATH=src python -m pytest benchmarks/bench_load.py --benchmark-json=BENCH_load.json
"""

from __future__ import annotations

import filecmp
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from collections import Counter
from dataclasses import dataclass, field

import pytest

from repro.datagen.medical import generate_medical_table
from repro.service import KeyVault, ProtectionService
from repro.service.http import HTTPServiceError, ProtectionApp, ServiceClient
from repro.service.http.server import serve_in_thread

#: Serving concurrency is the subject; a big table would just drown the
#: latency signal in parse time.
MAX_LOAD_ROWS = 1_200

#: Fields a detect payload must match against the in-process reference for
#: the report to count as bit-identical (floats round-trip JSON exactly).
DETECT_IDENTITY_FIELDS = (
    "mark",
    "rows",
    "tuples_selected",
    "positions_with_votes",
    "coverage",
    "mark_loss",
)


def _load_clients() -> int:
    return int(os.environ.get("REPRO_LOAD_CLIENTS", 6))


def _load_ops() -> int:
    return int(os.environ.get("REPRO_LOAD_OPS", 4))


def _load_processes() -> int:
    default = min(4, os.cpu_count() or 1)
    return int(os.environ.get("REPRO_LOAD_PROCESSES", default))


def _table_rows() -> int:
    from conftest import bench_table_size

    return max(200, min(bench_table_size(), MAX_LOAD_ROWS))


# ------------------------------------------------------------------ workload
@dataclass
class LoadEnv:
    """One vault + protected dataset + in-process reference artifacts."""

    base: str
    vault_dir: str
    raw_csv: str
    protected_csv: str
    reference_detect: dict
    token: str
    rows: int


def build_env(base: str, rows: int) -> LoadEnv:
    raw_csv = os.path.join(base, "raw.csv")
    protected_csv = os.path.join(base, "protected.csv")
    generate_medical_table(size=rows, seed=2005).to_csv(raw_csv)
    vault_dir = os.path.join(base, "vault")
    vault = KeyVault.init(vault_dir)
    service = ProtectionService(vault)
    service.register_tenant("owner", k=20, eta=50, epsilon=5)
    token = vault.issue_token("owner")
    service.protect("owner", raw_csv, protected_csv, dataset_id="reference")
    outcome = service.detect("owner", protected_csv, dataset_id="reference")
    reference = {name: getattr(outcome, name) for name in DETECT_IDENTITY_FIELDS}
    return LoadEnv(
        base=base,
        vault_dir=vault_dir,
        raw_csv=raw_csv,
        protected_csv=protected_csv,
        reference_detect=reference,
        token=token,
        rows=rows,
    )


@dataclass
class LoadResult:
    """What one closed-loop run produced."""

    elapsed: float
    latencies: dict = field(default_factory=dict)  # phase -> [seconds]
    statuses: Counter = field(default_factory=Counter)
    rows_processed: int = 0
    errors: list = field(default_factory=list)
    protect_outputs: list = field(default_factory=list)
    detect_payloads: list = field(default_factory=list)

    @property
    def rows_per_second(self) -> float:
        return self.rows_processed / self.elapsed if self.elapsed else 0.0

    def percentile(self, quantile: float, phase: str | None = None) -> float:
        values = sorted(
            value
            for name, series in self.latencies.items()
            if phase is None or name == phase
            for value in series
        )
        if not values:
            return 0.0
        index = min(len(values) - 1, int(round(quantile * (len(values) - 1))))
        return values[index]

    def unexpected_5xx(self) -> list[int]:
        """5xx statuses other than deliberate 503 load sheds."""
        return [
            status
            for status, count in self.statuses.items()
            if status >= 500 and status != 503 and count
        ]


def _op_phase(op_index: int) -> str:
    """The deterministic traffic mix: 1/8 protect, 1/2 detect, rest status."""
    if op_index % 8 == 0:
        return "protect"
    if op_index % 2 == 1:
        return "detect"
    return "status"


def run_load(env: LoadEnv, url: str, *, clients: int, ops_per_client: int) -> LoadResult:
    """Closed-loop: *clients* concurrent tenant sessions, each a keep-alive client."""
    result = LoadResult(elapsed=0.0)
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def session(client_index: int) -> None:
        client = ServiceClient(url, env.token)
        outputs, payloads, timings, statuses, failures, rows = [], [], [], [], [], 0
        barrier.wait()
        for op_index in range(ops_per_client):
            phase = _op_phase(op_index)
            started = time.perf_counter()
            try:
                if phase == "protect":
                    out = os.path.join(env.base, f"load-{client_index}-{op_index}.csv")
                    client.protect(
                        "owner", f"load-{client_index}-{op_index}", env.raw_csv, out
                    )
                    outputs.append(out)
                    rows += env.rows
                elif phase == "detect":
                    payloads.append(
                        client.detect("owner", "reference", env.protected_csv)
                    )
                    rows += env.rows
                else:
                    client.status("owner")
                statuses.append(200)
            except HTTPServiceError as error:
                statuses.append(error.status)
            except Exception as error:  # noqa: BLE001 - tally, the main thread asserts
                failures.append(repr(error))
            timings.append((phase, time.perf_counter() - started))
        client.close()
        with lock:
            result.protect_outputs.extend(outputs)
            result.detect_payloads.extend(payloads)
            result.statuses.update(statuses)
            result.errors.extend(failures)
            result.rows_processed += rows
            for phase, seconds in timings:
                result.latencies.setdefault(phase, []).append(seconds)

    threads = [
        threading.Thread(target=session, args=(index,), daemon=True)
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    result.elapsed = time.perf_counter() - started
    return result


def assert_load_invariants(env: LoadEnv, result: LoadResult) -> None:
    """Identity and cleanliness bars every load run must clear."""
    assert not result.errors, f"transport errors under load: {result.errors[:3]}"
    assert not result.unexpected_5xx(), f"unexpected 5xx: {dict(result.statuses)}"
    for out in result.protect_outputs:
        assert filecmp.cmp(out, env.protected_csv, shallow=False), (
            f"protect output {out} not byte-identical under load"
        )
    for payload in result.detect_payloads:
        for name in DETECT_IDENTITY_FIELDS:
            assert payload[name] == env.reference_detect[name], (
                f"detect field {name} diverged under load: "
                f"{payload[name]!r} != {env.reference_detect[name]!r}"
            )


# ------------------------------------------------------------------- servers
def start_prefork(vault_dir: str, processes: int) -> tuple[subprocess.Popen, str]:
    """A real ``repro serve`` subprocess; returns ``(process, url)``."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--vault", vault_dir,
         "--port", "0", "--processes", str(processes), "--json"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    buffer, depth = "", 0
    while True:  # --json pretty-prints one document; read to brace balance
        char = proc.stdout.read(1)
        if not char:
            raise RuntimeError(f"repro serve died: {proc.stderr.read()}")
        buffer += char
        depth += {"{": 1, "}": -1}.get(char, 0)
        if depth == 0 and buffer.strip():
            return proc, json.loads(buffer)["url"]


def stop_prefork(proc: subprocess.Popen) -> int:
    proc.send_signal(signal.SIGTERM)
    try:
        code = proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    return code


# --------------------------------------------------------------------- pytest
@pytest.fixture(scope="module")
def load_env(tmp_path_factory) -> LoadEnv:
    return build_env(str(tmp_path_factory.mktemp("load")), _table_rows())


def test_load_prefork_closed_loop(benchmark, load_env):
    """The gated number: mixed traffic against the pre-fork server, rows/s."""
    from conftest import run_once

    proc, url = start_prefork(load_env.vault_dir, _load_processes())
    try:
        result = run_once(
            benchmark,
            run_load,
            load_env,
            url,
            clients=_load_clients(),
            ops_per_client=_load_ops(),
        )
    finally:
        code = stop_prefork(proc)
    assert code == 0, "pre-fork server did not drain cleanly on SIGTERM"
    assert_load_invariants(load_env, result)
    sheds = result.statuses.get(503, 0)
    benchmark.extra_info.update(
        {
            "rows": load_env.rows,
            "clients": _load_clients(),
            "processes": _load_processes(),
            "rows_per_second": round(result.rows_per_second),
            "sheds_503": sheds,
            "p50_seconds": round(result.percentile(0.50), 6),
            "p99_seconds": round(result.percentile(0.99), 6),
            "p99_detect_seconds": round(result.percentile(0.99, "detect"), 6),
            "p99_status_seconds": round(result.percentile(0.99, "status"), 6),
        }
    )


def test_load_prefork_beats_threading(benchmark, load_env):
    """The acceptance bar: ≥ 2× rows/s and no worse p99 — on ≥ 4 cores, ≥ 32 clients."""
    from conftest import run_once

    clients, ops = _load_clients(), _load_ops()

    service = ProtectionService(KeyVault(load_env.vault_dir))
    server, threading_url = serve_in_thread(ProtectionApp(service))
    try:
        threading_result = run_load(
            load_env, threading_url, clients=clients, ops_per_client=ops
        )
    finally:
        server.shutdown()
        server.server_close()
    assert_load_invariants(load_env, threading_result)

    proc, prefork_url = start_prefork(load_env.vault_dir, _load_processes())
    try:
        prefork_result = run_load(
            load_env, prefork_url, clients=clients, ops_per_client=ops
        )
    finally:
        code = stop_prefork(proc)
    assert code == 0
    assert_load_invariants(load_env, prefork_result)

    ratio = (
        prefork_result.rows_per_second / threading_result.rows_per_second
        if threading_result.rows_per_second
        else 0.0
    )
    threading_p99 = threading_result.percentile(0.99)
    prefork_p99 = prefork_result.percentile(0.99)
    run_once(benchmark, lambda: None)  # carrier for extra_info, like bench_service
    benchmark.extra_info.update(
        {
            "rows": load_env.rows,
            "clients": clients,
            "processes": _load_processes(),
            "threading_rows_per_second": round(threading_result.rows_per_second),
            "prefork_rows_per_second": round(prefork_result.rows_per_second),
            "prefork_over_threading": round(ratio, 3),
            "threading_p99_seconds": round(threading_p99, 6),
            "prefork_p99_seconds": round(prefork_p99, 6),
        }
    )
    cores = os.cpu_count() or 1
    if clients >= 32 and cores >= 4:
        assert ratio >= 2.0, (
            f"pre-fork must be >= 2x threading at {clients} clients on "
            f"{cores} cores; measured {ratio:.2f}x"
        )
        assert prefork_p99 <= threading_p99 * 1.05, (
            f"pre-fork p99 must not regress: {prefork_p99:.3f}s vs "
            f"threading {threading_p99:.3f}s"
        )
    else:
        benchmark.extra_info["note"] = (
            f"acceptance bar (>=2x, p99 no worse) asserted only at >=32 clients "
            f"on >=4 cores; this run: {clients} clients, {cores} cores — recorded only"
        )


# ----------------------------------------------------------------- standalone
def _standalone() -> None:
    rows = _table_rows()
    clients_sweep = [int(c) for c in os.environ.get("REPRO_LOAD_SWEEP", "4,8").split(",")]
    ops = _load_ops()
    with tempfile.TemporaryDirectory() as base:
        env = build_env(base, rows)
        print(f"closed-loop load: {rows} rows, {ops} ops/client, mixed protect/detect/status")
        print(f"{'clients':>8} {'server':>10} {'rows/s':>10} {'p50 ms':>9} {'p99 ms':>9} {'503s':>5}")
        for clients in clients_sweep:
            service = ProtectionService(KeyVault(env.vault_dir))
            server, url = serve_in_thread(ProtectionApp(service))
            threading_result = run_load(env, url, clients=clients, ops_per_client=ops)
            server.shutdown()
            server.server_close()
            assert_load_invariants(env, threading_result)
            proc, url = start_prefork(env.vault_dir, _load_processes())
            prefork_result = run_load(env, url, clients=clients, ops_per_client=ops)
            assert stop_prefork(proc) == 0
            assert_load_invariants(env, prefork_result)
            for name, result in (("threading", threading_result), ("prefork", prefork_result)):
                print(
                    f"{clients:>8} {name:>10} {result.rows_per_second:>10.0f} "
                    f"{result.percentile(0.5) * 1e3:>9.1f} "
                    f"{result.percentile(0.99) * 1e3:>9.1f} "
                    f"{result.statuses.get(503, 0):>5}"
                )
            ratio = prefork_result.rows_per_second / max(threading_result.rows_per_second, 1e-9)
            print(f"{'':>8} {'ratio':>10} {ratio:>10.2f}x")


if __name__ == "__main__":
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    _standalone()
