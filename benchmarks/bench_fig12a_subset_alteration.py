"""Figure 12(a) — mark loss under the Subset Alteration attack.

Paper shape to reproduce: the mark degrades gracefully as more tuples are
altered (well below total loss even at 70-80 % alteration), and a smaller η
(more embedded tuples) is at least as resilient as a larger one.
"""

from conftest import run_once

from repro.experiments.fig12 import run_fig12a

ETAS = (50, 100)
FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8)


def test_fig12a_subset_alteration(benchmark, bench_config):
    points = run_once(benchmark, run_fig12a, bench_config, etas=ETAS, fractions=FRACTIONS)

    benchmark.extra_info["series"] = [
        {"eta": point.eta, "fraction": point.fraction, "mark_loss": round(point.mark_loss, 3)}
        for point in points
    ]

    for eta in ETAS:
        curve = [point for point in points if point.eta == eta]
        clean = next(point for point in curve if point.fraction == 0.0)
        heaviest = max(curve, key=lambda point: point.fraction)
        assert clean.mark_loss == 0.0
        assert heaviest.mark_loss >= clean.mark_loss
        # Robustness: even at 80 % alteration a majority of the mark survives.
        assert heaviest.mark_loss < 0.5
