"""Figure 12(a) — mark loss under the Subset Alteration attack.

Paper shape to reproduce: the mark degrades gracefully as more tuples are
altered (well below total loss even at 70-80 % alteration), and a smaller η
(more embedded tuples) is at least as resilient as a larger one.

On top of the paper's majority-vote column, each point carries the soft
decoder's loss over the *same* votes: the soft column must never lose more
bits than majority voting, and at heavy alteration (fractions >= 0.5, summed
across the etas) it must recover strictly more.
"""

from conftest import run_once

from repro.experiments.fig12 import run_fig12a

ETAS = (50, 100)
FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8)


def test_fig12a_subset_alteration(benchmark, bench_config):
    points = run_once(benchmark, run_fig12a, bench_config, etas=ETAS, fractions=FRACTIONS)

    benchmark.extra_info["series"] = [
        {
            "eta": point.eta,
            "fraction": point.fraction,
            "mark_loss": round(point.mark_loss, 3),
            "soft_mark_loss": round(point.soft_mark_loss, 3),
            "corrected_bits": point.corrected_bits,
        }
        for point in points
    ]

    for eta in ETAS:
        curve = [point for point in points if point.eta == eta]
        clean = next(point for point in curve if point.fraction == 0.0)
        heaviest = max(curve, key=lambda point: point.fraction)
        assert clean.mark_loss == 0.0
        assert heaviest.mark_loss >= clean.mark_loss
        # Robustness: even at 80 % alteration a majority of the mark survives.
        assert heaviest.mark_loss < 0.5

    # The soft decoder never recovers fewer bits than majority voting...
    for point in points:
        assert point.soft_mark_loss <= point.mark_loss, (point.eta, point.fraction)
    # ...and strictly dominates under heavy alteration (per attack rate,
    # recovered bits summed across the eta curves).
    for fraction in (f for f in FRACTIONS if f >= 0.5):
        hard_loss = sum(p.mark_loss for p in points if p.fraction == fraction)
        soft_loss = sum(p.soft_mark_loss for p in points if p.fraction == fraction)
        assert soft_loss < hard_loss, fraction
