"""Ablation (Section 5.4) — rightful-ownership disputes under Attacks 1 and 2.

The dispute protocol built on the encrypted identifying column must rule for
the true owner in both the additive (bogus mark on top) and subtractive
(bogus original) attacks.
"""

from conftest import run_once

from repro.experiments.ablations import run_ownership_ablation


def test_ownership_disputes_resolve_for_the_owner(benchmark, bench_config):
    rows = run_once(benchmark, run_ownership_ablation, bench_config)

    benchmark.extra_info["series"] = [
        {
            "attack": row.attack,
            "owner_valid": row.owner_valid,
            "attacker_valid": row.attacker_valid,
            "winner": row.winner,
        }
        for row in rows
    ]

    assert len(rows) == 2
    for row in rows:
        assert row.owner_valid
        assert not row.attacker_valid
        assert row.winner == "hospital"
