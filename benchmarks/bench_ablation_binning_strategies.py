"""Ablation (Section 4.2.1) — downward binning vs the upward Datafly baseline.

The paper argues its downward, subtree-level binning (enabled by off-line
usage metrics) retains more information than classical upward full-domain
generalization.  The benchmark measures both on the same workload.
"""

from conftest import run_once

from repro.experiments.ablations import run_binning_strategy_ablation

K_VALUES = (10, 45, 100)


def test_downward_vs_datafly_binning(benchmark, bench_config):
    rows = run_once(benchmark, run_binning_strategy_ablation, bench_config, k_values=K_VALUES)

    benchmark.extra_info["series"] = [
        {
            "k": row.k,
            "downward_information_loss": round(row.downward_information_loss, 4),
            "datafly_information_loss": round(row.datafly_information_loss, 4),
            "datafly_steps": row.datafly_steps,
        }
        for row in rows
    ]

    for row in rows:
        assert row.downward_information_loss <= row.datafly_information_loss + 1e-9
    # At moderate k the gap is large (full-domain recoding is very coarse).
    assert rows[0].datafly_information_loss > 2 * max(rows[0].downward_information_loss, 0.01)
