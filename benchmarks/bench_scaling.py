"""Scaling benchmark: batched engine + copy-on-write tables vs the seed path.

Measures the throughput of the three hot pipelines on a table of
``REPRO_BENCH_SIZE`` rows (default 2 500; the paper's scale is 20 000):

* hierarchical **embed + detect** — batched :class:`WatermarkHashEngine`
  (HMAC pads built once, one ident serialisation per tuple, digest cache
  shared between embed and detect) versus the seed's scalar per-call path
  (``batch=False``), which are bit-identical by construction;
* the four **attack simulators**, which now run on copy-on-write tables;
* raw **table copying** — ``Table.copy()`` versus ``Table.lazy_copy()``;
* the **protect hot path on both table substrates** — binning rewrite
  (identifier encryption + ultimate generalisation) followed by the tuple
  framing sweep (``ident_values`` + ``collect_votes``) on the row-store
  :class:`Table` versus the columnar :class:`ColumnarTable`, asserted
  bit-identical and >= 1.5x faster columnar at paper scale.

The asserted ``speedup`` (embed+detect, scalar / batched, best-of-3) is
attached to the benchmark JSON as ``extra_info`` so the trajectory is tracked
run over run.  Run standalone for a plain-text sweep over several sizes::

    PYTHONPATH=src python benchmarks/bench_scaling.py           # 2.5k/20k/100k
    REPRO_BENCH_SIZES=1000,20000 PYTHONPATH=src python benchmarks/bench_scaling.py

or through pytest-benchmark at a single size::

    REPRO_BENCH_SIZE=20000 PYTHONPATH=src python -m pytest benchmarks/bench_scaling.py
"""

from __future__ import annotations

import os
import sys
import time

import pytest

from repro.attacks.addition import SubsetAdditionAttack
from repro.attacks.alteration import SubsetAlterationAttack
from repro.attacks.deletion import DeletionMode, SubsetDeletionAttack
from repro.attacks.generalization_attack import GeneralizationAttack
from repro.binning.binner import BinnedTable, rewrite_table
from repro.crypto.cipher import FieldEncryptor
from repro.experiments.config import ExperimentConfig, build_workload
from repro.relational.columnar import ColumnarTable
from repro.watermarking.hierarchical import HierarchicalWatermarker

TIMING_ROUNDS = 3


def _embed_detect(workload, *, batch: bool):
    """One full embed + detect pass; returns the detection report."""
    config = workload.config
    watermarker = HierarchicalWatermarker(
        workload.framework.watermark_key,
        copies=config.effective_copies(len(workload.trees)),
        batch=batch,
    )
    binned = workload.protected.binning_result.binned
    embedding = watermarker.embed(binned, workload.protected.mark)
    return watermarker.detect(embedding.watermarked, len(workload.protected.mark))


def _best_of(func, rounds: int = TIMING_ROUNDS) -> float:
    """Best wall-clock of *rounds* runs (this host shows heavy timer noise)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _protect_hot_path(workload, raw_table):
    """Binning rewrite + tuple framing over *raw_table*'s substrate.

    This is the per-chunk core of streaming protect/detect: encrypt the
    identifying column(s), generalise the ultimate columns, then sweep the
    rewritten identifier column through the keyed-hash tuple framing
    (``ident_values`` + ``collect_votes``).  ``rewrite_table`` dispatches on
    the substrate, so passing a row-store :class:`Table` times the seed's
    per-row path and passing a :class:`ColumnarTable` times the column sweeps.
    """
    config = workload.config
    binned = workload.protected.binning_result.binned
    encryptor = FieldEncryptor(config.encryption_key)
    rewritten = rewrite_table(
        raw_table, raw_table.schema, encryptor, binned.ultimate_generalizations()
    )
    framed = BinnedTable(
        table=rewritten,
        trees=binned.trees,
        identifying_columns=binned.identifying_columns,
        quasi_columns=binned.quasi_columns,
        ultimate_nodes=binned.ultimate_nodes,
        maximal_nodes=binned.maximal_nodes,
        minimal_nodes=binned.minimal_nodes,
        k=binned.k,
    )
    watermarker = HierarchicalWatermarker(
        workload.framework.watermark_key,
        copies=config.effective_copies(len(workload.trees)),
    )
    votes = watermarker.collect_votes(framed, config.mark_length)
    return rewritten, votes


def _run_attacks(binned) -> None:
    SubsetAlterationAttack(0.3, seed=7).run(binned)
    SubsetAdditionAttack(0.3, seed=7).run(binned)
    SubsetDeletionAttack(0.3, seed=7, mode=DeletionMode.RANDOM).run(binned)
    GeneralizationAttack(levels=1).run(binned)


# --------------------------------------------------------------------- pytest
@pytest.fixture(scope="module")
def scaling_workload(bench_config):
    return build_workload(bench_config)


def test_hierarchical_embed_detect_batched(benchmark, scaling_workload):
    _embed_detect(scaling_workload, batch=True)  # warm-up: caches + allocator
    report = benchmark.pedantic(
        _embed_detect, args=(scaling_workload,), kwargs={"batch": True},
        rounds=TIMING_ROUNDS, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["rows"] = len(scaling_workload.table)
    benchmark.extra_info["tuples_selected"] = report.tuples_selected


def test_hierarchical_embed_detect_scalar_seed_path(benchmark, scaling_workload):
    report = benchmark.pedantic(
        _embed_detect, args=(scaling_workload,), kwargs={"batch": False},
        rounds=TIMING_ROUNDS, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["rows"] = len(scaling_workload.table)
    benchmark.extra_info["tuples_selected"] = report.tuples_selected


def test_embed_detect_speedup_and_equivalence(benchmark, scaling_workload):
    """Batched vs seed-scalar: bit-identical output, >= 3x at paper scale."""
    scalar_report = _embed_detect(scaling_workload, batch=False)
    batched_report = _embed_detect(scaling_workload, batch=True)
    assert batched_report.mark.bits == scalar_report.mark.bits
    assert batched_report.wmd_bits == scalar_report.wmd_bits
    assert batched_report.votes_cast == scalar_report.votes_cast

    scalar_time = _best_of(lambda: _embed_detect(scaling_workload, batch=False))
    batched_time = _best_of(lambda: _embed_detect(scaling_workload, batch=True))
    speedup = scalar_time / batched_time
    benchmark.extra_info["rows"] = len(scaling_workload.table)
    benchmark.extra_info["scalar_seconds"] = round(scalar_time, 4)
    benchmark.extra_info["batched_seconds"] = round(batched_time, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # The speedup bar is only asserted at paper scale: below that the run is
    # milliseconds long and the ratio is noise-dominated (CI smoke runs at
    # 1k rows would flake on shared runners).  Small sizes still record the
    # measured ratio in extra_info for the trajectory.
    if len(scaling_workload.table) >= 10_000:
        assert speedup >= 3.0, f"expected >= 3x, measured {speedup:.2f}x"


def test_attack_suite_on_cow_tables(benchmark, scaling_workload):
    binned = scaling_workload.protected.watermarked
    benchmark.pedantic(
        _run_attacks, args=(binned,), rounds=TIMING_ROUNDS, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["rows"] = len(binned.table)


@pytest.fixture(scope="module")
def columnar_raw_table(scaling_workload):
    return ColumnarTable(scaling_workload.table.schema, scaling_workload.table.rows)


def test_rewrite_and_frame_row_store(benchmark, scaling_workload):
    _protect_hot_path(scaling_workload, scaling_workload.table)  # warm-up
    benchmark.pedantic(
        _protect_hot_path, args=(scaling_workload, scaling_workload.table),
        rounds=TIMING_ROUNDS, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["rows"] = len(scaling_workload.table)


def test_rewrite_and_frame_columnar(benchmark, scaling_workload, columnar_raw_table):
    _protect_hot_path(scaling_workload, columnar_raw_table)  # warm-up
    benchmark.pedantic(
        _protect_hot_path, args=(scaling_workload, columnar_raw_table),
        rounds=TIMING_ROUNDS, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["rows"] = len(columnar_raw_table)


def test_columnar_speedup_and_equivalence(benchmark, scaling_workload, columnar_raw_table):
    """Columnar vs row-store hot path: bit-identical, >= 1.5x at paper scale."""
    row_rewritten, row_votes = _protect_hot_path(scaling_workload, scaling_workload.table)
    col_rewritten, col_votes = _protect_hot_path(scaling_workload, columnar_raw_table)
    assert isinstance(col_rewritten, ColumnarTable)
    assert row_rewritten == col_rewritten
    assert row_votes.votes == col_votes.votes
    assert row_votes.tuples_selected == col_votes.tuples_selected
    assert row_votes.cells_read == col_votes.cells_read
    assert row_votes.votes_cast == col_votes.votes_cast

    row_time = _best_of(lambda: _protect_hot_path(scaling_workload, scaling_workload.table))
    columnar_time = _best_of(lambda: _protect_hot_path(scaling_workload, columnar_raw_table))
    speedup = row_time / columnar_time
    benchmark.extra_info["rows"] = len(scaling_workload.table)
    benchmark.extra_info["row_seconds"] = round(row_time, 4)
    benchmark.extra_info["columnar_seconds"] = round(columnar_time, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Same noise rationale as the embed/detect bar: assert only at paper
    # scale, record the ratio everywhere for the trajectory.
    if len(scaling_workload.table) >= 10_000:
        assert speedup >= 1.5, f"expected >= 1.5x, measured {speedup:.2f}x"


def test_table_copy_deep(benchmark, scaling_workload):
    table = scaling_workload.protected.watermarked.table
    benchmark.pedantic(table.copy, rounds=TIMING_ROUNDS, iterations=1, warmup_rounds=1)


def test_table_copy_lazy(benchmark, scaling_workload):
    table = scaling_workload.protected.watermarked.table
    benchmark.pedantic(table.lazy_copy, rounds=TIMING_ROUNDS, iterations=1, warmup_rounds=1)


# ----------------------------------------------------------------- standalone
def _standalone_sizes() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_SIZES", "2500,20000,100000")
    return [int(part) for part in raw.split(",") if part.strip()]


def main() -> int:
    print(
        f"{'rows':>8} {'scalar s':>10} {'batched s':>10} {'speedup':>8} {'attacks s':>10}"
        f" {'row rw+fr':>10} {'col rw+fr':>10} {'col gain':>8}"
    )
    for size in _standalone_sizes():
        config = ExperimentConfig(table_size=size, seed=2005, k=20, eta=50)
        workload = build_workload(config)
        _embed_detect(workload, batch=True)  # warm-up
        scalar_time = _best_of(lambda: _embed_detect(workload, batch=False))
        batched_time = _best_of(lambda: _embed_detect(workload, batch=True))
        attack_time = _best_of(lambda: _run_attacks(workload.protected.watermarked))
        columnar_raw = ColumnarTable(workload.table.schema, workload.table.rows)
        row_time = _best_of(lambda: _protect_hot_path(workload, workload.table))
        columnar_time = _best_of(lambda: _protect_hot_path(workload, columnar_raw))
        print(
            f"{size:>8} {scalar_time:>10.3f} {batched_time:>10.3f} "
            f"{scalar_time / batched_time:>7.2f}x {attack_time:>10.3f}"
            f" {row_time:>10.3f} {columnar_time:>10.3f} {row_time / columnar_time:>7.2f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
