"""Figure 13 — information loss caused by watermarking versus η.

Paper shape to reproduce: the loss is minor (single-digit percent) and shrinks
as η grows, because fewer tuples are selected for embedding.
"""

from conftest import run_once

from repro.experiments.fig13 import run_fig13

ETAS = (50, 100, 200)


def test_fig13_watermark_information_loss(benchmark, bench_config):
    points = run_once(benchmark, run_fig13, bench_config, etas=ETAS)

    benchmark.extra_info["series"] = [
        {
            "eta": point.eta,
            "information_loss": round(point.information_loss, 5),
            "cells_changed": point.cells_changed,
        }
        for point in points
    ]

    assert all(0.0 <= point.information_loss < 0.1 for point in points)
    by_eta = {point.eta: point for point in points}
    assert by_eta[50].cells_changed > by_eta[200].cells_changed
    assert by_eta[50].information_loss >= by_eta[200].information_loss
