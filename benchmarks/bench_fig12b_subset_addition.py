"""Figure 12(b) — mark loss under the Subset Addition attack.

Paper shape to reproduce: bogus tuples cause little damage until their volume
rivals the original data, because their spurious votes lose the majority vote.
"""

from conftest import run_once

from repro.experiments.fig12 import run_fig12b

ETAS = (50, 100)
FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8)


def test_fig12b_subset_addition(benchmark, bench_config):
    points = run_once(benchmark, run_fig12b, bench_config, etas=ETAS, fractions=FRACTIONS)

    benchmark.extra_info["series"] = [
        {
            "eta": point.eta,
            "fraction": point.fraction,
            "mark_loss": round(point.mark_loss, 3),
            "soft_mark_loss": round(point.soft_mark_loss, 3),
            "corrected_bits": point.corrected_bits,
        }
        for point in points
    ]

    for eta in ETAS:
        curve = [point for point in points if point.eta == eta]
        clean = next(point for point in curve if point.fraction == 0.0)
        assert clean.mark_loss == 0.0
        # Addition never erases existing bits, so the loss stays moderate.
        assert all(point.mark_loss <= 0.45 for point in curve)
    # The soft decoder never recovers fewer bits than majority voting.
    for point in points:
        assert point.soft_mark_loss <= point.mark_loss, (point.eta, point.fraction)
