"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs fail with ``invalid command 'bdist_wheel'``.  This
shim lets ``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``pip install -e .`` on modern toolchains) fall back to the legacy
``setup.py develop`` path.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
