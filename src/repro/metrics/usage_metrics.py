"""Usage metrics and their off-line enforcement (Section 4.1).

The metrics bound the information loss binning and watermarking may cause:

* per-column bounds ``InfLoss_i <= bd_i`` and an average bound
  ``InfLoss <= bd_avg`` (Equation 4), or
* directly, a set of **maximal generalization nodes** per column — the
  highest nodes to which the column's leaves may ever be generalised.

The paper prefers the second form ("It is preferable that the maximal
generalization nodes are directly given as the usage metrics") and this is the
simplification its experiments use.  :class:`UsageMetrics` supports both:
explicit frontiers are used as-is, and numeric bounds are compiled off-line
into frontiers by :func:`derive_maximal_nodes` (a top-down refinement that
keeps splitting the node contributing most loss until the bound is met).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.dht.node import DHTNode
from repro.dht.tree import DomainHierarchyTree
from repro.metrics.information_loss import column_information_loss

__all__ = [
    "InformationLossBounds",
    "UsageMetrics",
    "derive_maximal_nodes",
    "frontier_at_depth",
]


@dataclass(frozen=True)
class InformationLossBounds:
    """The bound set ``B = {bd_1, ..., bd_CN}`` plus ``bd_avg`` of Equation 4."""

    per_column: Mapping[str, float]
    average: float | None = None

    def __post_init__(self) -> None:
        for column, bound in self.per_column.items():
            if not 0.0 <= bound <= 1.0:
                raise ValueError(f"bound for column {column!r} must lie in [0, 1], got {bound}")
        if self.average is not None and not 0.0 <= self.average <= 1.0:
            raise ValueError(f"average bound must lie in [0, 1], got {self.average}")

    def bound_for(self, column: str) -> float:
        try:
            return self.per_column[column]
        except KeyError:
            raise KeyError(f"no information-loss bound for column {column!r}") from None

    def satisfied_by(self, per_column_losses: Mapping[str, float]) -> bool:
        """Check Equation (4) against measured per-column losses."""
        for column, loss in per_column_losses.items():
            if column in self.per_column and loss > self.per_column[column] + 1e-12:
                return False
        if self.average is not None and per_column_losses:
            mean = sum(per_column_losses.values()) / len(per_column_losses)
            if mean > self.average + 1e-12:
                return False
        return True


def frontier_at_depth(tree: DomainHierarchyTree, depth: int) -> list[DHTNode]:
    """The valid cut consisting of every node at *depth* (or shallower leaves).

    A convenient way to specify maximal generalization nodes uniformly:
    ``depth=0`` is the root cut (no constraint on generalisation), larger
    depths constrain generalisation to ever finer frontiers.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    frontier: list[DHTNode] = []

    def descend(node: DHTNode, remaining: int) -> None:
        if remaining == 0 or node.is_leaf:
            frontier.append(node)
            return
        for child in tree.children(node):
            descend(child, remaining - 1)

    descend(tree.root, depth)
    return frontier


def derive_maximal_nodes(
    tree: DomainHierarchyTree,
    counts: Mapping[DHTNode, int],
    bound: float,
) -> list[DHTNode]:
    """Off-line enforcement: compile a loss bound into maximal generalization nodes.

    Starting from the root cut, repeatedly split the cut node whose
    generalisation contributes the most information loss until the cut's loss
    is within *bound*.  The result is a valid generalization in which every
    node is (greedily) as high as the bound permits — the paper's definition
    of maximal generalization nodes.  A bound of 1.0 returns the root cut, a
    bound of 0.0 the leaf cut.
    """
    if not 0.0 <= bound <= 1.0:
        raise ValueError("bound must lie in [0, 1]")
    cut: list[DHTNode] = [tree.root]

    def node_contribution(node: DHTNode) -> float:
        return column_information_loss(tree, _replace_with_children(tree, cut, node), counts)

    while True:
        loss = column_information_loss(tree, cut, counts)
        if loss <= bound + 1e-12:
            return sorted(cut, key=lambda node: node.sort_key)
        splittable = [node for node in cut if not node.is_leaf]
        if not splittable:  # pragma: no cover - loss of a leaf cut is always 0
            return sorted(cut, key=lambda node: node.sort_key)
        # Split the node whose removal (replacement by its children) lowers
        # the loss the most.
        best = min(splittable, key=lambda node: (node_contribution(node), node.sort_key))
        cut = [other for other in cut if other is not best] + list(tree.children(best))


def _replace_with_children(
    tree: DomainHierarchyTree, cut: Sequence[DHTNode], node: DHTNode
) -> list[DHTNode]:
    """The cut obtained from *cut* by replacing *node* with its children."""
    return [other for other in cut if other is not node] + list(tree.children(node))


@dataclass
class UsageMetrics:
    """Usage metrics for a whole table.

    Exactly one of the two specification styles is used per column:

    * ``maximal_nodes`` — explicit frontier (node names) per column, the
      paper's preferred, directly-given form, or
    * ``bounds`` — Equation (4) bounds compiled off-line on first use.

    ``watermark_slack`` implements the remark at the end of Section 5.1: the
    bounds used to *derive* the frontier can be set slightly lower than the
    true usage limit so that the occasional permutation up to a maximal
    generalization node stays within what the data usage tolerates.
    """

    maximal_node_names: dict[str, tuple[str, ...]] = field(default_factory=dict)
    bounds: InformationLossBounds | None = None
    watermark_slack: float = 0.0
    _cache: dict[str, list[DHTNode]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.watermark_slack < 1.0:
            raise ValueError("watermark_slack must lie in [0, 1)")

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_maximal_nodes(cls, frontiers: Mapping[str, Sequence[DHTNode]]) -> "UsageMetrics":
        """Build metrics from explicit per-column frontiers of nodes."""
        return cls(
            maximal_node_names={
                column: tuple(node.name for node in nodes) for column, nodes in frontiers.items()
            }
        )

    @classmethod
    def from_bounds(
        cls, bounds: InformationLossBounds, *, watermark_slack: float = 0.0
    ) -> "UsageMetrics":
        """Build metrics from Equation (4) bounds (compiled lazily per column)."""
        return cls(bounds=bounds, watermark_slack=watermark_slack)

    @classmethod
    def uniform_depth(
        cls, trees: Mapping[str, DomainHierarchyTree], depth: int
    ) -> "UsageMetrics":
        """Frontier at a uniform depth for every column (depth 0 = root cut)."""
        return cls.from_maximal_nodes(
            {column: frontier_at_depth(tree, depth) for column, tree in trees.items()}
        )

    # ----------------------------------------------------------------- queries
    def columns(self) -> list[str]:
        if self.maximal_node_names:
            return list(self.maximal_node_names)
        if self.bounds is not None:
            return list(self.bounds.per_column)
        return []

    def maximal_nodes(
        self,
        column: str,
        tree: DomainHierarchyTree,
        counts: Mapping[DHTNode, int] | None = None,
    ) -> list[DHTNode]:
        """The maximal generalization nodes for *column*.

        Explicit frontiers are resolved against *tree*; bound-style metrics
        are compiled with :func:`derive_maximal_nodes`, which requires the
        per-leaf entry *counts* of the column.
        """
        if column in self._cache:
            return list(self._cache[column])
        if column in self.maximal_node_names:
            frontier = [tree.node(name) for name in self.maximal_node_names[column]]
            if not tree.is_valid_cut(frontier):
                raise ValueError(
                    f"maximal generalization nodes for column {column!r} are not a valid generalization"
                )
        elif self.bounds is not None:
            if counts is None:
                raise ValueError(
                    f"deriving maximal nodes for column {column!r} from bounds requires leaf counts"
                )
            bound = max(0.0, self.bounds.bound_for(column) - self.watermark_slack)
            frontier = derive_maximal_nodes(tree, counts, bound)
        else:
            # No constraint specified: the root cut (generalisation unconstrained).
            frontier = [tree.root]
        self._cache[column] = frontier
        return list(frontier)

    def allows_cut(
        self,
        column: str,
        tree: DomainHierarchyTree,
        cut: Sequence[DHTNode],
        counts: Mapping[DHTNode, int] | None = None,
    ) -> bool:
        """Whether *cut* stays at or below the column's maximal frontier."""
        frontier = self.maximal_nodes(column, tree, counts)
        frontier_set = set(frontier)
        for node in cut:
            if not any(step in frontier_set for step in node.ancestors(include_self=True)):
                return False
        return True
