"""Usage metrics: information loss and its off-line enforcement.

Binning and watermarking both degrade data quality.  The paper bounds that
degradation with *usage metrics* (Section 4.1): per-column information-loss
bounds and an average bound (Equation 4), enforced **off-line** by compiling
them into a frontier of *maximal generalization nodes* per domain hierarchy
tree.  Binning may never generalise a value beyond its maximal generalization
node, which is what enables the downward binning of Section 4.2 and provides
the watermark bandwidth of Section 5.1.
"""

from repro.metrics.information_loss import (
    categorical_cut_loss,
    column_information_loss,
    leaf_counts,
    numeric_cut_loss,
    specificity_loss,
    table_information_loss,
    total_information_loss,
)
from repro.metrics.usage_metrics import (
    InformationLossBounds,
    UsageMetrics,
    derive_maximal_nodes,
    frontier_at_depth,
)

__all__ = [
    "leaf_counts",
    "categorical_cut_loss",
    "numeric_cut_loss",
    "column_information_loss",
    "table_information_loss",
    "total_information_loss",
    "specificity_loss",
    "InformationLossBounds",
    "UsageMetrics",
    "derive_maximal_nodes",
    "frontier_at_depth",
]
