"""Information-loss metrics (Equations 1–3 of the paper) and specificity loss.

Given a generalization — a valid cut ``{p1, ..., pM}`` of a column's domain
hierarchy tree — the paper quantifies the loss of specificity it causes:

* **categorical columns** (Equation 1): each cut node ``pi`` makes the
  ``|Si|`` leaves below it indiscriminable, so the ``ni`` entries falling
  under ``pi`` each lose ``(|Si| - 1) / |S|`` where ``S`` is the set of all
  leaves,
* **numeric columns** (Equation 2): an entry generalized to the interval
  ``[Li, Ui)`` loses ``(Ui - Li) / (U - L)`` of the domain width,
* **table level** (Equation 3): the normalised loss is the average of the
  per-column losses over the ``CN`` generalized columns.

Section 4.2.2 additionally defines the cheaper *specificity loss*
``(N - Ng) / N`` (``N`` leaves, ``Ng`` cut nodes) used to rank candidate
generalizations during multi-attribute binning.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.dht.node import DHTNode, Interval
from repro.dht.tree import DomainHierarchyTree

__all__ = [
    "leaf_counts",
    "categorical_cut_loss",
    "numeric_cut_loss",
    "column_information_loss",
    "table_information_loss",
    "total_information_loss",
    "specificity_loss",
]


def leaf_counts(tree: DomainHierarchyTree, raw_values: Iterable[object]) -> dict[DHTNode, int]:
    """Count how many raw column values fall under each leaf of *tree*.

    This is the ``ni`` bookkeeping shared by every loss computation and by the
    binning algorithms; computing it once per column avoids repeated scans of
    the table.
    """
    counts: dict[DHTNode, int] = {leaf: 0 for leaf in tree.leaves()}
    for value in raw_values:
        counts[tree.leaf_for_raw(value)] += 1
    return counts


def _entries_under(node: DHTNode, counts: Mapping[DHTNode, int]) -> int:
    return sum(counts.get(leaf, 0) for leaf in node.leaves())


def categorical_cut_loss(
    tree: DomainHierarchyTree,
    cut: Sequence[DHTNode],
    counts: Mapping[DHTNode, int],
) -> float:
    """Equation (1): information loss of a categorical generalization.

    ``InfLoss_c = sum_i n_i * (|S_i| - 1) / |S|  /  sum_i n_i`` where ``S_i``
    is the leaf set under cut node ``p_i`` and ``S`` their union.  Leaves kept
    ungeneralized contribute ``|S_i| = 1``, i.e. zero loss.
    """
    if not tree.is_valid_cut(cut):
        raise ValueError(f"cut is not a valid generalization of attribute {tree.attribute!r}")
    union_size = sum(len(node.leaves()) for node in cut)
    if union_size == 0:
        raise ValueError("cut covers no leaves")
    total_entries = 0
    weighted = 0.0
    for node in cut:
        node_leaves = node.leaves()
        entries = sum(counts.get(leaf, 0) for leaf in node_leaves)
        total_entries += entries
        weighted += entries * (len(node_leaves) - 1) / union_size
    if total_entries == 0:
        return 0.0
    return weighted / total_entries


def numeric_cut_loss(
    tree: DomainHierarchyTree,
    cut: Sequence[DHTNode],
    counts: Mapping[DHTNode, int],
) -> float:
    """Equation (2): information loss of a numeric (interval) generalization.

    ``InfLoss_c = sum_i n_i * (U_i - L_i) / (U - L)  /  sum_i n_i`` where
    ``[L, U)`` is the column domain and ``[L_i, U_i)`` the interval of cut
    node ``p_i``.
    """
    if not tree.is_numeric:
        raise ValueError(f"attribute {tree.attribute!r} is not numeric")
    if not tree.is_valid_cut(cut):
        raise ValueError(f"cut is not a valid generalization of attribute {tree.attribute!r}")
    domain: Interval = tree.root.value  # type: ignore[assignment]
    total_entries = 0
    weighted = 0.0
    for node in cut:
        interval: Interval = node.value  # type: ignore[assignment]
        entries = _entries_under(node, counts)
        total_entries += entries
        weighted += entries * interval.width / domain.width
    if total_entries == 0:
        return 0.0
    return weighted / total_entries


def column_information_loss(
    tree: DomainHierarchyTree,
    cut: Sequence[DHTNode],
    counts: Mapping[DHTNode, int],
) -> float:
    """Dispatch to Equation (1) or (2) according to the column type.

    The paper applies Equation (2) to numeric columns and Equation (1) to
    categorical ones; both take the same inputs here.
    """
    if tree.is_numeric:
        return numeric_cut_loss(tree, cut, counts)
    return categorical_cut_loss(tree, cut, counts)


def table_information_loss(per_column_losses: Mapping[str, float]) -> float:
    """Equation (3): normalised loss — the average over generalized columns."""
    if not per_column_losses:
        return 0.0
    for column, loss in per_column_losses.items():
        if not 0.0 <= loss <= 1.0 + 1e-9:
            raise ValueError(f"loss for column {column!r} must lie in [0, 1], got {loss}")
    return sum(per_column_losses.values()) / len(per_column_losses)


def total_information_loss(per_column_losses: Mapping[str, float]) -> float:
    """"Other forms of information loss" mentioned after Equation (3): the sum."""
    return float(sum(per_column_losses.values()))


def specificity_loss(tree: DomainHierarchyTree, cut: Sequence[DHTNode]) -> float:
    """Specificity loss ``(N - Ng) / N`` of Section 4.2.2.

    ``N`` is the number of leaves of the tree and ``Ng`` the number of cut
    nodes; the leaf cut has zero loss and the root cut loss ``(N - 1) / N``.
    This estimate ignores the data distribution, trading accuracy for the
    cheaper evaluation used to rank candidate generalizations.
    """
    if not tree.is_valid_cut(cut):
        raise ValueError(f"cut is not a valid generalization of attribute {tree.attribute!r}")
    n_leaves = len(tree.leaves())
    return (n_leaves - len(cut)) / n_leaves
