"""Shard-parallel embed/detect, bit-identical to the serial batched path.

Both halves of the watermarking algorithm are per-row computations: whether a
tuple is selected, where its bit lives in the replicated mark and which
sibling index encodes it depend only on that tuple's (encrypted) identifier.
A table can therefore be split into contiguous row shards, each shard
embedded/vote-collected independently, and the results merged:

* **detect** — each shard produces a
  :class:`~repro.watermarking.hierarchical.DetectionVotes`; merging them in
  shard order reproduces the serial per-position vote lists exactly, so the
  finalised :class:`DetectionReport` (mark, wmd bits, counters) is
  bit-identical to a serial :meth:`detect` — asserted by the service tests on
  clean and attacked tables.
* **embed** — each shard embeds into its own copy-on-write slice; the merged
  table is the shard tables' rows concatenated in shard order, equal row for
  row to a serial embed.

Workers are threads (:class:`concurrent.futures.ThreadPoolExecutor`): the
row shards share the engine's digest caches and the interpreter, so shard
parallelism today buys overlap only where the C hashing primitives release
the GIL — the merge machinery, not the thread pool, is the load-bearing part
(the streaming ingest reuses it chunk by chunk, and a process-based runner
can swap in behind the same interface).
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Sequence

_SENTINEL = object()

from repro.binning.binner import BinnedTable
from repro.relational.table import Table
from repro.watermarking.hierarchical import (
    DetectionReport,
    DetectionVotes,
    EmbeddingReport,
    HierarchicalWatermarker,
)
from repro.watermarking.mark import Mark

__all__ = ["shard_spans", "shard_binned", "ShardExecutor"]

#: Shards below this many rows are not worth the pool dispatch overhead.
MIN_ROWS_PER_SHARD = 256


def shard_spans(n_rows: int, shards: int) -> list[tuple[int, int]]:
    """Split ``range(n_rows)`` into *shards* contiguous, near-equal spans.

    The first ``n_rows % shards`` spans carry one extra row; empty spans are
    never produced (fewer spans come back when there are fewer rows than
    shards).
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    shards = min(shards, n_rows) if n_rows else 0
    spans: list[tuple[int, int]] = []
    start = 0
    for index in range(shards):
        size = n_rows // shards + (1 if index < n_rows % shards else 0)
        spans.append((start, start + size))
        start += size
    return spans


def shard_binned(binned: BinnedTable, shards: int) -> list[BinnedTable]:
    """Contiguous row shards of *binned* sharing row dicts and metadata."""
    return [binned.slice(start, stop) for start, stop in shard_spans(len(binned.table), shards)]


class ShardExecutor:
    """Runs embed/detect over row shards on a thread pool and merges results."""

    def __init__(self, max_workers: int | None = None) -> None:
        cpu = os.cpu_count() or 1
        self._max_workers = max_workers if max_workers is not None else min(8, cpu)
        if self._max_workers < 1:
            raise ValueError("max_workers must be at least 1")

    @property
    def max_workers(self) -> int:
        return self._max_workers

    # ---------------------------------------------------------------- detection
    def detect(
        self,
        watermarker: HierarchicalWatermarker,
        binned: BinnedTable,
        mark_length: int,
        *,
        shards: int | None = None,
    ) -> DetectionReport:
        """Shard-parallel :meth:`HierarchicalWatermarker.detect` over *binned*."""
        shards = self._effective_shards(len(binned.table), shards)
        if shards <= 1:
            return watermarker.detect(binned, mark_length)
        pieces = shard_binned(binned, shards)
        with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
            collected = list(
                pool.map(lambda piece: watermarker.collect_votes(piece, mark_length), pieces)
            )
        return watermarker.finalize_votes(_merge_votes(collected), mark_length)

    def detect_stream(
        self,
        watermarker: HierarchicalWatermarker,
        chunks: Iterable[BinnedTable],
        mark_length: int,
    ) -> DetectionReport:
        """Detect over a stream of chunk views of one table, merging votes.

        The chunks must cover the table's rows in order (the streaming
        ingest's contract).  Chunks are pulled from the iterable only as pool
        slots free up (at most ``max_workers + 1`` in flight — a plain
        ``Executor.map`` would drain the whole generator up front), so memory
        stays bounded by in-flight chunks + the vote state regardless of file
        size; votes are still merged in chunk order.
        """
        merged: DetectionVotes | None = None
        iterator = iter(chunks)
        with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
            window: deque = deque()
            exhausted = False
            while True:
                while not exhausted and len(window) <= self._max_workers:
                    chunk = next(iterator, _SENTINEL)
                    if chunk is _SENTINEL:
                        exhausted = True
                        break
                    window.append(pool.submit(watermarker.collect_votes, chunk, mark_length))
                if not window:
                    break
                votes = window.popleft().result()
                merged = votes if merged is None else merged.merge(votes)
        if merged is None:
            merged = DetectionVotes(wmd_length=mark_length * watermarker.copies)
        return watermarker.finalize_votes(merged, mark_length)

    # ---------------------------------------------------------------- embedding
    def embed(
        self,
        watermarker: HierarchicalWatermarker,
        binned: BinnedTable,
        mark: Mark,
        *,
        shards: int | None = None,
    ) -> EmbeddingReport:
        """Shard-parallel :meth:`HierarchicalWatermarker.embed` over *binned*."""
        shards = self._effective_shards(len(binned.table), shards)
        if shards <= 1:
            return watermarker.embed(binned, mark)
        pieces = shard_binned(binned, shards)
        with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
            reports = list(pool.map(lambda piece: watermarker.embed(piece, mark), pieces))

        merged_table = Table.from_validated_rows(
            binned.table.schema,
            (row for report in reports for row in report.watermarked.table.rows),
        )
        watermarked = BinnedTable(
            table=merged_table,
            trees=binned.trees,
            identifying_columns=binned.identifying_columns,
            quasi_columns=binned.quasi_columns,
            ultimate_nodes=dict(binned.ultimate_nodes),
            maximal_nodes=dict(binned.maximal_nodes),
            minimal_nodes=dict(binned.minimal_nodes),
            k=binned.k,
        )
        first = reports[0]
        return EmbeddingReport(
            watermarked=watermarked,
            mark=mark,
            copies=first.copies,
            columns=first.columns,
            tuples_selected=sum(report.tuples_selected for report in reports),
            cells_embedded=sum(report.cells_embedded for report in reports),
            cells_changed=sum(report.cells_changed for report in reports),
            cells_skipped_no_bandwidth=sum(report.cells_skipped_no_bandwidth for report in reports),
        )

    # ----------------------------------------------------------------- helpers
    def _effective_shards(self, n_rows: int, shards: int | None) -> int:
        if shards is not None:
            if shards < 1:
                raise ValueError("shards must be at least 1")
            # Never more shards than rows (an empty table runs serially), so
            # shard_binned can never come back empty after the <= 1 guard.
            return min(shards, max(1, n_rows))
        if n_rows < 2 * MIN_ROWS_PER_SHARD:
            return 1
        return min(self._max_workers, max(1, n_rows // MIN_ROWS_PER_SHARD))


def _merge_votes(collected: Sequence[DetectionVotes]) -> DetectionVotes:
    """Fold shard votes left to right (shard order == row order)."""
    merged = collected[0]
    for votes in collected[1:]:
        merged.merge(votes)
    return merged
