"""Shard-parallel embed/detect, bit-identical to the serial batched path.

Both halves of the watermarking algorithm are per-row computations: whether a
tuple is selected, where its bit lives in the replicated mark and which
sibling index encodes it depend only on that tuple's (encrypted) identifier.
A table can therefore be split into contiguous row shards, each shard
embedded/vote-collected independently, and the results merged:

* **detect** — each shard produces a
  :class:`~repro.watermarking.hierarchical.DetectionVotes`; merging them in
  shard order reproduces the serial per-position vote lists exactly, so the
  finalised :class:`DetectionReport` (mark, wmd bits, counters) is
  bit-identical to a serial :meth:`detect` — asserted by the service tests on
  clean and attacked tables.
* **embed** — each shard embeds into its own copy-on-write slice; the merged
  table is the shard tables' rows concatenated in shard order, equal row for
  row to a serial embed.

*Where* the per-shard vote collection runs is delegated to a pluggable
:class:`~repro.service.runners.ShardRunner`: the default
:class:`~repro.service.runners.ThreadRunner` shares the engine's digest
caches but is GIL-bound on small hash payloads, the
:class:`~repro.service.runners.ProcessRunner` rebuilds engines per worker
from picklable params and ships only ``DetectionVotes`` back, and the
:class:`~repro.service.runners.RemoteRunner` does the same over HTTP against
a fleet of ``repro serve`` workers — the merge machinery is identical in all
three cases, which is what keeps every runner bit-identical to serial.

Protect's pass 2 is the embed-side counterpart (:meth:`ShardExecutor.protect_csv`):
once pass 1 has fixed the binning plan, rewrite + embed is per-chunk
independent, so the runner maps :func:`~repro.service.runners.protect_raw_chunk`
over raw CSV chunks and the executor splices the returned chunk texts — in
chunk order — through one :class:`~repro.service.streaming.RowWriter`.
Protect workers do ship rows back (the result *is* the rows), but they also
carry parsing, encryption, generalisation, embedding and serialisation, so a
process pool wins where the in-memory :meth:`ShardExecutor.embed` (rows in
*both* directions, no parse work) stays thread-based.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.binning.binner import BinnedTable
from repro.relational.schema import TableSchema
from repro.relational.table import Table
from repro.service.runners import (
    PROTECT_UNSUPPORTED_ERROR,
    ProtectPlan,
    ShardRunner,
    resolve_runner,
)
from repro.service.streaming import DEFAULT_CHUNK_SIZE, RowWriter
from repro.telemetry.trace import span as _stage_span
from repro.watermarking.hierarchical import (
    DetectionReport,
    DetectionVotes,
    EmbeddingReport,
    HierarchicalWatermarker,
)
from repro.watermarking.mark import Mark

__all__ = ["shard_spans", "shard_binned", "ProtectRun", "ShardExecutor"]


@dataclass(frozen=True)
class ProtectRun:
    """Totals of one runner-parallel protect pass 2 (rows, counters, timings)."""

    rows: int
    tuples_selected: int
    cells_changed: int
    chunk_seconds: tuple[float, ...]

    @property
    def chunks(self) -> int:
        return len(self.chunk_seconds)

#: Shards below this many rows are not worth the pool dispatch overhead.
MIN_ROWS_PER_SHARD = 256


def shard_spans(n_rows: int, shards: int) -> list[tuple[int, int]]:
    """Split ``range(n_rows)`` into *shards* contiguous, near-equal spans.

    The first ``n_rows % shards`` spans carry one extra row; empty spans are
    never produced (fewer spans come back when there are fewer rows than
    shards, and an empty table yields no spans at all — callers must treat
    ``[]`` as "nothing to do", not index into it).
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    shards = min(shards, n_rows) if n_rows else 0
    spans: list[tuple[int, int]] = []
    start = 0
    for index in range(shards):
        size = n_rows // shards + (1 if index < n_rows % shards else 0)
        spans.append((start, start + size))
        start += size
    return spans


def shard_binned(binned: BinnedTable, shards: int) -> list[BinnedTable]:
    """Contiguous row shards of *binned* sharing row dicts and metadata."""
    return [binned.slice(start, stop) for start, stop in shard_spans(len(binned.table), shards)]


class ShardExecutor:
    """Runs embed/detect over row shards on a pluggable runner and merges results."""

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        runner: "str | ShardRunner | None" = None,
    ) -> None:
        cpu = os.cpu_count() or 1
        self._max_workers = max_workers if max_workers is not None else min(8, cpu)
        if self._max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self._runner = resolve_runner(runner)

    @property
    def max_workers(self) -> int:
        return self._max_workers

    @property
    def runner(self) -> ShardRunner:
        return self._runner

    @property
    def runner_name(self) -> str:
        return self._runner.name

    # ---------------------------------------------------------------- detection
    def detect(
        self,
        watermarker: HierarchicalWatermarker,
        binned: BinnedTable,
        mark_length: int,
        *,
        shards: int | None = None,
    ) -> DetectionReport:
        """Shard-parallel :meth:`HierarchicalWatermarker.detect` over *binned*.

        An empty table short-circuits to finalising empty votes — a valid,
        all-zero report with zero coverage — rather than sharding nothing.
        """
        if len(binned.table) == 0:
            return watermarker.finalize_votes(self._empty_votes(watermarker, mark_length), mark_length)
        shards = self._effective_shards(len(binned.table), shards)
        if shards <= 1:
            return watermarker.detect(binned, mark_length)
        pieces = shard_binned(binned, shards)
        merged = self._merge_stream(
            self._runner.collect_tables(
                watermarker, pieces, mark_length, max_workers=self._max_workers
            )
        )
        if merged is None:  # pragma: no cover - pieces is non-empty here
            merged = self._empty_votes(watermarker, mark_length)
        return watermarker.finalize_votes(merged, mark_length)

    def detect_stream(
        self,
        watermarker: HierarchicalWatermarker,
        chunks: Iterable[BinnedTable],
        mark_length: int,
    ) -> DetectionReport:
        """Detect over a stream of chunk views of one table, merging votes.

        The chunks must cover the table's rows in order (the streaming
        ingest's contract).  Chunks are pulled from the iterable only as pool
        slots free up (at most ``max_workers + 1`` in flight — a plain
        ``Executor.map`` would drain the whole generator up front), so memory
        stays bounded by in-flight chunks + the vote state regardless of file
        size; votes are still merged in chunk order.
        """
        merged = self._merge_stream(
            self._runner.collect_tables(
                watermarker, chunks, mark_length, max_workers=self._max_workers
            )
        )
        if merged is None:
            merged = self._empty_votes(watermarker, mark_length)
        return watermarker.finalize_votes(merged, mark_length)

    def detect_csv(
        self,
        watermarker: HierarchicalWatermarker,
        path: str,
        schema: TableSchema,
        metadata: Mapping[str, object],
        mark_length: int,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        on_rows: Callable[[int], None] | None = None,
    ) -> DetectionReport:
        """Detect straight off a CSV file, letting the runner own the ingest.

        The thread runner parses chunk views on the calling thread exactly
        like :meth:`detect_stream`; the process runner ships raw CSV text so
        its workers parse too.  Either way the merged votes — and therefore
        the report — are bit-identical to a serial detect over the
        materialised table.  *on_rows* receives each chunk's row count (the
        service reports total rows examined).
        """
        merged = self._merge_stream(
            self._runner.collect_csv(
                watermarker,
                path,
                schema,
                metadata,
                mark_length,
                chunk_size=chunk_size,
                max_workers=self._max_workers,
                on_rows=on_rows,
            )
        )
        if merged is None:
            merged = self._empty_votes(watermarker, mark_length)
        return watermarker.finalize_votes(merged, mark_length)

    # ------------------------------------------------------------------ protect
    def protect_csv(
        self,
        plan: ProtectPlan,
        input_csv: str,
        output_csv: str,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> ProtectRun:
        """Pass 2 of a streamed protect: rewrite + embed + emit on the runner.

        Splits *input_csv* into quote-parity raw chunks, runs
        :func:`~repro.service.runners.protect_raw_chunk` per chunk on the
        configured runner, and appends each returned chunk text to
        *output_csv* in chunk order — so the output file is byte-identical to
        a serial streaming protect whatever the runner or worker count.  An
        empty input (header only) still writes the output header.  A runner
        that cannot carry protect (the remote fleet) is refused *before* the
        output file is created, so a refusal leaves nothing behind.
        """
        if not self._runner.supports_protect:
            raise ValueError(PROTECT_UNSUPPORTED_ERROR)
        rows = 0
        tuples_selected = 0
        cells_changed = 0
        chunk_seconds: list[float] = []
        with RowWriter(output_csv, plan.schema) as writer:
            for chunk in self._runner.protect_csv(
                plan, input_csv, chunk_size=chunk_size, max_workers=self._max_workers
            ):
                writer.write_text(chunk.text, chunk.rows)
                rows += chunk.rows
                tuples_selected += chunk.tuples_selected
                cells_changed += chunk.cells_changed
                chunk_seconds.append(chunk.seconds)
        return ProtectRun(
            rows=rows,
            tuples_selected=tuples_selected,
            cells_changed=cells_changed,
            chunk_seconds=tuple(chunk_seconds),
        )

    # ---------------------------------------------------------------- embedding
    def embed(
        self,
        watermarker: HierarchicalWatermarker,
        binned: BinnedTable,
        mark: Mark,
        *,
        shards: int | None = None,
    ) -> EmbeddingReport:
        """Shard-parallel :meth:`HierarchicalWatermarker.embed` over *binned*.

        Always thread-based regardless of the configured runner: embedding
        returns the watermarked rows themselves, so crossing a process
        boundary would serialise every row twice for no CPU win.
        """
        shards = self._effective_shards(len(binned.table), shards)
        if shards <= 1:
            return watermarker.embed(binned, mark)
        pieces = shard_binned(binned, shards)
        with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
            reports = list(pool.map(lambda piece: watermarker.embed(piece, mark), pieces))

        # Preserve the input's substrate: a columnar table merges shard rows
        # back into columns, a row store shares the shard row dicts as before.
        merged_table = type(binned.table).from_validated_rows(
            binned.table.schema,
            (row for report in reports for row in report.watermarked.table.rows),
        )
        watermarked = BinnedTable(
            table=merged_table,
            trees=binned.trees,
            identifying_columns=binned.identifying_columns,
            quasi_columns=binned.quasi_columns,
            ultimate_nodes=dict(binned.ultimate_nodes),
            maximal_nodes=dict(binned.maximal_nodes),
            minimal_nodes=dict(binned.minimal_nodes),
            k=binned.k,
        )
        first = reports[0]
        return EmbeddingReport(
            watermarked=watermarked,
            mark=mark,
            copies=first.copies,
            columns=first.columns,
            tuples_selected=sum(report.tuples_selected for report in reports),
            cells_embedded=sum(report.cells_embedded for report in reports),
            cells_changed=sum(report.cells_changed for report in reports),
            cells_skipped_no_bandwidth=sum(report.cells_skipped_no_bandwidth for report in reports),
        )

    # ----------------------------------------------------------------- helpers
    @staticmethod
    def _empty_votes(watermarker: HierarchicalWatermarker, mark_length: int) -> DetectionVotes:
        return DetectionVotes(wmd_length=mark_length * watermarker.copies)

    @staticmethod
    def _merge_stream(votes_stream: Iterable[DetectionVotes]) -> DetectionVotes | None:
        merged: DetectionVotes | None = None
        for votes in votes_stream:
            # One span per chunk merged (the first chunk's is the trivial
            # adoption) — pulling from the stream stays *outside* the span so
            # worker wait time never masquerades as merge time.
            with _stage_span("detect.merge"):
                merged = votes if merged is None else merged.merge(votes)
        return merged

    def _effective_shards(self, n_rows: int, shards: int | None) -> int:
        if shards is not None:
            if shards < 1:
                raise ValueError("shards must be at least 1")
            # Never more shards than rows (an empty table runs serially), so
            # shard_binned can never come back empty after the <= 1 guard.
            return min(shards, max(1, n_rows))
        if n_rows < 2 * MIN_ROWS_PER_SHARD:
            return 1
        return min(self._max_workers, max(1, n_rows // MIN_ROWS_PER_SHARD))
