"""Pluggable shard runners: where `collect_votes` actually executes.

The :class:`~repro.service.executor.ShardExecutor` owns the *semantics* of
shard-parallel detection (split into contiguous shards, merge votes in shard
order, finalise once — bit-identical to serial by construction).  This module
owns the *mechanics*: a :class:`ShardRunner` maps
:meth:`~repro.watermarking.hierarchical.HierarchicalWatermarker.collect_votes`
over chunks and yields one
:class:`~repro.watermarking.hierarchical.DetectionVotes` per chunk, **in
chunk order**, with a bounded number in flight.

Three implementations:

* :class:`ThreadRunner` — today's behavior: a
  :class:`~concurrent.futures.ThreadPoolExecutor` whose workers share the
  watermarker (and its digest caches).  Cheap to start, but Python hashing
  over small payloads holds the GIL, so parallelism buys little CPU.
* :class:`ProcessRunner` — a :class:`~concurrent.futures.ProcessPoolExecutor`.
  The watermarker itself cannot cross the process boundary (live HMAC objects
  don't pickle), so each task carries a picklable :class:`WatermarkerSpec`
  from which every worker reconstructs — and caches — its own engine.  Chunks
  travel *to* workers either as pickled :class:`BinnedTable` shards (the
  in-memory path) or as **raw CSV text** (the streaming path, where workers
  also do the parsing — the dominant cost — so detection scales with cores);
  only small :class:`DetectionVotes` travel back, never rows.
* :class:`RemoteRunner` — the multi-machine step: raw CSV chunks are POSTed
  to a fleet of ``repro serve`` workers (``POST /internal/detect-votes``, see
  :mod:`repro.service.wire` for the JSON shapes) round-robin with failover
  and bounded retries; each response carries that chunk's serialized
  :class:`DetectionVotes`, merged locally exactly like the other runners' —
  which is what keeps a fleet detect bit-identical to a serial one.

Since PR 5 the runners carry protect's pass 2 as well as detection: once the
binning plan is fixed, rewrite + embed is per-chunk independent, so
:meth:`ShardRunner.protect_csv` maps :func:`protect_raw_chunk` over the same
quote-parity raw chunks and yields one :class:`ProtectedChunk` — the chunk's
serialised output CSV text plus its embedding counters — per chunk, in chunk
order, for the executor to splice through a
:class:`~repro.service.streaming.RowWriter`.  Protect *does* ship rows back
from process workers (its result is the rows), but the workers also carry the
dominant costs — parsing, encryption, generalisation, embedding and CSV
serialisation — so the trade the detect path refused for embed-only sharding
pays off here.  The :class:`RemoteRunner` refuses protect: shipping every row
across the network twice has no CPU story, and the vault-owning coordinator
is the only process that may see raw identifiers.

All runners are stateless across calls: pools live for one ``collect*`` or
``protect*`` call (the remote fleet's failure bookkeeping too), so a runner
instance can be shared by many executors and services.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.binning.binner import BinnedTable, rewrite_table
from repro.binning.generalization import Generalization, MultiColumnGeneralization
from repro.crypto.cipher import FieldEncryptor
from repro.relational.columnar import ColumnarTable
from repro.relational.schema import TableSchema
from repro.relational.table import Table
from repro.service.streaming import (
    DEFAULT_CHUNK_SIZE,
    iter_raw_chunks,
    iter_tables,
    render_csv_rows,
)
from repro.service.wire import (
    binned_metadata_to_json,
    metadata_to_json,
    spec_to_json,
    table_to_csv_lines,
    votes_from_json,
)
from repro.telemetry.trace import (
    PARENT_HEADER,
    TRACE_HEADER,
    TraceContext,
    adopt as _trace_adopt,
    capture as _trace_capture,
    current_tracer as _current_tracer,
    span as _stage_span,
)
from repro.watermarking.hierarchical import DetectionVotes, HierarchicalWatermarker
from repro.watermarking.keys import WatermarkKey
from repro.watermarking.mark import Mark

__all__ = [
    "WatermarkerSpec",
    "ProtectPlan",
    "ProtectedChunk",
    "ShardRunner",
    "ThreadRunner",
    "ProcessRunner",
    "RemoteRunner",
    "FleetError",
    "RUNNER_NAMES",
    "PROTECT_UNSUPPORTED_ERROR",
    "collect_raw_chunk",
    "protect_raw_chunk",
    "REMOTE_RUNNER_NAME",
    "resolve_runner",
]

#: Raised (as a :class:`ValueError`) wherever a protect is asked to run on a
#: runner that cannot carry it — shared so the executor can refuse *before*
#: creating the output file and the runner can refuse as a backstop.
PROTECT_UNSUPPORTED_ERROR = (
    "the remote runner is detect-only: protect ships rows, not votes "
    "(use --runner thread or --runner process for parallel protect)"
)

_SENTINEL = object()


@dataclass(frozen=True)
class WatermarkerSpec:
    """Everything needed to rebuild a :class:`HierarchicalWatermarker` — picklable.

    The live watermarker holds HMAC objects (C state, unpicklable); this spec
    holds only the key bytes and construction parameters.  ``build()`` in a
    worker process yields an engine that is bit-identical to the parent's:
    selection, positions and permutation indices are pure functions of the
    key material.
    """

    k1: bytes
    k2: bytes
    eta: int
    columns: tuple[str, ...] | None
    copies: int
    level_weighting: bool
    batch: bool
    code: str = "repetition"

    @classmethod
    def of(cls, watermarker: HierarchicalWatermarker) -> "WatermarkerSpec":
        key = watermarker.key
        return cls(
            k1=key.k1,
            k2=key.k2,
            eta=key.eta,
            columns=watermarker.columns,
            copies=watermarker.copies,
            level_weighting=watermarker.level_weighting,
            batch=watermarker.batched,
            code=watermarker.code_name,
        )

    def build(self) -> HierarchicalWatermarker:
        return HierarchicalWatermarker(
            WatermarkKey(k1=self.k1, k2=self.k2, eta=self.eta),
            columns=self.columns,
            copies=self.copies,
            level_weighting=self.level_weighting,
            batch=self.batch,
            code=self.code,
        )


#: Per-worker-process watermarker cache: successive chunks for the same spec
#: reuse one engine (and its digest caches) instead of re-deriving HMAC pads.
#: Bounded: this used to live only in short-lived process-pool workers, but a
#: long-running ``repro serve`` fleet worker hits it too (one spec per tenant
#: key ever detected through the fleet), and engines retain raw key material —
#: so old entries are evicted in insertion order past the cap.
_WORKER_WATERMARKERS: dict[WatermarkerSpec, HierarchicalWatermarker] = {}
_WORKER_WATERMARKER_CACHE_SIZE = 8
# A fleet worker's threading WSGI server reaches this cache from concurrent
# handler threads (process-pool workers run tasks serially and never contend).
_WORKER_WATERMARKERS_LOCK = threading.Lock()


def _worker_watermarker(spec: WatermarkerSpec) -> HierarchicalWatermarker:
    with _WORKER_WATERMARKERS_LOCK:
        watermarker = _WORKER_WATERMARKERS.pop(spec, None)
        if watermarker is None:
            watermarker = spec.build()
            while len(_WORKER_WATERMARKERS) >= _WORKER_WATERMARKER_CACHE_SIZE:
                _WORKER_WATERMARKERS.pop(next(iter(_WORKER_WATERMARKERS)))
        # Re-inserting on every hit keeps eviction LRU-ish (dicts preserve
        # insertion order), so a hot tenant's engine survives cache churn.
        _WORKER_WATERMARKERS[spec] = watermarker
        return watermarker


def _collect_binned(spec: WatermarkerSpec, piece: BinnedTable, mark_length: int) -> DetectionVotes:
    """Process-pool task: votes over one pickled shard."""
    return _worker_watermarker(spec).collect_votes(piece, mark_length)


def collect_raw_chunk(
    spec: WatermarkerSpec,
    schema: TableSchema,
    metadata: Mapping[str, object],
    header: str,
    lines: list[str],
    mark_length: int,
) -> tuple[int, DetectionVotes]:
    """Process-pool task: parse one raw CSV chunk and collect its votes.

    The chunk parses straight into a columnar table
    (:meth:`~repro.relational.columnar.ColumnarTable.from_csv_chunk`), whose
    parse plan mirrors ``csv.DictReader`` + ``parse_row`` cell for cell — a
    worker sees exactly what the in-process reader would have produced, and
    vote collection runs on the per-column fast path.  Returns
    ``(row_count, votes)``: the caller needs the count for the detection
    report and must not re-scan the chunk.
    """
    with _stage_span("detect.parse", lines=len(lines)):
        table = ColumnarTable.from_csv_chunk(schema, header, lines)
    with _stage_span("detect.frame", rows=len(table)):
        binned = BinnedTable(table=table, **metadata)
    return len(table), _worker_watermarker(spec).collect_votes(binned, mark_length)


def _collect_chunk_task(
    context: TraceContext | None,
    spec: WatermarkerSpec,
    schema: TableSchema,
    metadata: Mapping[str, object],
    header: str,
    lines: list[str],
    mark_length: int,
) -> tuple[int, DetectionVotes, tuple]:
    """:func:`collect_raw_chunk` under a propagated trace scope.

    The third element is the spans recorded by a *foreign-process* worker
    (``()`` in-process, where spans go straight into the live tracer) — the
    submitting side ingests them into the request's tracer.
    """
    with _trace_adopt(context) as local:
        rows, votes = collect_raw_chunk(spec, schema, metadata, header, lines, mark_length)
    return rows, votes, tuple(local.export()) if local is not None else ()


def _run_in_trace_scope(context: TraceContext | None, fn: Callable, /, *args):
    """Run *fn* under a propagated same-process trace scope (thread pools)."""
    with _trace_adopt(context):
        return fn(*args)


@dataclass(frozen=True)
class ProtectPlan:
    """Everything pass 2 of a streamed protect needs, in picklable form.

    Pass 1 fixes the global aggregates: the :class:`~repro.binning.binner.BinPlan`
    (frontier node names, reachable through *metadata*) and the registered
    mark.  From then on every chunk is independent, and this plan is the whole
    per-chunk contract — a worker process rebuilds the watermarker from the
    :class:`WatermarkerSpec`, the identifier encryptor from the key material,
    and the ultimate generalizations from the metadata's trees + node names,
    all pure functions of the plan, so every runner produces bit-identical
    chunks.
    """

    spec: WatermarkerSpec
    schema: TableSchema
    metadata: Mapping[str, object]
    identifying_columns: tuple[str, ...]
    encryption_key: bytes | str
    mark_bits: str


@dataclass(frozen=True)
class ProtectedChunk:
    """One chunk's pass-2 output: serialised CSV text plus embed counters.

    *text* is the chunk's rows rendered exactly as
    :meth:`~repro.service.streaming.RowWriter.write_table` would render them
    (same ``csv`` dialect, no header), so the executor splices chunks into the
    output file byte-identically to a serial emit.  *seconds* is the worker's
    own wall clock over the chunk (parse through serialise), reported per
    chunk in the protect report.

    *spans* carries the chunk's telemetry spans when the work ran in a
    foreign process under a traced request (see
    :mod:`repro.telemetry.trace`); it is always ``()`` untraced and never
    affects the output text.
    """

    rows: int
    tuples_selected: int
    cells_changed: int
    seconds: float
    text: str
    spans: tuple = ()


def protect_raw_chunk(plan: ProtectPlan, header: str, lines: list[str]) -> ProtectedChunk:
    """Pool task: rewrite + embed + serialise one raw CSV chunk of a protect.

    Every stage reuses the serial path's own code rather than mirroring it —
    the columnar chunk ingest of :func:`collect_raw_chunk`, the shared
    :func:`repro.binning.binner.rewrite_table` (over an ultimate
    generalization rebuilt from the metadata's trees + node names, with the
    identifying column batch-encrypted in one sweep), one
    :meth:`~repro.watermarking.hierarchical.HierarchicalWatermarker.embed`
    over the chunk's :class:`BinnedTable` view, and
    :func:`~repro.service.streaming.render_csv_rows` for the emit dialect —
    so the returned text is byte for byte what the serial path would have
    written for these records, by construction.
    """
    started = time.perf_counter()
    schema = plan.schema
    metadata = plan.metadata
    encryptor = FieldEncryptor(plan.encryption_key)
    trees: Mapping[str, object] = metadata["trees"]
    ultimate_nodes: Mapping[str, Sequence[str]] = metadata["ultimate_nodes"]
    ultimate = MultiColumnGeneralization(
        {
            column: Generalization.from_node_names(trees[column], ultimate_nodes[column])
            for column in metadata["quasi_columns"]
        }
    )

    with _stage_span("protect.parse", lines=len(lines)):
        parsed = ColumnarTable.from_csv_chunk(schema, header, lines)
    table = rewrite_table(parsed, schema, encryptor, ultimate)
    binned = BinnedTable(table=table, identifying_columns=plan.identifying_columns, **metadata)
    embedding = _worker_watermarker(plan.spec).embed(binned, Mark.from_string(plan.mark_bits))
    with _stage_span("protect.serialize", rows=len(table)):
        text = render_csv_rows(schema, embedding.watermarked.table)
    return ProtectedChunk(
        rows=len(table),
        tuples_selected=embedding.tuples_selected,
        cells_changed=embedding.cells_changed,
        seconds=time.perf_counter() - started,
        text=text,
    )


def _protect_chunk_task(
    context: TraceContext | None, plan: ProtectPlan, header: str, lines: list[str]
) -> ProtectedChunk:
    """:func:`protect_raw_chunk` under a propagated trace scope.

    Spans recorded in a foreign process come back on the chunk itself
    (``ProtectedChunk.spans``); in-process they go straight into the live
    tracer and the field stays empty.
    """
    with _trace_adopt(context) as local:
        chunk = protect_raw_chunk(plan, header, lines)
    if local is not None:
        chunk = replace(chunk, spans=tuple(local.export()))
    return chunk


def _bounded_ordered(
    submit: Callable[[object], "object"],
    items: Iterable[object],
    window_size: int,
) -> Iterator[object]:
    """Yield future results in submission order with a bounded window.

    At most ``window_size + 1`` futures are in flight, so an unbounded chunk
    stream is never drained ahead of the workers (a plain ``Executor.map``
    would) — memory stays one window of chunks regardless of file size.
    """
    window: deque = deque()
    iterator = iter(items)
    exhausted = False
    while True:
        while not exhausted and len(window) <= window_size:
            item = next(iterator, _SENTINEL)
            if item is _SENTINEL:
                exhausted = True
                break
            window.append(submit(item))
        if not window:
            return
        yield window.popleft().result()


class ShardRunner:
    """Maps ``collect_votes`` over chunks; yields votes in chunk order.

    Subclasses override :meth:`_pool` and :meth:`_submit_binned` (and, when
    they can do better than "parse in the caller", :meth:`collect_csv`).
    Instances hold no pool state between calls.
    """

    name: str = "?"

    #: Whether :meth:`protect_csv` can run here.  False only for the remote
    #: fleet; the service falls back to a local runner for protect when its
    #: *default* runner is a detect fleet, and refuses when one is requested
    #: explicitly.
    supports_protect: bool = True

    # ------------------------------------------------------------- primitives
    def _pool(self, max_workers: int) -> Executor:
        raise NotImplementedError

    def _submit_binned(
        self,
        pool: Executor,
        watermarker: HierarchicalWatermarker,
        piece: BinnedTable,
        mark_length: int,
    ):
        raise NotImplementedError

    # ------------------------------------------------------------------- API
    def collect_tables(
        self,
        watermarker: HierarchicalWatermarker,
        chunks: Iterable[BinnedTable],
        mark_length: int,
        *,
        max_workers: int,
    ) -> Iterator[DetectionVotes]:
        """One :class:`DetectionVotes` per chunk, in chunk order."""
        with self._pool(max_workers) as pool:
            yield from _bounded_ordered(
                lambda piece: self._submit_binned(pool, watermarker, piece, mark_length),
                chunks,
                max_workers,
            )

    def collect_csv(
        self,
        watermarker: HierarchicalWatermarker,
        path: str,
        schema: TableSchema,
        metadata: Mapping[str, object],
        mark_length: int,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_workers: int,
        on_rows: Callable[[int], None] | None = None,
    ) -> Iterator[DetectionVotes]:
        """Votes per CSV chunk of *path*, parsed against *schema* + *metadata*.

        The base implementation parses in the calling thread (the thread
        runner's workers share memory, so shipping parsed chunk views is
        free); *on_rows* is invoked with each chunk's row count as it is
        ingested.
        """

        def views() -> Iterator[BinnedTable]:
            chunks = iter_tables(path, schema, chunk_size)
            while True:
                scope = _stage_span("detect.parse")
                with scope:
                    chunk = next(chunks, None)
                    if chunk is not None:
                        scope.set(rows=len(chunk))
                if chunk is None:
                    return
                if on_rows is not None:
                    on_rows(len(chunk))
                with _stage_span("detect.frame", rows=len(chunk)):
                    binned = BinnedTable(table=chunk, **metadata)
                yield binned

        yield from self.collect_tables(watermarker, views(), mark_length, max_workers=max_workers)

    def protect_csv(
        self,
        plan: ProtectPlan,
        path: str,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_workers: int,
    ) -> Iterator[ProtectedChunk]:
        """One :class:`ProtectedChunk` per raw chunk of *path*, in chunk order.

        Pass 2 of a streamed protect on this runner's pool: the caller's
        thread only splits lines (:func:`~repro.service.streaming.iter_raw_chunks`)
        and splices results; workers parse, rewrite, embed and serialise.  One
        implementation serves both pools — :func:`protect_raw_chunk` takes only
        the picklable plan, so thread workers run it in-process while process
        workers receive it pickled; either way at most ``max_workers + 1``
        chunks are in flight and results come back in submission order.
        """
        context = _trace_capture()
        tracer = _current_tracer()
        with self._pool(max_workers) as pool:
            for chunk in _bounded_ordered(
                lambda chunk: pool.submit(_protect_chunk_task, context, plan, chunk[0], chunk[1]),
                iter_raw_chunks(path, chunk_size),
                max_workers,
            ):
                if chunk.spans and tracer is not None:
                    tracer.ingest(chunk.spans)
                yield chunk


class ThreadRunner(ShardRunner):
    """PR 2's behavior: a thread pool sharing the watermarker and its caches."""

    name = "thread"

    def _pool(self, max_workers: int) -> Executor:
        return ThreadPoolExecutor(max_workers=max_workers)

    def _submit_binned(self, pool, watermarker, piece, mark_length):
        # Pool threads have no ambient trace scope; hand the submitting
        # thread's scope across so worker-side stage spans record into the
        # live tracer (a no-op untraced — the context is then None).
        return pool.submit(
            _run_in_trace_scope, _trace_capture(), watermarker.collect_votes, piece, mark_length
        )


class ProcessRunner(ShardRunner):
    """GIL-free detection: engines rebuilt per worker, votes shipped back.

    Workers receive a :class:`WatermarkerSpec` (hash objects don't pickle)
    plus either a pickled shard or a raw CSV chunk, and return only the
    chunk's :class:`DetectionVotes`.  On the CSV path the workers also parse,
    which is where most of a detect's cycles go — the caller's thread does
    nothing but line-splitting and merging.
    """

    name = "process"

    def _pool(self, max_workers: int) -> Executor:
        return ProcessPoolExecutor(max_workers=max_workers)

    def _submit_binned(self, pool, watermarker, piece, mark_length):
        return pool.submit(_collect_binned, WatermarkerSpec.of(watermarker), piece, mark_length)

    def collect_csv(
        self,
        watermarker: HierarchicalWatermarker,
        path: str,
        schema: TableSchema,
        metadata: Mapping[str, object],
        mark_length: int,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_workers: int,
        on_rows: Callable[[int], None] | None = None,
    ) -> Iterator[DetectionVotes]:
        spec = WatermarkerSpec.of(watermarker)
        context = _trace_capture()
        tracer = _current_tracer()
        with self._pool(max_workers) as pool:
            results = _bounded_ordered(
                lambda chunk: pool.submit(
                    _collect_chunk_task,
                    context,
                    spec,
                    schema,
                    metadata,
                    chunk[0],
                    chunk[1],
                    mark_length,
                ),
                iter_raw_chunks(path, chunk_size),
                max_workers,
            )
            for rows, votes, spans in results:
                if spans and tracer is not None:
                    tracer.ingest(spans)
                if on_rows is not None:
                    on_rows(rows)
                yield votes


class FleetError(RuntimeError):
    """Every worker of a remote fleet failed to serve a chunk (after retries)."""


#: Consecutive failures after which a worker is deprioritised for new chunks.
_DEPRIORITISE_AFTER = 3

#: Default number of full passes over the fleet before a chunk gives up.
DEFAULT_FLEET_ATTEMPTS = 2

#: Per-chunk POST timeout (seconds).  Deliberately much tighter than the
#: client's whole-file default: a chunk is ``chunk_size`` rows of parse +
#: vote collection (well under a second per 10k rows), and a worker that
#: accepts TCP but hangs must not stall failover for minutes.
DEFAULT_FLEET_TIMEOUT = 30.0


class _FleetCall:
    """Per-``collect*``-call failover state: one POST per chunk, fleet-wide retries.

    Chunk *index* starts at its round-robin worker (``index % n``) and walks
    the fleet from there.  Transport failures and 5xx responses mark the
    worker and move on; 4xx responses raise immediately — an auth or
    wire-format problem will be refused identically by every worker, so
    failing over would only repeat it.  Workers with
    ``_DEPRIORITISE_AFTER``-plus consecutive failures are skipped on the
    first pass (don't pay a connect timeout per chunk for a dead box) but
    retried on later passes, so a recovered worker rejoins without restart.
    """

    def __init__(
        self,
        workers: Sequence[tuple[str, object]],
        attempts: int,
        context: TraceContext | None = None,
    ) -> None:
        self._workers = list(workers)
        self._attempts = max(1, attempts)
        self._lock = threading.Lock()
        self._failures = [0] * len(self._workers)
        # Trace scope of the submitting thread: POSTs run on pool threads, so
        # the coordinator's trace id travels explicitly (request headers out,
        # worker spans ingested from the response).
        self._context = context

    def _trace_headers(self) -> dict[str, str] | None:
        if self._context is None:
            return None
        headers = {TRACE_HEADER: self._context.trace_id}
        if self._context.parent_id is not None:
            headers[PARENT_HEADER] = self._context.parent_id
        return headers

    def _consecutive_failures(self, slot: int) -> int:
        with self._lock:
            return self._failures[slot]

    def _record(self, slot: int, *, failed: bool) -> None:
        with self._lock:
            self._failures[slot] = self._failures[slot] + 1 if failed else 0

    def post(self, index: int, payload: dict) -> dict:
        import http.client as _http_client

        from repro.service.http.client import HTTPServiceError

        n = len(self._workers)
        errors: list[str] = []
        for attempt in range(self._attempts):
            for offset in range(n):
                slot = (index + offset) % n
                if attempt == 0 and self._consecutive_failures(slot) >= _DEPRIORITISE_AFTER:
                    continue
                url, client = self._workers[slot]
                try:
                    with _trace_adopt(self._context):
                        with _stage_span("http.client.detect_votes", chunk=index, worker=slot):
                            response = client.detect_votes(payload, headers=self._trace_headers())
                except HTTPServiceError as error:
                    if 400 <= error.status < 500:
                        raise  # auth/data/config error: every worker will refuse alike
                    # 5xx — and degenerate cases like a 200 with a corrupt
                    # body (a worker dying mid-response) — are this worker's
                    # problem, not the chunk's: fail over.
                    self._record(slot, failed=True)
                    errors.append(f"{url}: {error}")
                except (OSError, _http_client.HTTPException) as error:
                    # Connection refused/reset, timeouts, and half-written
                    # responses (IncompleteRead is an HTTPException, not an
                    # OSError) all mean "this worker is down".
                    self._record(slot, failed=True)
                    errors.append(f"{url}: {error!r}")
                else:
                    self._record(slot, failed=False)
                    if self._context is not None and self._context.tracer is not None:
                        self._context.tracer.ingest(response.get("spans") or ())
                    return response
        raise FleetError(
            f"all {n} remote worker(s) failed chunk {index} "
            f"after {self._attempts} attempt(s): " + "; ".join(errors[-n:])
        )


class RemoteRunner(ShardRunner):
    """Multi-machine detection: chunks out to a worker fleet, votes back.

    Each chunk becomes one ``POST /internal/detect-votes`` against a
    ``repro serve`` worker, carrying the raw CSV lines, the picklable
    watermarker spec and the JSON-able frontier metadata (trees are resolved
    worker-side — the fleet must share the coordinator's ontology and
    schema).  Responses carry that chunk's :class:`DetectionVotes`, yielded
    in chunk order, so the executor's merge/finalize is untouched and the
    result stays bit-identical to serial detection.  Workers never see the
    vault: the spec carries exactly the key material one detect needs, over
    the same bearer-token hop the rest of the HTTP surface uses (workers
    gate the endpoint behind their ``--admin-token``; pass it as *token*).

    ``max_workers`` bounds the chunks in flight (concurrent POSTs); failures
    fail over round-robin with bounded retries (:class:`_FleetCall`), and a
    fleet with no live workers raises :class:`FleetError`.
    """

    name = "remote"

    def __init__(
        self,
        worker_urls: Sequence[str],
        *,
        token: str | None = None,
        timeout: float | None = None,
        attempts: int = DEFAULT_FLEET_ATTEMPTS,
    ) -> None:
        # Imported here: http.client imports http.app (for the report header),
        # which imports this module — a load-time cycle, gone at call time.
        from repro.service.http.client import ServiceClient

        urls = [str(url) for url in worker_urls]
        if not urls:
            raise ValueError("remote runner needs at least one worker url (--worker-url)")
        timeout = DEFAULT_FLEET_TIMEOUT if timeout is None else timeout
        self._workers = [(url, ServiceClient(url, token, timeout=timeout)) for url in urls]
        self._attempts = attempts

    @property
    def worker_urls(self) -> tuple[str, ...]:
        return tuple(url for url, _ in self._workers)

    @property
    def connections_opened(self) -> int:
        """TCP connections opened across the fleet's clients.

        With keep-alive workers this stays near the fleet size however many
        chunks are posted — the end-to-end witness that chunk POSTs reuse
        connections (``tests/service/test_prefork.py`` asserts it).
        """
        return sum(client.connections_opened for _, client in self._workers)

    # ------------------------------------------------------------------- API
    def collect_csv(
        self,
        watermarker: HierarchicalWatermarker,
        path: str,
        schema: TableSchema,
        metadata: Mapping[str, object],
        mark_length: int,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_workers: int,
        on_rows: Callable[[int], None] | None = None,
    ) -> Iterator[DetectionVotes]:
        spec_json = spec_to_json(WatermarkerSpec.of(watermarker))
        metadata_json = metadata_to_json(metadata)

        def payloads() -> Iterator[tuple[int, dict]]:
            for index, (header, lines) in enumerate(iter_raw_chunks(path, chunk_size)):
                yield index, {
                    "spec": spec_json,
                    "metadata": metadata_json,
                    "mark_length": mark_length,
                    "header": header,
                    "lines": lines,
                }

        for response in self._post_stream(payloads(), max_workers):
            if on_rows is not None:
                on_rows(int(response["rows"]))
            yield votes_from_json(response["votes"])

    def collect_tables(
        self,
        watermarker: HierarchicalWatermarker,
        chunks: Iterable[BinnedTable],
        mark_length: int,
        *,
        max_workers: int,
    ) -> Iterator[DetectionVotes]:
        """The in-memory path: shards are rendered to CSV text and shipped.

        Requires cell values that round-trip their CSV text forms — true of
        any table that was read from or written to a CSV, i.e. every
        protected/suspect table the service handles.
        """
        spec_json = spec_to_json(WatermarkerSpec.of(watermarker))

        def payloads() -> Iterator[tuple[int, dict]]:
            for index, piece in enumerate(chunks):
                header, lines = table_to_csv_lines(piece.table)
                yield index, {
                    "spec": spec_json,
                    "metadata": binned_metadata_to_json(piece),
                    "mark_length": mark_length,
                    "header": header,
                    "lines": lines,
                }

        for response in self._post_stream(payloads(), max_workers):
            yield votes_from_json(response["votes"])

    supports_protect = False

    def protect_csv(
        self,
        plan: ProtectPlan,
        path: str,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_workers: int,
    ) -> Iterator[ProtectedChunk]:
        """Refused: the remote runner is detect-only.

        Detection ships small :class:`DetectionVotes` back; protect's result
        *is* the rows, so a fleet would pay row shipping in both directions —
        and, worse, expose raw (pre-encryption) identifiers to workers that
        are deliberately vault-blind.  Use ``--runner thread|process``.
        """
        raise ValueError(PROTECT_UNSUPPORTED_ERROR)

    # -------------------------------------------------------------- plumbing
    def _post_stream(
        self, payloads: Iterable[tuple[int, dict]], max_workers: int
    ) -> Iterator[dict]:
        call = _FleetCall(self._workers, self._attempts, context=_trace_capture())
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            yield from _bounded_ordered(
                lambda item: pool.submit(call.post, item[0], item[1]),
                payloads,
                max_workers,
            )


RUNNER_NAMES = ("thread", "process")
REMOTE_RUNNER_NAME = RemoteRunner.name


def resolve_runner(runner: "str | ShardRunner | None") -> ShardRunner:
    """A :class:`ShardRunner` instance from a name, an instance, or ``None``.

    ``None`` and ``"thread"`` give the thread runner (the default);
    ``"process"`` the process runner.  Instances pass through, which is how
    a :class:`RemoteRunner` (whose fleet urls and token cannot travel in a
    name) reaches the executor.
    """
    if runner is None:
        return ThreadRunner()
    if isinstance(runner, ShardRunner):
        return runner
    if runner == "thread":
        return ThreadRunner()
    if runner == "process":
        return ProcessRunner()
    if runner == REMOTE_RUNNER_NAME:
        raise ValueError(
            "the remote runner needs a worker fleet — construct "
            "RemoteRunner([worker_urls], token=...) and pass the instance "
            "(CLI: --runner remote --worker-url URL)"
        )
    raise ValueError(f"unknown runner {runner!r} (expected one of {', '.join(RUNNER_NAMES)})")
