"""Pluggable shard runners: where `collect_votes` actually executes.

The :class:`~repro.service.executor.ShardExecutor` owns the *semantics* of
shard-parallel detection (split into contiguous shards, merge votes in shard
order, finalise once — bit-identical to serial by construction).  This module
owns the *mechanics*: a :class:`ShardRunner` maps
:meth:`~repro.watermarking.hierarchical.HierarchicalWatermarker.collect_votes`
over chunks and yields one
:class:`~repro.watermarking.hierarchical.DetectionVotes` per chunk, **in
chunk order**, with a bounded number in flight.

Two implementations:

* :class:`ThreadRunner` — today's behavior: a
  :class:`~concurrent.futures.ThreadPoolExecutor` whose workers share the
  watermarker (and its digest caches).  Cheap to start, but Python hashing
  over small payloads holds the GIL, so parallelism buys little CPU.
* :class:`ProcessRunner` — a :class:`~concurrent.futures.ProcessPoolExecutor`.
  The watermarker itself cannot cross the process boundary (live HMAC objects
  don't pickle), so each task carries a picklable :class:`WatermarkerSpec`
  from which every worker reconstructs — and caches — its own engine.  Chunks
  travel *to* workers either as pickled :class:`BinnedTable` shards (the
  in-memory path) or as **raw CSV text** (the streaming path, where workers
  also do the parsing — the dominant cost — so detection scales with cores);
  only small :class:`DetectionVotes` travel back, never rows.

Both runners are stateless and picklable-free themselves: pools live for one
``collect*`` call, so a runner instance can be shared by many executors and
services.
"""

from __future__ import annotations

import csv
import itertools
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping

from repro.binning.binner import BinnedTable
from repro.relational.io import parse_row
from repro.relational.schema import TableSchema
from repro.relational.table import Table
from repro.service.streaming import DEFAULT_CHUNK_SIZE, iter_raw_chunks, iter_tables
from repro.watermarking.hierarchical import DetectionVotes, HierarchicalWatermarker
from repro.watermarking.keys import WatermarkKey

__all__ = [
    "WatermarkerSpec",
    "ShardRunner",
    "ThreadRunner",
    "ProcessRunner",
    "RUNNER_NAMES",
    "resolve_runner",
]

_SENTINEL = object()


@dataclass(frozen=True)
class WatermarkerSpec:
    """Everything needed to rebuild a :class:`HierarchicalWatermarker` — picklable.

    The live watermarker holds HMAC objects (C state, unpicklable); this spec
    holds only the key bytes and construction parameters.  ``build()`` in a
    worker process yields an engine that is bit-identical to the parent's:
    selection, positions and permutation indices are pure functions of the
    key material.
    """

    k1: bytes
    k2: bytes
    eta: int
    columns: tuple[str, ...] | None
    copies: int
    level_weighting: bool
    batch: bool

    @classmethod
    def of(cls, watermarker: HierarchicalWatermarker) -> "WatermarkerSpec":
        key = watermarker.key
        return cls(
            k1=key.k1,
            k2=key.k2,
            eta=key.eta,
            columns=watermarker.columns,
            copies=watermarker.copies,
            level_weighting=watermarker.level_weighting,
            batch=watermarker.batched,
        )

    def build(self) -> HierarchicalWatermarker:
        return HierarchicalWatermarker(
            WatermarkKey(k1=self.k1, k2=self.k2, eta=self.eta),
            columns=self.columns,
            copies=self.copies,
            level_weighting=self.level_weighting,
            batch=self.batch,
        )


#: Per-worker-process watermarker cache: successive chunks for the same spec
#: reuse one engine (and its digest caches) instead of re-deriving HMAC pads.
_WORKER_WATERMARKERS: dict[WatermarkerSpec, HierarchicalWatermarker] = {}


def _worker_watermarker(spec: WatermarkerSpec) -> HierarchicalWatermarker:
    watermarker = _WORKER_WATERMARKERS.get(spec)
    if watermarker is None:
        watermarker = spec.build()
        _WORKER_WATERMARKERS[spec] = watermarker
    return watermarker


def _collect_binned(spec: WatermarkerSpec, piece: BinnedTable, mark_length: int) -> DetectionVotes:
    """Process-pool task: votes over one pickled shard."""
    return _worker_watermarker(spec).collect_votes(piece, mark_length)


def _collect_raw_chunk(
    spec: WatermarkerSpec,
    schema: TableSchema,
    metadata: Mapping[str, object],
    header: str,
    lines: list[str],
    mark_length: int,
) -> tuple[int, DetectionVotes]:
    """Process-pool task: parse one raw CSV chunk and collect its votes.

    Parsing mirrors :func:`repro.relational.io.iter_csv_rows` exactly — the
    same ``csv.DictReader`` over the same header + lines, the same
    ``parse_row`` — so a worker sees cell for cell what the in-process reader
    would have produced.  Returns ``(row_count, votes)``: the caller needs
    the count for the detection report and must not re-scan the chunk.
    """
    table = Table(schema)
    for raw in csv.DictReader(itertools.chain([header], lines)):
        table.insert(parse_row(raw, schema))
    binned = BinnedTable(table=table, **metadata)
    return len(table), _worker_watermarker(spec).collect_votes(binned, mark_length)


def _bounded_ordered(
    submit: Callable[[object], "object"],
    items: Iterable[object],
    window_size: int,
) -> Iterator[object]:
    """Yield future results in submission order with a bounded window.

    At most ``window_size + 1`` futures are in flight, so an unbounded chunk
    stream is never drained ahead of the workers (a plain ``Executor.map``
    would) — memory stays one window of chunks regardless of file size.
    """
    window: deque = deque()
    iterator = iter(items)
    exhausted = False
    while True:
        while not exhausted and len(window) <= window_size:
            item = next(iterator, _SENTINEL)
            if item is _SENTINEL:
                exhausted = True
                break
            window.append(submit(item))
        if not window:
            return
        yield window.popleft().result()


class ShardRunner:
    """Maps ``collect_votes`` over chunks; yields votes in chunk order.

    Subclasses override :meth:`_pool` and :meth:`_submit_binned` (and, when
    they can do better than "parse in the caller", :meth:`collect_csv`).
    Instances hold no pool state between calls.
    """

    name: str = "?"

    # ------------------------------------------------------------- primitives
    def _pool(self, max_workers: int) -> Executor:
        raise NotImplementedError

    def _submit_binned(
        self,
        pool: Executor,
        watermarker: HierarchicalWatermarker,
        piece: BinnedTable,
        mark_length: int,
    ):
        raise NotImplementedError

    # ------------------------------------------------------------------- API
    def collect_tables(
        self,
        watermarker: HierarchicalWatermarker,
        chunks: Iterable[BinnedTable],
        mark_length: int,
        *,
        max_workers: int,
    ) -> Iterator[DetectionVotes]:
        """One :class:`DetectionVotes` per chunk, in chunk order."""
        with self._pool(max_workers) as pool:
            yield from _bounded_ordered(
                lambda piece: self._submit_binned(pool, watermarker, piece, mark_length),
                chunks,
                max_workers,
            )

    def collect_csv(
        self,
        watermarker: HierarchicalWatermarker,
        path: str,
        schema: TableSchema,
        metadata: Mapping[str, object],
        mark_length: int,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_workers: int,
        on_rows: Callable[[int], None] | None = None,
    ) -> Iterator[DetectionVotes]:
        """Votes per CSV chunk of *path*, parsed against *schema* + *metadata*.

        The base implementation parses in the calling thread (the thread
        runner's workers share memory, so shipping parsed chunk views is
        free); *on_rows* is invoked with each chunk's row count as it is
        ingested.
        """

        def views() -> Iterator[BinnedTable]:
            for chunk in iter_tables(path, schema, chunk_size):
                if on_rows is not None:
                    on_rows(len(chunk))
                yield BinnedTable(table=chunk, **metadata)

        yield from self.collect_tables(watermarker, views(), mark_length, max_workers=max_workers)


class ThreadRunner(ShardRunner):
    """PR 2's behavior: a thread pool sharing the watermarker and its caches."""

    name = "thread"

    def _pool(self, max_workers: int) -> Executor:
        return ThreadPoolExecutor(max_workers=max_workers)

    def _submit_binned(self, pool, watermarker, piece, mark_length):
        return pool.submit(watermarker.collect_votes, piece, mark_length)


class ProcessRunner(ShardRunner):
    """GIL-free detection: engines rebuilt per worker, votes shipped back.

    Workers receive a :class:`WatermarkerSpec` (hash objects don't pickle)
    plus either a pickled shard or a raw CSV chunk, and return only the
    chunk's :class:`DetectionVotes`.  On the CSV path the workers also parse,
    which is where most of a detect's cycles go — the caller's thread does
    nothing but line-splitting and merging.
    """

    name = "process"

    def _pool(self, max_workers: int) -> Executor:
        return ProcessPoolExecutor(max_workers=max_workers)

    def _submit_binned(self, pool, watermarker, piece, mark_length):
        return pool.submit(_collect_binned, WatermarkerSpec.of(watermarker), piece, mark_length)

    def collect_csv(
        self,
        watermarker: HierarchicalWatermarker,
        path: str,
        schema: TableSchema,
        metadata: Mapping[str, object],
        mark_length: int,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_workers: int,
        on_rows: Callable[[int], None] | None = None,
    ) -> Iterator[DetectionVotes]:
        spec = WatermarkerSpec.of(watermarker)
        with self._pool(max_workers) as pool:
            results = _bounded_ordered(
                lambda chunk: pool.submit(
                    _collect_raw_chunk, spec, schema, metadata, chunk[0], chunk[1], mark_length
                ),
                iter_raw_chunks(path, chunk_size),
                max_workers,
            )
            for rows, votes in results:
                if on_rows is not None:
                    on_rows(rows)
                yield votes


RUNNER_NAMES = ("thread", "process")


def resolve_runner(runner: "str | ShardRunner | None") -> ShardRunner:
    """A :class:`ShardRunner` instance from a name, an instance, or ``None``.

    ``None`` and ``"thread"`` give the thread runner (the default);
    ``"process"`` the process runner.  Instances pass through, so callers can
    inject custom runners (a distributed one would ship ``DetectionVotes``
    over the network the same way).
    """
    if runner is None:
        return ThreadRunner()
    if isinstance(runner, ShardRunner):
        return runner
    if runner == "thread":
        return ThreadRunner()
    if runner == "process":
        return ProcessRunner()
    raise ValueError(f"unknown runner {runner!r} (expected one of {', '.join(RUNNER_NAMES)})")
