"""The JSON wire format of distributed detection: specs, metadata, votes.

The :class:`~repro.service.runners.RemoteRunner` ships raw CSV chunks to
``repro serve`` workers and gets :class:`~repro.watermarking.hierarchical.DetectionVotes`
back; both directions cross the network as JSON.  This module is the single
source of truth for that wire format — the runner builds requests with it,
the worker endpoint (``POST /internal/detect-votes``) parses them with it,
and the round-trip tests assert losslessness against it.

Three shapes:

* **watermarker spec** — :func:`spec_to_json`/:func:`spec_from_json` carry a
  :class:`~repro.service.runners.WatermarkerSpec` (key bytes hex-encoded plus
  construction parameters), from which a worker rebuilds — and caches — an
  engine bit-identical to the coordinator's.
* **suspect metadata** — :func:`metadata_to_json`/:func:`metadata_from_json`
  carry the :class:`~repro.binning.binner.BinnedTable` frontier fields
  (column lists, per-column node *names*, ``k``).  Domain hierarchy trees do
  not cross the wire: node names are resolved against the *worker's* own
  trees, so every fleet member must be configured with the same ontology —
  the same assumption the vault already makes about schema parameters.
* **votes** — :func:`votes_to_json`/:func:`votes_from_json` carry the
  per-position vote lists.  Positions become string keys (JSON objects), vote
  lists stay ordered, counters stay exact — deserialize(serialize(v)) == v,
  so merging remote votes finalises bit-identically to serial detection.

:func:`table_to_csv_lines` renders an in-memory table into the same
``(header, lines)`` chunk shape :func:`~repro.service.streaming.iter_raw_chunks`
produces from a file, which is how the in-memory detect path reaches remote
workers through the one chunk-shipping endpoint.

Telemetry deliberately stays *outside* these shapes: a traced chunk request
carries ``X-Repro-Trace-Id`` as a header and the worker returns its spans
as a sibling ``"spans"`` key next to the serialized votes — so the vote
round trip is lossless with telemetry on, off, or half-configured (see
``docs/observability.md``).
"""

from __future__ import annotations

import csv
import io
from typing import Mapping

from repro.binning.binner import BinnedTable
from repro.relational.table import Table
from repro.watermarking.hierarchical import DetectionVotes

__all__ = [
    "votes_to_json",
    "votes_from_json",
    "spec_to_json",
    "spec_from_json",
    "metadata_to_json",
    "metadata_from_json",
    "binned_metadata_to_json",
    "table_to_csv_lines",
]

#: BinnedTable metadata fields that cross the wire (trees deliberately not).
_METADATA_COLUMNS = ("identifying_columns", "quasi_columns")
_METADATA_NODE_MAPS = ("ultimate_nodes", "maximal_nodes", "minimal_nodes")


# ------------------------------------------------------------------- votes
def votes_to_json(votes: DetectionVotes) -> dict:
    """A JSON-able document for *votes*; lossless (see :func:`votes_from_json`)."""
    return {
        "wmd_length": votes.wmd_length,
        "votes": {str(position): list(cast) for position, cast in votes.votes.items()},
        "tuples_selected": votes.tuples_selected,
        "cells_read": votes.cells_read,
        "votes_cast": votes.votes_cast,
    }


def votes_from_json(payload: Mapping) -> DetectionVotes:
    """The :class:`DetectionVotes` a :func:`votes_to_json` document encodes."""
    try:
        return DetectionVotes(
            wmd_length=int(payload["wmd_length"]),
            votes={
                int(position): [int(vote) for vote in cast]
                for position, cast in payload["votes"].items()
            },
            tuples_selected=int(payload["tuples_selected"]),
            cells_read=int(payload["cells_read"]),
            votes_cast=int(payload["votes_cast"]),
        )
    except (KeyError, TypeError, AttributeError) as error:
        raise ValueError(f"malformed votes document: {error!r}") from None


# -------------------------------------------------------------------- spec
def spec_to_json(spec) -> dict:
    """A JSON-able document for a :class:`~repro.service.runners.WatermarkerSpec`."""
    return {
        "k1": spec.k1.hex(),
        "k2": spec.k2.hex(),
        "eta": spec.eta,
        "columns": list(spec.columns) if spec.columns is not None else None,
        "copies": spec.copies,
        "level_weighting": spec.level_weighting,
        "batch": spec.batch,
        "code": spec.code,
    }


def spec_from_json(payload: Mapping):
    """The :class:`WatermarkerSpec` a :func:`spec_to_json` document encodes."""
    from repro.service.runners import WatermarkerSpec  # circular at module load

    try:
        columns = payload["columns"]
        return WatermarkerSpec(
            k1=bytes.fromhex(payload["k1"]),
            k2=bytes.fromhex(payload["k2"]),
            eta=int(payload["eta"]),
            columns=tuple(str(column) for column in columns) if columns is not None else None,
            copies=int(payload["copies"]),
            level_weighting=bool(payload["level_weighting"]),
            batch=bool(payload["batch"]),
            # Pre-ECC peers omit the key; default to the seed scheme.
            code=str(payload.get("code", "repetition")),
        )
    except (KeyError, TypeError) as error:
        raise ValueError(f"malformed watermarker spec: {error!r}") from None


# ---------------------------------------------------------------- metadata
def metadata_to_json(metadata: Mapping[str, object]) -> dict:
    """The JSON-able frontier fields of a :class:`BinnedTable` metadata dict.

    Accepts the same mapping :func:`repro.service.api.suspect_view` builds
    (``trees`` included) and keeps everything *except* the trees — the
    receiving worker reattaches its own.
    """
    out: dict = {"k": int(metadata.get("k", 1))}
    for name in _METADATA_COLUMNS:
        if name in metadata:
            out[name] = [str(column) for column in metadata[name]]
    for name in _METADATA_NODE_MAPS:
        if name in metadata:
            out[name] = {
                column: [str(node) for node in nodes]
                for column, nodes in metadata[name].items()
            }
    return out


def metadata_from_json(payload: Mapping, trees: Mapping[str, object]) -> dict:
    """Rebuild :class:`BinnedTable` metadata kwargs, attaching this side's *trees*.

    Raises :class:`ValueError` when the document names a quasi column this
    side has no domain hierarchy tree for — a fleet-configuration mismatch,
    not a data error.
    """
    if not isinstance(payload, Mapping):
        raise ValueError("metadata must be a JSON object")
    quasi = tuple(str(column) for column in payload.get("quasi_columns", ()))
    missing = [column for column in quasi if column not in trees]
    if missing:
        raise ValueError(
            f"no domain hierarchy tree for column(s) {', '.join(missing)} "
            "(fleet members must share the coordinator's ontology)"
        )
    out: dict = {
        "trees": {column: trees[column] for column in quasi},
        "quasi_columns": quasi,
        "k": int(payload.get("k", 1)),
    }
    if "identifying_columns" in payload:
        out["identifying_columns"] = tuple(str(c) for c in payload["identifying_columns"])
    for name in _METADATA_NODE_MAPS:
        if name in payload:
            out[name] = {
                str(column): tuple(str(node) for node in nodes)
                for column, nodes in payload[name].items()
            }
    return out


def binned_metadata_to_json(binned: BinnedTable) -> dict:
    """:func:`metadata_to_json` over a live :class:`BinnedTable`'s own fields."""
    return metadata_to_json(
        {
            "identifying_columns": binned.identifying_columns,
            "quasi_columns": binned.quasi_columns,
            "ultimate_nodes": binned.ultimate_nodes,
            "maximal_nodes": binned.maximal_nodes,
            "minimal_nodes": binned.minimal_nodes,
            "k": binned.k,
        }
    )


# ------------------------------------------------------------------- chunks
def table_to_csv_lines(table: Table) -> tuple[str, list[str]]:
    """Render *table* as the ``(header, lines)`` shape of a raw CSV chunk.

    Cells serialise exactly like :class:`~repro.service.streaming.RowWriter`
    (the csv module's ``str()`` coercion, ``\\r\\n`` terminators), so a worker
    parsing the lines with the shared :mod:`repro.relational.io` machinery
    reads back cell for cell what the in-memory table holds — provided the
    values round-trip their CSV text forms, which every table that was ever
    read from or written to a CSV does by construction.
    """
    names = table.schema.column_names
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\r\n")

    def emit(values) -> str:
        buffer.seek(0)
        buffer.truncate()
        writer.writerow(values)
        return buffer.getvalue()

    header = emit(names)
    columns = table.column_sequences(names)
    if columns is not None:
        # Columnar fast path: zip the column buffers instead of materialising
        # a row view per line; the written values are identical.
        lines = [emit(values) for values in zip(*(columns[name] for name in names))]
    else:
        lines = [emit([row[name] for name in names]) for row in table]
    return header, lines
