"""Pluggable persistence backends for the protection registry.

The registry is everything the owner must retain to litigate: tenants (their
secrets and embedding parameters), dataset registrations (``v`` and ``F(v)``),
bearer-token digests, and ownership claims.  :class:`~repro.service.vault.KeyVault`
and :class:`~repro.service.store.ClaimStore` are facades over one *backend*
object implementing the persistence contract this module defines:

``file`` (default, zero-dep)
    The original JSON documents — ``vault.json`` + ``claims.json`` in the
    vault directory, every mutation an advisory-locked read-modify-write that
    rewrites the whole document atomically (tmp file + ``os.replace`` +
    fsync).  Simple and durable, but each write is O(registry size): at 10k+
    tenants a single registration costs a multi-megabyte serialise.

``sqlite``
    One ``registry.db`` (WAL mode) holding tenants, dataset registrations,
    tokens, claims and the audit chain as rows.  Mutations are per-row SQL
    statements, so write cost no longer grows with the registry; readers see
    committed state live (WAL readers never block on writers), which makes
    the pre-fork workers' reload-on-miss contract trivial.

Backend selection (:func:`resolve_backend`) is uniform everywhere a vault
path is accepted: an explicit ``--backend`` flag or a path scheme
(``sqlite:/path/to/vault``) wins, an existing vault is recognised by its
on-disk artifact, the ``REPRO_VAULT_BACKEND`` environment variable decides
fresh creations, and ``file`` remains the default.

Reload signal
-------------

Long-lived handles (a serving worker) must see mutations from *other*
processes without reparsing on every request.  Each backend provides its own
change signal — the file backend stats the document (inode/size/mtime; an
``os.replace`` always changes the inode), the SQLite backend reads ``PRAGMA
data_version`` (bumped whenever another connection commits) — behind one
``refresh()`` contract: it returns whether state observed through this
handle may have changed, reloading any cached state when it has.  The
facades retry lookups once after a positive ``refresh()``, which is the
whole reload-on-miss protocol.

Connections and forking
-----------------------

SQLite connections must not cross ``fork()`` and are not shared across
threads here: the backend opens one connection per (process, thread) lazily,
so a pre-fork worker or a handler-pool thread always operates on its own
connection.  Writes run under ``BEGIN IMMEDIATE`` with a busy timeout, so
concurrent writers (N processes protecting against one vault) serialise
instead of failing.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from typing import Iterable, Iterator

from repro.service.locking import FileLock, lock_path_for
from repro.telemetry.trace import span as _stage_span

__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "AUDIT_FILENAME",
    "CLAIMS_FILENAME",
    "REGISTRY_FILENAME",
    "VAULT_FILENAME",
    "VaultError",
    "FileRegistryBackend",
    "SQLiteRegistryBackend",
    "make_backend",
    "detect_backend",
    "resolve_backend",
    "split_backend_scheme",
]

#: Environment variable deciding the backend of *newly created* vaults (and
#: the CI matrix knob): ``file`` or ``sqlite``.  Opening an existing vault
#: always honours what is on disk first.
BACKEND_ENV = "REPRO_VAULT_BACKEND"
BACKEND_NAMES = ("file", "sqlite")

VAULT_FILENAME = "vault.json"
CLAIMS_FILENAME = "claims.json"
AUDIT_FILENAME = "audit.log"
REGISTRY_FILENAME = "registry.db"

VAULT_VERSION = 1
CLAIMS_VERSION = 1
REGISTRY_VERSION = 1

#: Seconds a SQLite writer waits on a locked database before giving up.
SQLITE_BUSY_TIMEOUT = 30.0


class VaultError(RuntimeError):
    """Raised for registry lookups/initialisation that cannot be satisfied."""


# ---------------------------------------------------------------------- naming
def split_backend_scheme(path: str | os.PathLike) -> tuple[str | None, str]:
    """Split a ``backend:`` scheme off a vault path (``sqlite:V`` -> ``("sqlite", "V")``).

    Windows drive letters are never backend names, so plain paths pass
    through untouched.
    """
    text = os.fspath(path)
    for name in BACKEND_NAMES:
        prefix = name + ":"
        if text.startswith(prefix):
            return name, text[len(prefix) :]
    return None, text


def _validated_name(name: str, source: str) -> str:
    if name not in BACKEND_NAMES:
        raise VaultError(
            f"unknown vault backend {name!r} from {source} "
            f"(expected one of: {', '.join(BACKEND_NAMES)})"
        )
    return name


def backend_from_env() -> str | None:
    """The ``REPRO_VAULT_BACKEND`` choice, validated; ``None`` when unset."""
    raw = os.environ.get(BACKEND_ENV, "").strip().lower()
    if not raw:
        return None
    return _validated_name(raw, BACKEND_ENV)


def detect_backend(root: str | os.PathLike) -> str | None:
    """The backend an existing vault directory was created with, else ``None``.

    ``registry.db`` wins over a stray ``vault.json`` — a migrated vault may
    keep its old documents around as a backup.
    """
    root = os.fspath(root)
    if os.path.exists(os.path.join(root, REGISTRY_FILENAME)):
        return "sqlite"
    if os.path.exists(os.path.join(root, VAULT_FILENAME)):
        return "file"
    return None


def resolve_backend(
    root: str | os.PathLike, explicit: str | None = None, *, for_init: bool = False
) -> tuple[str, str]:
    """Resolve ``(backend name, bare root)`` for a vault path.

    Priority: path scheme / explicit argument (conflicts are an error), then
    — when opening — whatever artifact is on disk, then ``REPRO_VAULT_BACKEND``,
    then ``file``.
    """
    scheme, bare = split_backend_scheme(root)
    if explicit is not None:
        explicit = _validated_name(explicit, "the backend argument")
    if scheme is not None and explicit is not None and scheme != explicit:
        raise VaultError(
            f"vault path scheme {scheme!r} conflicts with backend {explicit!r}"
        )
    chosen = scheme or explicit
    if chosen is None and not for_init:
        chosen = detect_backend(bare)
    if chosen is None:
        chosen = backend_from_env() or "file"
    return chosen, bare


def make_backend(name: str, root: str | os.PathLike):
    """Instantiate the backend *name* over the vault directory *root*."""
    name = _validated_name(name, "the backend argument")
    if name == "sqlite":
        return SQLiteRegistryBackend(root)
    return FileRegistryBackend(root)


def _atomic_write_json(path: str, document: dict) -> None:
    """Write *document* to *path* atomically (tmp file + ``os.replace``)."""
    directory = os.path.dirname(path) or "."
    tmp_path = path + ".tmp"
    fd = os.open(tmp_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    # Make the rename itself durable where the platform allows it.
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. NT has no directory fds
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


# ----------------------------------------------------------------- file backend
class _JsonDocument:
    """One atomically rewritten JSON document with a stat-gated reload.

    The change signal is the file's ``(inode, size, mtime_ns)`` — an
    ``os.replace`` always changes the inode, so an unchanged signature means
    an unchanged document and a reload check costs one ``stat``.
    """

    def __init__(self, path: str, *, version: int, key: str, span: str) -> None:
        self.path = path
        self._lock_path = lock_path_for(path)
        self._version = version
        self._key = key
        self._span = span
        self._signature: tuple[int, int, int] | None = None
        self._data: dict | None = None  # None = never loaded (lazy)

    @property
    def exists(self) -> bool:
        return os.path.exists(self.path)

    def lock(self) -> FileLock:
        return FileLock(self._lock_path)

    def data(self) -> dict:
        """The loaded document body (loading lazily; empty when absent on disk)."""
        if self._data is None:
            if self.exists:
                self.load()
            else:
                self._data = {}
        return self._data

    def create_empty(self, error: str) -> None:
        with self.lock():
            if self.exists:
                raise VaultError(error)
            _atomic_write_json(self.path, {"version": self._version, self._key: {}})
        self.load()

    def signature(self) -> tuple[int, int, int] | None:
        try:
            stat = os.stat(self.path)
        except OSError:
            return None
        return (stat.st_ino, stat.st_size, stat.st_mtime_ns)

    def load(self) -> None:
        with _stage_span(self._span + ".load"):
            signature = self.signature()
            with open(self.path, encoding="utf-8") as handle:
                document = json.load(handle)
            version = document.get("version")
            if version != self._version:
                raise VaultError(
                    f"unsupported {self._key} document version {version!r} "
                    f"(expected {self._version})"
                )
            self._data = document[self._key]
            self._signature = signature

    def load_for_write(self) -> dict:
        """Re-read under the caller's lock so the mutation sees peers' writes."""
        if self.exists:
            self.load()
        return self.data()

    def save(self) -> None:
        with _stage_span(self._span + ".save"):
            _atomic_write_json(self.path, {"version": self._version, self._key: self.data()})
            self._signature = self.signature()

    def refresh(self) -> bool:
        """Reload only when the on-disk signature moved; report whether it did.

        A vanished or corrupt file reads as "unchanged": the in-memory state
        is the best remaining truth (torn deploys must not take readers down).
        """
        signature = self.signature()
        if signature is None or signature == self._signature:
            return False
        try:
            self.load()
        except (OSError, ValueError, VaultError):  # pragma: no cover - torn deploy
            return False
        return True


class FileRegistryBackend:
    """The zero-dependency JSON-document backend (the original vault format).

    Tenants/tokens/datasets live in ``vault.json``, claims in ``claims.json``
    (separately lockable, so claim traffic never contends with key material),
    the audit chain in ``audit.log`` (JSONL, see :mod:`repro.service.audit`).
    Every mutation is a locked read-modify-write of the whole document.
    """

    name = "file"

    def __init__(self, root: str | os.PathLike, *, claims_path: str | None = None) -> None:
        self._root = os.fspath(root)
        self._vault = _JsonDocument(
            os.path.join(self._root, VAULT_FILENAME),
            version=VAULT_VERSION,
            key="tenants",
            span="vault",
        )
        self._claims = _JsonDocument(
            claims_path if claims_path is not None else os.path.join(self._root, CLAIMS_FILENAME),
            version=CLAIMS_VERSION,
            key="claims",
            span="claims",
        )

    # ---------------------------------------------------------------- lifecycle
    @property
    def root(self) -> str:
        return self._root

    @property
    def path(self) -> str:
        """The backing artifact an operator would back up (or point tools at)."""
        return self._vault.path

    @property
    def artifact(self) -> str:
        return VAULT_FILENAME

    @property
    def exists(self) -> bool:
        return self._vault.exists

    def create(self) -> None:
        os.makedirs(self._root, exist_ok=True)
        self._vault.create_empty(f"vault already initialised at {self._root!r}")

    # ------------------------------------------------------------------ tenants
    def put_tenant(self, tenant_id: str, record: dict) -> bool:
        with self._vault.lock():
            tenants = self._vault.load_for_write()
            if tenant_id in tenants:
                return False
            tenants[tenant_id] = {"record": record, "datasets": {}}
            self._vault.save()
        return True

    def get_tenant(self, tenant_id: str) -> dict | None:
        entry = self._vault.data().get(tenant_id)
        return entry["record"] if entry is not None else None

    def list_tenants(self) -> list[str]:
        return sorted(self._vault.data())

    # ------------------------------------------------------------------- tokens
    def set_token(self, tenant_id: str, digest: str) -> bool:
        with self._vault.lock():
            tenants = self._vault.load_for_write()
            if tenant_id not in tenants:
                return False
            tenants[tenant_id]["token_sha256"] = digest
            self._vault.save()
        return True

    def get_token(self, tenant_id: str) -> str | None:
        entry = self._vault.data().get(tenant_id)
        return entry.get("token_sha256") if entry is not None else None

    # ----------------------------------------------------------------- datasets
    def put_dataset(self, tenant_id: str, dataset_id: str, record: dict) -> bool:
        with self._vault.lock():
            tenants = self._vault.load_for_write()
            if tenant_id not in tenants:
                return False
            tenants[tenant_id]["datasets"][dataset_id] = record
            self._vault.save()
        return True

    def get_dataset(self, tenant_id: str, dataset_id: str) -> dict | None:
        entry = self._vault.data().get(tenant_id)
        if entry is None:
            return None
        return entry.get("datasets", {}).get(dataset_id)

    def list_datasets(self, tenant_id: str) -> list[str]:
        entry = self._vault.data().get(tenant_id)
        return sorted(entry.get("datasets", {})) if entry is not None else []

    # ---------------------------------------------------------------- freshness
    def change_signal(self) -> tuple:
        """The backend-provided reload signal (file: the document's stat triple)."""
        return ("file", self._vault.signature())

    def refresh(self) -> bool:
        return self._vault.refresh()

    def reload(self) -> None:
        self._vault.load()

    def refresh_claims(self) -> bool:
        return self._claims.refresh()

    def reload_claims(self) -> None:
        self._claims.load()

    # ------------------------------------------------------------------- claims
    @property
    def claims_path(self) -> str:
        return self._claims.path

    def append_claim(self, dataset_id: str, claimant: str, record: dict) -> None:
        with self._claims.lock():
            claims = self._claims.load_for_write()
            entries = claims.get(dataset_id, [])
            # Rebind rather than mutate in place: a concurrent reader (a
            # dispute on another server thread) iterating the old list keeps
            # a consistent snapshot instead of observing the removed-but-not-
            # yet-re-added window.
            claims[dataset_id] = [
                entry for entry in entries if entry["claimant"] != claimant
            ] + [record]
            self._claims.save()

    def remove_claim(self, dataset_id: str, claimant: str) -> bool:
        with self._claims.lock():
            claims = self._claims.load_for_write()
            entries = claims.get(dataset_id, [])
            kept = [entry for entry in entries if entry["claimant"] != claimant]
            removed = len(kept) != len(entries)
            if removed:
                if kept:
                    claims[dataset_id] = kept
                else:
                    del claims[dataset_id]
                self._claims.save()
        return removed

    def list_claims(self, dataset_id: str) -> list[dict]:
        return list(self._claims.data().get(dataset_id, []))

    def claim_datasets(self) -> list[str]:
        return sorted(self._claims.data())

    # -------------------------------------------------------------------- audit
    def audit_log(self):
        from repro.service.audit import FileAuditLog

        return FileAuditLog(os.path.join(self._root, AUDIT_FILENAME))

    # --------------------------------------------------------- bulk state (ops)
    def export_state(self) -> dict:
        """The whole registry as one JSON-able document (migration/backup)."""
        self._vault.refresh()
        self._claims.refresh()
        return json.loads(
            json.dumps({"tenants": self._vault.data(), "claims": self._claims.data()})
        )

    def import_state(self, state: dict) -> None:
        """Replace this registry's contents with *state* (one save per document).

        Bulk import is the migration/seeding path: it bypasses the per-row
        mutation protocol (and the audit chain) by design.
        """
        with self._vault.lock():
            tenants = self._vault.load_for_write()
            tenants.clear()
            tenants.update(state.get("tenants", {}))
            self._vault.save()
        with self._claims.lock():
            claims = self._claims.load_for_write()
            claims.clear()
            claims.update(state.get("claims", {}))
            self._claims.save()


# --------------------------------------------------------------- sqlite backend
_SCHEMA = (
    """CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
)""",
    """CREATE TABLE IF NOT EXISTS tenants (
    tenant_id    TEXT PRIMARY KEY,
    record       TEXT NOT NULL,
    token_sha256 TEXT
)""",
    """CREATE TABLE IF NOT EXISTS datasets (
    tenant_id  TEXT NOT NULL,
    dataset_id TEXT NOT NULL,
    record     TEXT NOT NULL,
    PRIMARY KEY (tenant_id, dataset_id)
)""",
    """CREATE TABLE IF NOT EXISTS claims (
    dataset_id TEXT NOT NULL,
    claimant   TEXT NOT NULL,
    record     TEXT NOT NULL,
    PRIMARY KEY (dataset_id, claimant)
)""",
    """CREATE TABLE IF NOT EXISTS audit (
    idx     INTEGER PRIMARY KEY,
    prev    TEXT NOT NULL,
    ts      REAL NOT NULL,
    event   TEXT NOT NULL,
    tenant  TEXT,
    dataset TEXT,
    payload TEXT NOT NULL,
    digest  TEXT NOT NULL
)""",
)


class _Transaction:
    """``BEGIN IMMEDIATE`` … ``COMMIT``/``ROLLBACK`` on an autocommit connection.

    IMMEDIATE takes the write lock up front, so a read-then-write mutation
    (register-if-absent, append-to-chain) can never interleave with another
    writer's — the cross-process equivalent of the file backend's
    :class:`FileLock`.  The connection's busy timeout arbitrates contention.
    """

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn

    def __enter__(self) -> sqlite3.Connection:
        self._conn.execute("BEGIN IMMEDIATE")
        return self._conn

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._conn.execute("COMMIT")
        else:
            self._conn.execute("ROLLBACK")


class SQLiteRegistryBackend:
    """Per-row registry persistence in one WAL-mode SQLite database.

    Reads are live: every lookup sees the latest committed state, whichever
    process or thread wrote it, so the reload-on-miss retries the facades
    perform for the file backend become no-ops here.  ``refresh()`` still
    reports change honestly via ``PRAGMA data_version`` (bumped whenever a
    *different* connection commits) to keep the contract uniform.
    """

    name = "sqlite"

    def __init__(self, root: str | os.PathLike) -> None:
        self._root = os.fspath(root)
        self._path = os.path.join(self._root, REGISTRY_FILENAME)
        self._local = threading.local()
        self._creating = False

    # ---------------------------------------------------------------- lifecycle
    @property
    def root(self) -> str:
        return self._root

    @property
    def path(self) -> str:
        return self._path

    @property
    def artifact(self) -> str:
        return REGISTRY_FILENAME

    @property
    def exists(self) -> bool:
        return os.path.exists(self._path)

    def create(self) -> None:
        os.makedirs(self._root, exist_ok=True)
        if self.exists:
            raise VaultError(f"vault already initialised at {self._root!r}")
        # Touch the file with 0600 *before* SQLite writes pages into it: the
        # registry holds tenant secrets, exactly like vault.json (the -wal
        # and -shm sidecars inherit the database file's permissions).
        fd = os.open(self._path, os.O_CREAT | os.O_WRONLY, 0o600)
        os.close(fd)
        self._creating = True
        try:
            conn = self._connection()
            with _Transaction(conn):
                for statement in _SCHEMA:
                    conn.execute(statement)
                conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES ('version', ?)",
                    (str(REGISTRY_VERSION),),
                )
        finally:
            self._creating = False

    # -------------------------------------------------------------- connections
    def connection(self) -> sqlite3.Connection:
        """This (process, thread)'s connection — never shared, fork-safe."""
        return self._connection()

    def _connection(self) -> sqlite3.Connection:
        state = self._local
        if getattr(state, "conn", None) is None or state.pid != os.getpid():
            # A connection inherited over fork() must never be reused; a new
            # pid means this is the first touch in a pre-fork worker.
            state.conn = self._connect()
            state.pid = os.getpid()
            state.data_version = self._read_data_version(state.conn)
        return state.conn

    def _connect(self) -> sqlite3.Connection:
        try:
            conn = sqlite3.connect(self._path, timeout=SQLITE_BUSY_TIMEOUT)
            conn.isolation_level = None  # autocommit; _Transaction manages writes
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA foreign_keys=ON")
            if not self._creating:
                self._validate(conn)
        except sqlite3.DatabaseError as error:
            raise VaultError(
                f"{self._path!r} is not a usable registry database: {error}"
            ) from error
        return conn

    def _validate(self, conn: sqlite3.Connection) -> None:
        try:
            row = conn.execute("SELECT value FROM meta WHERE key = 'version'").fetchone()
        except sqlite3.OperationalError as error:  # missing tables
            raise VaultError(
                f"{self._path!r} has no registry schema (not a vault?): {error}"
            ) from error
        version = int(row[0]) if row is not None else None
        if version != REGISTRY_VERSION:
            raise VaultError(
                f"unsupported registry version {version!r} (expected {REGISTRY_VERSION})"
            )

    @staticmethod
    def _read_data_version(conn: sqlite3.Connection) -> int:
        return int(conn.execute("PRAGMA data_version").fetchone()[0])

    # ------------------------------------------------------------------ tenants
    def put_tenant(self, tenant_id: str, record: dict) -> bool:
        conn = self._connection()
        with _Transaction(conn):
            cursor = conn.execute(
                "INSERT OR IGNORE INTO tenants (tenant_id, record) VALUES (?, ?)",
                (tenant_id, _dump(record)),
            )
            return cursor.rowcount == 1

    def get_tenant(self, tenant_id: str) -> dict | None:
        row = self._connection().execute(
            "SELECT record FROM tenants WHERE tenant_id = ?", (tenant_id,)
        ).fetchone()
        return json.loads(row[0]) if row is not None else None

    def list_tenants(self) -> list[str]:
        rows = self._connection().execute(
            "SELECT tenant_id FROM tenants ORDER BY tenant_id"
        ).fetchall()
        return [row[0] for row in rows]

    # ------------------------------------------------------------------- tokens
    def set_token(self, tenant_id: str, digest: str) -> bool:
        conn = self._connection()
        with _Transaction(conn):
            cursor = conn.execute(
                "UPDATE tenants SET token_sha256 = ? WHERE tenant_id = ?",
                (digest, tenant_id),
            )
            return cursor.rowcount == 1

    def get_token(self, tenant_id: str) -> str | None:
        row = self._connection().execute(
            "SELECT token_sha256 FROM tenants WHERE tenant_id = ?", (tenant_id,)
        ).fetchone()
        return row[0] if row is not None else None

    # ----------------------------------------------------------------- datasets
    def put_dataset(self, tenant_id: str, dataset_id: str, record: dict) -> bool:
        conn = self._connection()
        with _Transaction(conn):
            known = conn.execute(
                "SELECT 1 FROM tenants WHERE tenant_id = ?", (tenant_id,)
            ).fetchone()
            if known is None:
                return False
            conn.execute(
                "INSERT INTO datasets (tenant_id, dataset_id, record) VALUES (?, ?, ?) "
                "ON CONFLICT (tenant_id, dataset_id) DO UPDATE SET record = excluded.record",
                (tenant_id, dataset_id, _dump(record)),
            )
            return True

    def get_dataset(self, tenant_id: str, dataset_id: str) -> dict | None:
        row = self._connection().execute(
            "SELECT record FROM datasets WHERE tenant_id = ? AND dataset_id = ?",
            (tenant_id, dataset_id),
        ).fetchone()
        return json.loads(row[0]) if row is not None else None

    def list_datasets(self, tenant_id: str) -> list[str]:
        rows = self._connection().execute(
            "SELECT dataset_id FROM datasets WHERE tenant_id = ? ORDER BY dataset_id",
            (tenant_id,),
        ).fetchall()
        return [row[0] for row in rows]

    # ---------------------------------------------------------------- freshness
    def change_signal(self) -> tuple:
        """The backend-provided reload signal (sqlite: ``PRAGMA data_version``)."""
        return ("sqlite", self._read_data_version(self._connection()))

    def refresh(self) -> bool:
        """Whether another connection committed since this handle last looked.

        Reads are live regardless — this only keeps the uniform contract's
        return value honest (and cheap: one PRAGMA, no I/O beyond the first
        page).
        """
        conn = self._connection()
        state = self._local
        current = self._read_data_version(conn)
        changed = current != state.data_version
        state.data_version = current
        return changed

    def reload(self) -> None:
        self.refresh()

    def refresh_claims(self) -> bool:
        return self.refresh()

    def reload_claims(self) -> None:
        self.refresh()

    # ------------------------------------------------------------------- claims
    @property
    def claims_path(self) -> str:
        return self._path

    def append_claim(self, dataset_id: str, claimant: str, record: dict) -> None:
        conn = self._connection()
        with _Transaction(conn):
            # Delete-then-insert (not upsert) so a replaced claim moves to the
            # end of the list, exactly like the file backend's rebind-append:
            # claim order is dispute-visible and must match across backends.
            conn.execute(
                "DELETE FROM claims WHERE dataset_id = ? AND claimant = ?",
                (dataset_id, claimant),
            )
            conn.execute(
                "INSERT INTO claims (dataset_id, claimant, record) VALUES (?, ?, ?)",
                (dataset_id, claimant, _dump(record)),
            )

    def remove_claim(self, dataset_id: str, claimant: str) -> bool:
        conn = self._connection()
        with _Transaction(conn):
            cursor = conn.execute(
                "DELETE FROM claims WHERE dataset_id = ? AND claimant = ?",
                (dataset_id, claimant),
            )
            return cursor.rowcount > 0

    def list_claims(self, dataset_id: str) -> list[dict]:
        rows = self._connection().execute(
            "SELECT record FROM claims WHERE dataset_id = ? ORDER BY rowid",
            (dataset_id,),
        ).fetchall()
        return [json.loads(row[0]) for row in rows]

    def claim_datasets(self) -> list[str]:
        rows = self._connection().execute(
            "SELECT DISTINCT dataset_id FROM claims ORDER BY dataset_id"
        ).fetchall()
        return [row[0] for row in rows]

    # -------------------------------------------------------------------- audit
    def audit_log(self):
        from repro.service.audit import SQLiteAuditLog

        return SQLiteAuditLog(self)

    # --------------------------------------------------------- bulk state (ops)
    def export_state(self) -> dict:
        conn = self._connection()
        tenants: dict[str, dict] = {}
        for tenant_id, record, token in conn.execute(
            "SELECT tenant_id, record, token_sha256 FROM tenants ORDER BY tenant_id"
        ):
            entry: dict = {"record": json.loads(record), "datasets": {}}
            if token:
                entry["token_sha256"] = token
            tenants[tenant_id] = entry
        for tenant_id, dataset_id, record in conn.execute(
            "SELECT tenant_id, dataset_id, record FROM datasets ORDER BY tenant_id, dataset_id"
        ):
            tenants[tenant_id]["datasets"][dataset_id] = json.loads(record)
        claims: dict[str, list[dict]] = {}
        for dataset_id, record in conn.execute(
            "SELECT dataset_id, record FROM claims ORDER BY rowid"
        ):
            claims.setdefault(dataset_id, []).append(json.loads(record))
        return {"tenants": tenants, "claims": claims}

    def import_state(self, state: dict) -> None:
        conn = self._connection()
        with _Transaction(conn):
            conn.execute("DELETE FROM claims")
            conn.execute("DELETE FROM datasets")
            conn.execute("DELETE FROM tenants")
            conn.executemany(
                "INSERT INTO tenants (tenant_id, record, token_sha256) VALUES (?, ?, ?)",
                (
                    (tenant_id, _dump(entry["record"]), entry.get("token_sha256"))
                    for tenant_id, entry in state.get("tenants", {}).items()
                ),
            )
            conn.executemany(
                "INSERT INTO datasets (tenant_id, dataset_id, record) VALUES (?, ?, ?)",
                (
                    (tenant_id, dataset_id, _dump(record))
                    for tenant_id, entry in state.get("tenants", {}).items()
                    for dataset_id, record in entry.get("datasets", {}).items()
                ),
            )
            conn.executemany(
                "INSERT INTO claims (dataset_id, claimant, record) VALUES (?, ?, ?)",
                (
                    (dataset_id, record["claimant"], _dump(record))
                    for dataset_id, records in state.get("claims", {}).items()
                    for record in records
                ),
            )


def _dump(document: dict) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def iter_backend_pairs(roots: Iterable[str]) -> Iterator[tuple[str, str]]:  # pragma: no cover
    """(reserved for future multi-vault tooling)"""
    for root in roots:
        name, bare = resolve_backend(root)
        yield name, bare
