"""Persistent ownership claims backing the dispute flow of Section 5.4.

A dispute is resolved from :class:`~repro.watermarking.ownership.OwnershipClaim`
objects — the registered statistic, the mark, the watermark key and the
encryption key each claimant brings to court.  The in-memory objects die with
the process, so the :class:`ClaimStore` serialises them next to the vault and
re-hydrates full ``OwnershipClaim`` instances on demand: a cold process can
call ``resolve_dispute`` with nothing but the store's location.

Claims are keyed by dataset, so rival claims over the *same* disputed table
(the paper's Attack 1/Attack 2 scenarios) naturally accumulate under one key
and are assessed together.  Storage goes through the vault's pluggable
backend (:mod:`repro.service.backends`): the ``file`` backend keeps the
original atomic ``claims.json`` document, the ``sqlite`` backend keeps one
row per (dataset, claimant) in ``registry.db``.  Either way mutations are
serialised, so two concurrent protects (or a protect racing a rival
registering a bogus claim over HTTP) never lose each other's entries — and
claim *order* (arrival order, replaced claims moving to the end) is
identical across backends because disputes see it.
"""

from __future__ import annotations

import os

from repro.service.backends import CLAIMS_FILENAME, FileRegistryBackend
from repro.watermarking.keys import WatermarkKey
from repro.watermarking.mark import Mark
from repro.watermarking.ownership import OwnershipClaim

__all__ = ["ClaimStore", "claim_to_json", "claim_from_json", "CLAIMS_FILENAME"]

CLAIMS_VERSION = 1


def _key_to_json(value: bytes | str) -> dict:
    """Serialise a key that may be raw bytes or an operator-supplied string."""
    if isinstance(value, bytes):
        return {"kind": "hex", "value": value.hex()}
    return {"kind": "str", "value": value}


def _key_from_json(payload: dict) -> bytes | str:
    if payload["kind"] == "hex":
        return bytes.fromhex(payload["value"])
    return payload["value"]


def claim_to_json(claim: OwnershipClaim) -> dict:
    """The JSON document for one claim (inverse of :func:`claim_from_json`)."""
    return {
        "claimant": claim.claimant,
        "registered_statistic": claim.registered_statistic,
        "mark": str(claim.mark),
        "watermark_key": {
            "k1": claim.watermark_key.k1.hex(),
            "k2": claim.watermark_key.k2.hex(),
            "eta": claim.watermark_key.eta,
        },
        "encryption_key": _key_to_json(claim.encryption_key),
        "copies": claim.copies,
        "columns": list(claim.columns) if claim.columns is not None else None,
        "code": claim.code,
    }


def claim_from_json(payload: dict) -> OwnershipClaim:
    """Re-hydrate a full :class:`OwnershipClaim` from its JSON document."""
    key = payload["watermark_key"]
    columns = payload["columns"]
    return OwnershipClaim(
        claimant=payload["claimant"],
        registered_statistic=payload["registered_statistic"],
        mark=Mark.from_string(payload["mark"]),
        watermark_key=WatermarkKey(
            k1=bytes.fromhex(key["k1"]), k2=bytes.fromhex(key["k2"]), eta=key["eta"]
        ),
        encryption_key=_key_from_json(payload["encryption_key"]),
        copies=payload["copies"],
        columns=tuple(columns) if columns is not None else None,
        # Claims written before the coding layer carry no code: the seed
        # scheme was the only one, so default to it.
        code=payload.get("code"),
    )


class ClaimStore:
    """Backend-backed store of ownership claims, keyed by dataset.

    One claimant holds at most one claim per dataset: re-adding (a
    re-protect, or an attacker refreshing a bogus claim) replaces the
    previous entry so disputes never double-count a claimant.

    Constructed either from a ``claims.json`` *path* (standalone, always the
    file format — the historic API) or from a vault's *backend* (via
    :meth:`KeyVault.claim_store`), in which case claims share the vault's
    storage and backend choice.
    """

    def __init__(self, path: str | os.PathLike | None = None, *, backend=None) -> None:
        if backend is None:
            if path is None:
                raise ValueError("ClaimStore needs a path or a backend")
            path = os.fspath(path)
            backend = FileRegistryBackend(os.path.dirname(path) or ".", claims_path=path)
        self._backend = backend
        # Load eagerly (file backend) so an unusable store fails at open, not
        # first read; a missing file stays untouched — created lazily on the
        # first mutation, because a store that only ever reads (detect,
        # status, a vault on read-only media) must not write anything.
        if os.path.exists(self._backend.claims_path):
            self._backend.reload_claims()

    @property
    def path(self) -> str:
        return self._backend.claims_path

    # --------------------------------------------------------------------- API
    def add_claim(self, dataset_id: str, claim: OwnershipClaim) -> None:
        """Persist *claim* for *dataset_id* (replacing the claimant's previous one).

        A serialised read-modify-write: concurrent writers see each other's
        claims instead of overwriting the store wholesale.
        """
        if not dataset_id:
            raise ValueError("dataset_id must be non-empty")
        self._backend.append_claim(dataset_id, claim.claimant, claim_to_json(claim))

    def claims(self, dataset_id: str) -> list[OwnershipClaim]:
        """Every stored claim over *dataset_id*, re-hydrated.

        Reads pick up writes from other processes first (gated on the
        backend's change signal, so an unchanged store costs one ``stat`` /
        one pragma): a dispute served by a long-running process must see the
        claim a CLI protect just persisted.
        """
        self._backend.refresh_claims()
        return [claim_from_json(entry) for entry in self._backend.list_claims(dataset_id)]

    def claimants(self, dataset_id: str) -> list[str]:
        self._backend.refresh_claims()
        return [entry["claimant"] for entry in self._backend.list_claims(dataset_id)]

    def datasets(self) -> list[str]:
        self._backend.refresh_claims()
        return self._backend.claim_datasets()

    def remove_claim(self, dataset_id: str, claimant: str) -> bool:
        """Drop *claimant*'s claim over *dataset_id*; return whether one existed."""
        return self._backend.remove_claim(dataset_id, claimant)

    # ------------------------------------------------------------- persistence
    def reload(self) -> None:
        self._backend.reload_claims()

    def reload_if_changed(self) -> bool:
        """Refresh from the backend's change signal; report whether it moved."""
        return self._backend.refresh_claims()
