"""Persistent ownership claims backing the dispute flow of Section 5.4.

A dispute is resolved from :class:`~repro.watermarking.ownership.OwnershipClaim`
objects — the registered statistic, the mark, the watermark key and the
encryption key each claimant brings to court.  The in-memory objects die with
the process, so the :class:`ClaimStore` serialises them to JSON next to the
vault and re-hydrates full ``OwnershipClaim`` instances on demand: a cold
process can call ``resolve_dispute`` with nothing but the store's path.

Claims are keyed by dataset, so rival claims over the *same* disputed table
(the paper's Attack 1/Attack 2 scenarios) naturally accumulate under one key
and are assessed together.  Writing goes through the same atomic
tmp-file-plus-``os.replace`` discipline as the vault, and — like the vault —
every mutation re-reads the document under an advisory
:class:`~repro.service.locking.FileLock`, so two concurrent protects (or a
protect racing a rival registering a bogus claim over HTTP) never lose each
other's entries.
"""

from __future__ import annotations

import json
import os

from repro.service.locking import FileLock, lock_path_for
from repro.service.vault import _atomic_write_json
from repro.telemetry.trace import span as _stage_span
from repro.watermarking.keys import WatermarkKey
from repro.watermarking.mark import Mark
from repro.watermarking.ownership import OwnershipClaim

__all__ = ["ClaimStore"]

CLAIMS_FILENAME = "claims.json"
CLAIMS_VERSION = 1


def _key_to_json(value: bytes | str) -> dict:
    """Serialise a key that may be raw bytes or an operator-supplied string."""
    if isinstance(value, bytes):
        return {"kind": "hex", "value": value.hex()}
    return {"kind": "str", "value": value}


def _key_from_json(payload: dict) -> bytes | str:
    if payload["kind"] == "hex":
        return bytes.fromhex(payload["value"])
    return payload["value"]


def claim_to_json(claim: OwnershipClaim) -> dict:
    """The JSON document for one claim (inverse of :func:`claim_from_json`)."""
    return {
        "claimant": claim.claimant,
        "registered_statistic": claim.registered_statistic,
        "mark": str(claim.mark),
        "watermark_key": {
            "k1": claim.watermark_key.k1.hex(),
            "k2": claim.watermark_key.k2.hex(),
            "eta": claim.watermark_key.eta,
        },
        "encryption_key": _key_to_json(claim.encryption_key),
        "copies": claim.copies,
        "columns": list(claim.columns) if claim.columns is not None else None,
        "code": claim.code,
    }


def claim_from_json(payload: dict) -> OwnershipClaim:
    """Re-hydrate a full :class:`OwnershipClaim` from its JSON document."""
    key = payload["watermark_key"]
    columns = payload["columns"]
    return OwnershipClaim(
        claimant=payload["claimant"],
        registered_statistic=payload["registered_statistic"],
        mark=Mark.from_string(payload["mark"]),
        watermark_key=WatermarkKey(
            k1=bytes.fromhex(key["k1"]), k2=bytes.fromhex(key["k2"]), eta=key["eta"]
        ),
        encryption_key=_key_from_json(payload["encryption_key"]),
        copies=payload["copies"],
        columns=tuple(columns) if columns is not None else None,
        # Claims written before the coding layer carry no code: the seed
        # scheme was the only one, so default to it.
        code=payload.get("code"),
    )


class ClaimStore:
    """File-backed store of ownership claims, keyed by dataset.

    One claimant holds at most one claim per dataset: re-adding (a
    re-protect, or an attacker refreshing a bogus claim) replaces the previous
    entry so disputes never double-count a claimant.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = os.fspath(path)
        self._lock_path = lock_path_for(self._path)
        self._loaded_signature: tuple[int, int, int] | None = None
        if os.path.exists(self._path):
            self._load()
        else:
            # Created lazily on the first mutation: a store that only ever
            # reads (detect, status, a vault on read-only media) must not
            # write anything.
            self._claims: dict[str, list[dict]] = {}

    @property
    def path(self) -> str:
        return self._path

    # --------------------------------------------------------------------- API
    def add_claim(self, dataset_id: str, claim: OwnershipClaim) -> None:
        """Persist *claim* for *dataset_id* (replacing the claimant's previous one).

        A locked read-modify-write: concurrent writers see each other's
        claims instead of overwriting the document wholesale.
        """
        if not dataset_id:
            raise ValueError("dataset_id must be non-empty")
        with FileLock(self._lock_path):
            if os.path.exists(self._path):
                self._load()
            entries = self._claims.get(dataset_id, [])
            # Rebind rather than mutate in place: a concurrent reader (a
            # dispute on another server thread) iterating the old list keeps
            # a consistent snapshot instead of observing the removed-but-not-
            # yet-re-added window.
            self._claims[dataset_id] = [
                entry for entry in entries if entry["claimant"] != claim.claimant
            ] + [claim_to_json(claim)]
            self._save()

    def claims(self, dataset_id: str) -> list[OwnershipClaim]:
        """Every stored claim over *dataset_id*, re-hydrated.

        Reads pick up writes from other processes first (gated on the file's
        stat signature, so an unchanged store costs one ``stat``): a dispute
        served by a long-running process must see the claim a CLI protect
        just persisted.
        """
        self.reload_if_changed()
        return [claim_from_json(entry) for entry in self._claims.get(dataset_id, [])]

    def claimants(self, dataset_id: str) -> list[str]:
        self.reload_if_changed()
        return [entry["claimant"] for entry in self._claims.get(dataset_id, [])]

    def datasets(self) -> list[str]:
        self.reload_if_changed()
        return sorted(self._claims)

    def remove_claim(self, dataset_id: str, claimant: str) -> bool:
        """Drop *claimant*'s claim over *dataset_id*; return whether one existed."""
        with FileLock(self._lock_path):
            if os.path.exists(self._path):
                self._load()
            entries = self._claims.get(dataset_id, [])
            kept = [entry for entry in entries if entry["claimant"] != claimant]
            removed = len(kept) != len(entries)
            if removed:
                if kept:
                    self._claims[dataset_id] = kept
                else:
                    del self._claims[dataset_id]
                self._save()
        return removed

    # ------------------------------------------------------------- persistence
    def reload(self) -> None:
        self._load()

    def reload_if_changed(self) -> bool:
        """Re-read only when the file on disk differs from what we loaded."""
        signature = self._stat_signature()
        if signature is None or signature == self._loaded_signature:
            return False
        try:
            self._load()
        except (OSError, ValueError):  # pragma: no cover - torn deploy
            return False
        return True

    def _stat_signature(self) -> tuple[int, int, int] | None:
        try:
            stat = os.stat(self._path)
        except OSError:
            return None
        return (stat.st_ino, stat.st_size, stat.st_mtime_ns)

    def _load(self) -> None:
        with _stage_span("claims.load"):
            signature = self._stat_signature()
            with open(self._path, encoding="utf-8") as handle:
                document = json.load(handle)
            version = document.get("version")
            if version != CLAIMS_VERSION:
                raise ValueError(f"unsupported claim store version {version!r}")
            self._claims = document["claims"]
            self._loaded_signature = signature

    def _save(self) -> None:
        with _stage_span("claims.save"):
            _atomic_write_json(self._path, {"version": CLAIMS_VERSION, "claims": self._claims})
            self._loaded_signature = self._stat_signature()
