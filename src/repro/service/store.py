"""Persistent ownership claims backing the dispute flow of Section 5.4.

A dispute is resolved from :class:`~repro.watermarking.ownership.OwnershipClaim`
objects — the registered statistic, the mark, the watermark key and the
encryption key each claimant brings to court.  The in-memory objects die with
the process, so the :class:`ClaimStore` serialises them to JSON next to the
vault and re-hydrates full ``OwnershipClaim`` instances on demand: a cold
process can call ``resolve_dispute`` with nothing but the store's path.

Claims are keyed by dataset, so rival claims over the *same* disputed table
(the paper's Attack 1/Attack 2 scenarios) naturally accumulate under one key
and are assessed together.  Writing goes through the same atomic
tmp-file-plus-``os.replace`` discipline as the vault.
"""

from __future__ import annotations

import json
import os

from repro.service.vault import _atomic_write_json
from repro.watermarking.keys import WatermarkKey
from repro.watermarking.mark import Mark
from repro.watermarking.ownership import OwnershipClaim

__all__ = ["ClaimStore"]

CLAIMS_FILENAME = "claims.json"
CLAIMS_VERSION = 1


def _key_to_json(value: bytes | str) -> dict:
    """Serialise a key that may be raw bytes or an operator-supplied string."""
    if isinstance(value, bytes):
        return {"kind": "hex", "value": value.hex()}
    return {"kind": "str", "value": value}


def _key_from_json(payload: dict) -> bytes | str:
    if payload["kind"] == "hex":
        return bytes.fromhex(payload["value"])
    return payload["value"]


def claim_to_json(claim: OwnershipClaim) -> dict:
    """The JSON document for one claim (inverse of :func:`claim_from_json`)."""
    return {
        "claimant": claim.claimant,
        "registered_statistic": claim.registered_statistic,
        "mark": str(claim.mark),
        "watermark_key": {
            "k1": claim.watermark_key.k1.hex(),
            "k2": claim.watermark_key.k2.hex(),
            "eta": claim.watermark_key.eta,
        },
        "encryption_key": _key_to_json(claim.encryption_key),
        "copies": claim.copies,
        "columns": list(claim.columns) if claim.columns is not None else None,
    }


def claim_from_json(payload: dict) -> OwnershipClaim:
    """Re-hydrate a full :class:`OwnershipClaim` from its JSON document."""
    key = payload["watermark_key"]
    columns = payload["columns"]
    return OwnershipClaim(
        claimant=payload["claimant"],
        registered_statistic=payload["registered_statistic"],
        mark=Mark.from_string(payload["mark"]),
        watermark_key=WatermarkKey(
            k1=bytes.fromhex(key["k1"]), k2=bytes.fromhex(key["k2"]), eta=key["eta"]
        ),
        encryption_key=_key_from_json(payload["encryption_key"]),
        copies=payload["copies"],
        columns=tuple(columns) if columns is not None else None,
    )


class ClaimStore:
    """File-backed store of ownership claims, keyed by dataset.

    One claimant holds at most one claim per dataset: re-adding (a
    re-protect, or an attacker refreshing a bogus claim) replaces the previous
    entry so disputes never double-count a claimant.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = os.fspath(path)
        if os.path.exists(self._path):
            self._load()
        else:
            # Created lazily on the first mutation: a store that only ever
            # reads (detect, status, a vault on read-only media) must not
            # write anything.
            self._claims: dict[str, list[dict]] = {}

    @property
    def path(self) -> str:
        return self._path

    # --------------------------------------------------------------------- API
    def add_claim(self, dataset_id: str, claim: OwnershipClaim) -> None:
        """Persist *claim* for *dataset_id* (replacing the claimant's previous one)."""
        if not dataset_id:
            raise ValueError("dataset_id must be non-empty")
        entries = self._claims.setdefault(dataset_id, [])
        entries[:] = [entry for entry in entries if entry["claimant"] != claim.claimant]
        entries.append(claim_to_json(claim))
        self._save()

    def claims(self, dataset_id: str) -> list[OwnershipClaim]:
        """Every stored claim over *dataset_id*, re-hydrated."""
        return [claim_from_json(entry) for entry in self._claims.get(dataset_id, [])]

    def claimants(self, dataset_id: str) -> list[str]:
        return [entry["claimant"] for entry in self._claims.get(dataset_id, [])]

    def datasets(self) -> list[str]:
        return sorted(self._claims)

    def remove_claim(self, dataset_id: str, claimant: str) -> bool:
        """Drop *claimant*'s claim over *dataset_id*; return whether one existed."""
        entries = self._claims.get(dataset_id, [])
        kept = [entry for entry in entries if entry["claimant"] != claimant]
        removed = len(kept) != len(entries)
        if removed:
            if kept:
                self._claims[dataset_id] = kept
            else:
                del self._claims[dataset_id]
            self._save()
        return removed

    # ------------------------------------------------------------- persistence
    def reload(self) -> None:
        self._load()

    def _load(self) -> None:
        with open(self._path, encoding="utf-8") as handle:
            document = json.load(handle)
        version = document.get("version")
        if version != CLAIMS_VERSION:
            raise ValueError(f"unsupported claim store version {version!r}")
        self._claims = document["claims"]

    def _save(self) -> None:
        _atomic_write_json(self._path, {"version": CLAIMS_VERSION, "claims": self._claims})
