"""Persistent multi-tenant protection service.

The library's :class:`~repro.framework.pipeline.ProtectionFramework` is a
single in-process object: its court-critical state (registered statistic,
mark, secrets) evaporates with the process.  This package turns it into an
operable service for the paper's actual threat model — a data *owner* who
protects many outsourced datasets and must later detect and litigate from a
cold process:

* :mod:`repro.service.vault` — durable per-tenant/per-dataset secrets,
  registered statistics and marks over a pluggable backend;
* :mod:`repro.service.store` — persistent ownership claims backing the
  dispute flow of Section 5.4;
* :mod:`repro.service.backends` — the storage backends behind both facades:
  atomic JSON documents (``file``, the zero-dep default) or a WAL-mode
  SQLite ``registry.db`` with per-row mutations (``sqlite``);
* :mod:`repro.service.audit` — the append-only hash-chained audit log of
  register/protect/detect/dispute events (tamper-evident provenance);
* :mod:`repro.service.streaming` — chunked CSV ingest/emit so million-row
  files never materialise as a full table;
* :mod:`repro.service.executor` — shard-parallel embed/detect, bit-identical
  to the serial batched path;
* :mod:`repro.service.runners` — pluggable vote-collection backends: the
  GIL-bound :class:`ThreadRunner`, the engine-reconstructing
  :class:`ProcessRunner`, and the multi-machine :class:`RemoteRunner`
  coordinating a fleet of ``repro serve`` workers;
* :mod:`repro.service.wire` — the JSON wire format distributed detection
  speaks (specs, frontier metadata, votes — lossless by test);
* :mod:`repro.service.api` — the :class:`ProtectionService` facade the CLI
  drives;
* :mod:`repro.service.http` — the stdlib WSGI frontend (and client) exposing
  the facade over the network with bearer-token tenant auth;
* :mod:`repro.service.reports` — the ``--json`` report shapes shared by the
  CLI and the HTTP bodies;
* :mod:`repro.service.locking` — advisory file locks arbitrating concurrent
  vault/claim writers.
"""

from repro.service.api import DetectOutcome, ProtectOutcome, ProtectionService, suspect_view
from repro.service.audit import AuditChainError, FileAuditLog, SQLiteAuditLog
from repro.service.backends import (
    BACKEND_ENV,
    BACKEND_NAMES,
    FileRegistryBackend,
    SQLiteRegistryBackend,
    VaultError,
)
from repro.service.executor import ShardExecutor, shard_spans
from repro.service.runners import (
    FleetError,
    ProcessRunner,
    RemoteRunner,
    ShardRunner,
    ThreadRunner,
    resolve_runner,
)
from repro.service.store import ClaimStore
from repro.service.vault import DatasetRecord, KeyVault, TenantRecord, migrate_vault

__all__ = [
    "AuditChainError",
    "FileAuditLog",
    "SQLiteAuditLog",
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "FileRegistryBackend",
    "SQLiteRegistryBackend",
    "VaultError",
    "migrate_vault",
    "ProtectionService",
    "ProtectOutcome",
    "DetectOutcome",
    "suspect_view",
    "ShardExecutor",
    "shard_spans",
    "ShardRunner",
    "ThreadRunner",
    "ProcessRunner",
    "RemoteRunner",
    "FleetError",
    "resolve_runner",
    "ClaimStore",
    "KeyVault",
    "TenantRecord",
    "DatasetRecord",
]
