"""Atomic, file-backed vault for per-tenant secrets and ownership records.

The vault is what makes the protection framework *litigable from a cold
process*: everything the owner must retain to later detect a mark or prevail
in court — the encryption and watermarking secrets, the embedding parameters
and, per protected dataset, the registered statistic ``v`` and the mark
``F(v)`` — lives in one JSON document on disk, and nothing else is needed to
rebuild a working :class:`~repro.framework.pipeline.ProtectionFramework`.

Durability contract
-------------------

Every mutation rewrites the whole document through a temporary file in the
same directory followed by ``os.replace`` (atomic on POSIX and NT), then
fsyncs the file.  A reader therefore always sees either the previous or the
new state, never a torn write.  The vault file is created with mode ``0600``;
secrets are stored in the clear — wrapping them in a KMS/HSM is a deployment
concern outside this reproduction's scope.  Concurrent *writers* are not
arbitrated (the service is the single writer); concurrent readers are safe.
"""

from __future__ import annotations

import json
import os
import secrets as _secrets
from dataclasses import asdict, dataclass
from typing import Iterator

__all__ = ["TenantRecord", "DatasetRecord", "KeyVault", "VaultError"]

VAULT_FILENAME = "vault.json"
VAULT_VERSION = 1
#: 128-bit secrets, hex-encoded, when the operator does not supply their own.
GENERATED_SECRET_BYTES = 16


class VaultError(RuntimeError):
    """Raised for vault lookups/initialisation that cannot be satisfied."""


@dataclass(frozen=True)
class TenantRecord:
    """One tenant's secrets and protection parameters.

    The parameters mirror :class:`~repro.framework.pipeline.ProtectionFramework`'s
    constructor so a framework can be rebuilt from the record alone; they are
    fixed at registration time because detection must re-derive exactly the
    embedding-time keys.
    """

    tenant_id: str
    encryption_key: str
    watermark_secret: str
    eta: int = 75
    k: int = 20
    epsilon: int = 5
    mark_length: int = 20
    copies: int = 4
    metrics_depth: int = 1
    watermark_columns: tuple[str, ...] | None = None
    ownership_tau: float = 1e7
    max_mark_bit_errors: int = 2

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ValueError("tenant_id must be non-empty")
        if not self.encryption_key or not self.watermark_secret:
            raise ValueError("tenant secrets must be non-empty")


@dataclass(frozen=True)
class DatasetRecord:
    """What one ``protect`` run registers for a dataset.

    ``registered_statistic`` and ``mark_bits`` are the court-critical pair of
    Section 5.4 (``v`` and ``F(v)``); the rest is operational bookkeeping the
    ``status`` endpoint reports.
    """

    dataset_id: str
    registered_statistic: float
    mark_bits: str
    rows: int = 0
    cells_changed: int = 0
    information_loss: float = 0.0
    source: str = ""

    def __post_init__(self) -> None:
        if not self.dataset_id:
            raise ValueError("dataset_id must be non-empty")
        if not self.mark_bits or set(self.mark_bits) - {"0", "1"}:
            raise ValueError("mark_bits must be a non-empty 0/1 string")


def _tenant_to_json(record: TenantRecord) -> dict:
    payload = asdict(record)
    if record.watermark_columns is not None:
        payload["watermark_columns"] = list(record.watermark_columns)
    return payload


def _tenant_from_json(payload: dict) -> TenantRecord:
    columns = payload.get("watermark_columns")
    return TenantRecord(
        **{
            **payload,
            "watermark_columns": tuple(columns) if columns is not None else None,
        }
    )


class KeyVault:
    """The persistent key/claim material store, one JSON document per vault.

    A vault is a *directory* (so sibling artifacts such as the claim store can
    live next to the key material) holding ``vault.json``.  Use
    :meth:`KeyVault.init` to create one and the constructor to open an
    existing one.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self._root = os.fspath(root)
        self._file = os.path.join(self._root, VAULT_FILENAME)
        if not os.path.exists(self._file):
            raise VaultError(
                f"no vault at {self._root!r} (expected {VAULT_FILENAME}; run 'repro vault init' first)"
            )
        self._load()

    # ------------------------------------------------------------ construction
    @classmethod
    def init(cls, root: str | os.PathLike) -> "KeyVault":
        """Create an empty vault at *root* (the directory is created too)."""
        root = os.fspath(root)
        file = os.path.join(root, VAULT_FILENAME)
        if os.path.exists(file):
            raise VaultError(f"vault already initialised at {root!r}")
        os.makedirs(root, exist_ok=True)
        _atomic_write_json(file, {"version": VAULT_VERSION, "tenants": {}})
        return cls(root)

    @classmethod
    def open_or_init(cls, root: str | os.PathLike) -> "KeyVault":
        """Open *root*, initialising it first when empty (service convenience)."""
        file = os.path.join(os.fspath(root), VAULT_FILENAME)
        return cls(root) if os.path.exists(file) else cls.init(root)

    # -------------------------------------------------------------- properties
    @property
    def root(self) -> str:
        return self._root

    @property
    def path(self) -> str:
        """Path of the backing JSON document."""
        return self._file

    # ----------------------------------------------------------------- tenants
    def register_tenant(
        self,
        tenant_id: str,
        *,
        encryption_key: str | None = None,
        watermark_secret: str | None = None,
        **params,
    ) -> TenantRecord:
        """Register *tenant_id*, generating any secret not supplied.

        Generated secrets come from :mod:`secrets` (CSPRNG).  Registration is
        write-once: the embedding parameters must never drift between protect
        and detect, so re-registering an existing tenant is an error.
        """
        if tenant_id in self._tenants:
            raise VaultError(f"tenant {tenant_id!r} is already registered")
        record = TenantRecord(
            tenant_id=tenant_id,
            encryption_key=encryption_key or _secrets.token_hex(GENERATED_SECRET_BYTES),
            watermark_secret=watermark_secret or _secrets.token_hex(GENERATED_SECRET_BYTES),
            **params,
        )
        self._tenants[tenant_id] = {"record": _tenant_to_json(record), "datasets": {}}
        self._save()
        return record

    def tenant(self, tenant_id: str) -> TenantRecord:
        try:
            payload = self._tenants[tenant_id]
        except KeyError:
            raise VaultError(f"unknown tenant {tenant_id!r} in vault {self._root!r}") from None
        return _tenant_from_json(payload["record"])

    def tenants(self) -> list[str]:
        return sorted(self._tenants)

    def __contains__(self, tenant_id: object) -> bool:
        return tenant_id in self._tenants

    def __iter__(self) -> Iterator[str]:
        return iter(self.tenants())

    # ---------------------------------------------------------------- datasets
    def record_dataset(self, tenant_id: str, record: DatasetRecord) -> None:
        """Register (or refresh, after a re-protect) a dataset's ownership record."""
        if tenant_id not in self._tenants:
            raise VaultError(f"unknown tenant {tenant_id!r} in vault {self._root!r}")
        self._tenants[tenant_id]["datasets"][record.dataset_id] = asdict(record)
        self._save()

    def dataset(self, tenant_id: str, dataset_id: str) -> DatasetRecord:
        self.tenant(tenant_id)  # raises for unknown tenants
        try:
            payload = self._tenants[tenant_id]["datasets"][dataset_id]
        except KeyError:
            raise VaultError(
                f"tenant {tenant_id!r} has no dataset {dataset_id!r} in vault {self._root!r}"
            ) from None
        return DatasetRecord(**payload)

    def datasets(self, tenant_id: str) -> list[str]:
        self.tenant(tenant_id)
        return sorted(self._tenants[tenant_id]["datasets"])

    # ------------------------------------------------------------- persistence
    def reload(self) -> None:
        """Re-read the backing file (another process may have written it)."""
        self._load()

    def _load(self) -> None:
        with open(self._file, encoding="utf-8") as handle:
            document = json.load(handle)
        version = document.get("version")
        if version != VAULT_VERSION:
            raise VaultError(f"unsupported vault version {version!r} (expected {VAULT_VERSION})")
        self._tenants: dict[str, dict] = document["tenants"]

    def _save(self) -> None:
        _atomic_write_json(self._file, {"version": VAULT_VERSION, "tenants": self._tenants})


def _atomic_write_json(path: str, document: dict) -> None:
    """Write *document* to *path* atomically (tmp file + ``os.replace``)."""
    directory = os.path.dirname(path) or "."
    tmp_path = path + ".tmp"
    fd = os.open(tmp_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    # Make the rename itself durable where the platform allows it.
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. NT has no directory fds
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
