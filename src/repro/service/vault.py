"""Durable vault for per-tenant secrets and ownership records.

The vault is what makes the protection framework *litigable from a cold
process*: everything the owner must retain to later detect a mark or prevail
in court — the encryption and watermarking secrets, the embedding parameters
and, per protected dataset, the registered statistic ``v`` and the mark
``F(v)`` — persists under one vault directory, and nothing else is needed to
rebuild a working :class:`~repro.framework.pipeline.ProtectionFramework`.

Storage is pluggable (see :mod:`repro.service.backends`): the default
``file`` backend keeps the original atomic ``vault.json`` document, the
``sqlite`` backend keeps per-row state in a WAL-mode ``registry.db`` that
stays fast at 10k+ tenants.  :class:`KeyVault` is a facade over either — the
API, the error messages, and (crucially) every protect/detect/dispute result
are identical across backends.

Durability contract
-------------------

File backend: every mutation rewrites the whole document through a temporary
file followed by ``os.replace`` (atomic on POSIX and NT), then fsyncs.  A
reader always sees either the previous or the new state, never a torn write.
SQLite backend: every mutation is one WAL transaction under ``BEGIN
IMMEDIATE``.  Both artifacts are created with mode ``0600``; secrets are
stored in the clear — wrapping them in a KMS/HSM is a deployment concern
outside this reproduction's scope.

Concurrent writers *are* arbitrated on both backends (advisory
:class:`~repro.service.locking.FileLock` read-modify-writes, respectively
database write transactions), so two protects racing against one vault (two
CLI invocations, or two HTTP requests on different worker threads or
processes) serialise instead of losing the earlier update.  Lookup misses
retry once after the backend's change signal reports fresh state
(``refresh()``), which is how long-lived pre-fork workers see mutations made
by other processes without a restart.

Beyond the secrets, the vault also stores one **bearer-token digest** per
tenant for the HTTP frontend: :meth:`KeyVault.issue_token` generates a token
and persists its SHA-256 (never the plaintext), :meth:`KeyVault.verify_token`
checks a presented token in constant time.  Losing a token is recoverable —
re-issuing replaces the digest — whereas the embedding secrets remain
write-once.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import os
import secrets as _secrets
from dataclasses import asdict, dataclass
from typing import Iterator

from repro.service.backends import (
    VAULT_FILENAME,
    VAULT_VERSION,
    VaultError,
    _atomic_write_json,  # noqa: F401  (re-exported; historic import site)
    make_backend,
    resolve_backend,
)

__all__ = [
    "TenantRecord",
    "DatasetRecord",
    "KeyVault",
    "VaultError",
    "migrate_vault",
]

#: 128-bit secrets, hex-encoded, when the operator does not supply their own.
GENERATED_SECRET_BYTES = 16


@dataclass(frozen=True)
class TenantRecord:
    """One tenant's secrets and protection parameters.

    The parameters mirror :class:`~repro.framework.pipeline.ProtectionFramework`'s
    constructor so a framework can be rebuilt from the record alone; they are
    fixed at registration time because detection must re-derive exactly the
    embedding-time keys.
    """

    tenant_id: str
    encryption_key: str
    watermark_secret: str
    eta: int = 75
    k: int = 20
    epsilon: int = 5
    mark_length: int = 20
    copies: int = 4
    metrics_depth: int = 1
    watermark_columns: tuple[str, ...] | None = None
    ownership_tau: float = 1e7
    max_mark_bit_errors: int = 2
    code: str = "repetition"

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ValueError("tenant_id must be non-empty")
        if not self.encryption_key or not self.watermark_secret:
            raise ValueError("tenant secrets must be non-empty")
        # Fail at registration, not at first detect: the code string is part
        # of the write-once embedding parameters.
        from repro.watermarking.ecc import resolve_code

        resolve_code(self.code)


@dataclass(frozen=True)
class DatasetRecord:
    """What one ``protect`` run registers for a dataset.

    ``registered_statistic`` and ``mark_bits`` are the court-critical pair of
    Section 5.4 (``v`` and ``F(v)``); the rest is operational bookkeeping the
    ``status`` endpoint reports.
    """

    dataset_id: str
    registered_statistic: float
    mark_bits: str
    rows: int = 0
    cells_changed: int = 0
    information_loss: float = 0.0
    source: str = ""

    def __post_init__(self) -> None:
        if not self.dataset_id:
            raise ValueError("dataset_id must be non-empty")
        if not self.mark_bits or set(self.mark_bits) - {"0", "1"}:
            raise ValueError("mark_bits must be a non-empty 0/1 string")


def _tenant_to_json(record: TenantRecord) -> dict:
    payload = asdict(record)
    if record.watermark_columns is not None:
        payload["watermark_columns"] = list(record.watermark_columns)
    return payload


def _tenant_from_json(payload: dict) -> TenantRecord:
    columns = payload.get("watermark_columns")
    return TenantRecord(
        **{
            **payload,
            "watermark_columns": tuple(columns) if columns is not None else None,
        }
    )


class KeyVault:
    """The persistent key/claim material store, one backend per vault.

    A vault is a *directory* (so sibling artifacts such as the claim store
    and the audit chain live next to the key material) holding either
    ``vault.json`` (``file`` backend, the default) or ``registry.db``
    (``sqlite``).  Use :meth:`KeyVault.init` to create one and the
    constructor to open an existing one; both accept ``backend=`` or a path
    scheme (``sqlite:/srv/vault``), and opening auto-detects from what is on
    disk.
    """

    def __init__(self, root: str | os.PathLike, *, backend: str | None = None) -> None:
        if backend is not None and not isinstance(backend, str):
            # An already-constructed backend object (init's hand-off).
            self._backend = backend
            self._root = backend.root
        else:
            name, bare = resolve_backend(root, backend)
            self._root = bare
            self._backend = make_backend(name, bare)
        if not self._backend.exists:
            raise VaultError(
                f"no vault at {self._root!r} "
                f"(expected {self._backend.artifact}; run 'repro vault init' first)"
            )
        # Load eagerly so an unusable vault fails at open, not first lookup.
        self._backend.reload()

    # ------------------------------------------------------------ construction
    @classmethod
    def init(cls, root: str | os.PathLike, *, backend: str | None = None) -> "KeyVault":
        """Create an empty vault at *root* (the directory is created too).

        The backend of a fresh vault is the path scheme / ``backend=`` if
        given, else ``$REPRO_VAULT_BACKEND``, else ``file``.
        """
        name, bare = resolve_backend(root, backend, for_init=True)
        store = make_backend(name, bare)
        store.create()
        return cls(bare, backend=store)

    @classmethod
    def open_or_init(cls, root: str | os.PathLike, *, backend: str | None = None) -> "KeyVault":
        """Open *root*, initialising it first when empty (service convenience)."""
        from repro.service.backends import detect_backend, split_backend_scheme

        _, bare = split_backend_scheme(root)
        if detect_backend(bare) is not None:
            return cls(root, backend=backend)
        return cls.init(root, backend=backend)

    # -------------------------------------------------------------- properties
    @property
    def root(self) -> str:
        return self._root

    @property
    def path(self) -> str:
        """Path of the backing artifact (``vault.json`` or ``registry.db``)."""
        return self._backend.path

    @property
    def backend(self) -> str:
        """The storage backend name (``file`` or ``sqlite``)."""
        return self._backend.name

    @property
    def registry(self):
        """The underlying backend object (shared with sibling facades)."""
        return self._backend

    def claim_store(self):
        """A :class:`~repro.service.store.ClaimStore` over this vault's backend."""
        from repro.service.store import ClaimStore

        return ClaimStore(backend=self._backend)

    def audit_log(self):
        """This vault's append-only hash-chained audit log."""
        return self._backend.audit_log()

    def change_signal(self) -> tuple:
        """The backend-provided freshness signal (stat triple / data_version)."""
        return self._backend.change_signal()

    # ----------------------------------------------------------------- tenants
    def register_tenant(
        self,
        tenant_id: str,
        *,
        encryption_key: str | None = None,
        watermark_secret: str | None = None,
        **params,
    ) -> TenantRecord:
        """Register *tenant_id*, generating any secret not supplied.

        Generated secrets come from :mod:`secrets` (CSPRNG).  Registration is
        write-once: the embedding parameters must never drift between protect
        and detect, so re-registering an existing tenant is an error (also
        when a concurrent writer registered it first — the mutation is
        serialised by the backend).
        """
        record = TenantRecord(
            tenant_id=tenant_id,
            encryption_key=encryption_key or _secrets.token_hex(GENERATED_SECRET_BYTES),
            watermark_secret=watermark_secret or _secrets.token_hex(GENERATED_SECRET_BYTES),
            **params,
        )
        if not self._backend.put_tenant(tenant_id, _tenant_to_json(record)):
            raise VaultError(f"tenant {tenant_id!r} is already registered")
        return record

    def tenant(self, tenant_id: str) -> TenantRecord:
        payload = self._backend.get_tenant(tenant_id)
        if payload is None and self._backend.refresh():
            payload = self._backend.get_tenant(tenant_id)
        if payload is None:
            raise VaultError(f"unknown tenant {tenant_id!r} in vault {self._root!r}")
        return _tenant_from_json(payload)

    def tenants(self) -> list[str]:
        return self._backend.list_tenants()

    def __contains__(self, tenant_id: object) -> bool:
        return self._backend.get_tenant(tenant_id) is not None

    def __iter__(self) -> Iterator[str]:
        return iter(self.tenants())

    # ------------------------------------------------------------ bearer tokens
    def issue_token(self, tenant_id: str) -> str:
        """Generate a bearer token for *tenant_id*, persisting only its digest.

        The plaintext is returned exactly once (hand it to the tenant); the
        vault keeps ``sha256(token)``.  Re-issuing replaces the previous
        digest, which is the recovery path for a lost token.
        """
        token = _secrets.token_urlsafe(GENERATED_SECRET_BYTES * 2)
        if not self._backend.set_token(tenant_id, _token_digest(token)):
            raise VaultError(f"unknown tenant {tenant_id!r} in vault {self._root!r}")
        return token

    def verify_token(self, tenant_id: str, token: str) -> bool:
        """Whether *token* is the current bearer token of *tenant_id*.

        Constant-time digest comparison; ``False`` for unknown tenants and
        tenants that never had a token issued (never an exception — this is
        the authentication hot path).  A miss retries once after the
        backend's change signal, so tokens issued or rotated by *another
        process* (``repro vault token`` against a vault a server is already
        serving) take effect without a restart.
        """
        if not token:
            return False
        if self._token_matches(tenant_id, token):
            return True
        return self._backend.refresh() and self._token_matches(tenant_id, token)

    def _token_matches(self, tenant_id: str, token: str) -> bool:
        stored = self._backend.get_token(tenant_id)
        if not stored:
            return False
        return _hmac.compare_digest(stored, _token_digest(token))

    def has_token(self, tenant_id: str) -> bool:
        """Whether a bearer token has ever been issued for *tenant_id*."""
        return bool(self._backend.get_token(tenant_id))

    # ---------------------------------------------------------------- datasets
    def record_dataset(self, tenant_id: str, record: DatasetRecord) -> None:
        """Register (or refresh, after a re-protect) a dataset's ownership record.

        Serialised by the backend, so a concurrent protect of a *different*
        dataset (or by a different tenant) is never overwritten by this save.
        """
        if not self._backend.put_dataset(tenant_id, record.dataset_id, asdict(record)):
            raise VaultError(f"unknown tenant {tenant_id!r} in vault {self._root!r}")

    def dataset(self, tenant_id: str, dataset_id: str) -> DatasetRecord:
        self.tenant(tenant_id)  # raises for unknown tenants
        payload = self._backend.get_dataset(tenant_id, dataset_id)
        if payload is None and self._backend.refresh():
            # A protect in another process (CLI against a vault a server is
            # already serving) may have registered the dataset since we
            # loaded; one gated re-read makes it visible without a restart.
            payload = self._backend.get_dataset(tenant_id, dataset_id)
        if payload is None:
            raise VaultError(
                f"tenant {tenant_id!r} has no dataset {dataset_id!r} in vault {self._root!r}"
            )
        return DatasetRecord(**payload)

    def datasets(self, tenant_id: str) -> list[str]:
        self.tenant(tenant_id)
        return self._backend.list_datasets(tenant_id)

    # ------------------------------------------------------------- persistence
    def reload(self) -> None:
        """Re-read the backing store (another process may have written it)."""
        self._backend.reload()

    def reload_if_changed(self) -> bool:
        """Refresh only when the backend's change signal moved.

        File backend: one ``stat`` against the document's inode/size/mtime.
        SQLite backend: one ``PRAGMA data_version`` (reads are live there, so
        this only reports whether another connection committed).  Returns
        whether anything changed.
        """
        return self._backend.refresh()

    # ----------------------------------------------------------- bulk (ops/CLI)
    def export_state(self) -> dict:
        """The whole registry (tenants + claims) as one JSON-able document."""
        return self._backend.export_state()

    def import_state(self, state: dict) -> None:
        """Replace this vault's contents with *state* (migration/seeding path)."""
        self._backend.import_state(state)


def migrate_vault(source: "KeyVault", destination: "KeyVault") -> dict:
    """Copy *source*'s full registry and audit chain into *destination*.

    The audit chain is copied record by record through the destination's
    linkage check, so a tampered source chain aborts the migration at the
    exact broken index instead of laundering the damage into a fresh store.
    A final ``migrate`` event seals the copy.  Returns summary counts.
    """
    state = source.export_state()
    destination.import_state(state)
    source_log = source.audit_log()
    destination_log = destination.audit_log()
    copied = 0
    for record in source_log.entries():
        destination_log.append_raw(dict(record))
        copied += 1
    destination_log.append(
        "migrate",
        None,
        payload={
            "source": source.root,
            "from_backend": source.backend,
            "to_backend": destination.backend,
            "tenants": len(state.get("tenants", {})),
            "copied_audit_records": copied,
        },
    )
    return {
        "tenants": len(state.get("tenants", {})),
        "claims": sum(len(entries) for entries in state.get("claims", {}).values()),
        "audit_records": copied + 1,
        "backend": destination.backend,
    }


def _token_digest(token: str) -> str:
    return hashlib.sha256(token.encode("utf-8")).hexdigest()
