"""Atomic, file-backed vault for per-tenant secrets and ownership records.

The vault is what makes the protection framework *litigable from a cold
process*: everything the owner must retain to later detect a mark or prevail
in court — the encryption and watermarking secrets, the embedding parameters
and, per protected dataset, the registered statistic ``v`` and the mark
``F(v)`` — lives in one JSON document on disk, and nothing else is needed to
rebuild a working :class:`~repro.framework.pipeline.ProtectionFramework`.

Durability contract
-------------------

Every mutation rewrites the whole document through a temporary file in the
same directory followed by ``os.replace`` (atomic on POSIX and NT), then
fsyncs the file.  A reader therefore always sees either the previous or the
new state, never a torn write.  The vault file is created with mode ``0600``;
secrets are stored in the clear — wrapping them in a KMS/HSM is a deployment
concern outside this reproduction's scope.

Concurrent writers *are* arbitrated: every mutation runs under an advisory
:class:`~repro.service.locking.FileLock` and re-reads the document before
applying itself, so two protects racing against one vault (two CLI
invocations, or two HTTP requests on different worker threads) serialise
instead of losing the earlier update.  Concurrent readers remain safe
without the lock.

Beyond the secrets, the vault also stores one **bearer-token digest** per
tenant for the HTTP frontend: :meth:`KeyVault.issue_token` generates a token
and persists its SHA-256 (never the plaintext), :meth:`KeyVault.verify_token`
checks a presented token in constant time.  Losing a token is recoverable —
re-issuing replaces the digest — whereas the embedding secrets remain
write-once.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import json
import os
import secrets as _secrets
from dataclasses import asdict, dataclass
from typing import Iterator

from repro.service.locking import FileLock, lock_path_for
from repro.telemetry.trace import span as _stage_span

__all__ = ["TenantRecord", "DatasetRecord", "KeyVault", "VaultError"]

VAULT_FILENAME = "vault.json"
VAULT_VERSION = 1
#: 128-bit secrets, hex-encoded, when the operator does not supply their own.
GENERATED_SECRET_BYTES = 16


class VaultError(RuntimeError):
    """Raised for vault lookups/initialisation that cannot be satisfied."""


@dataclass(frozen=True)
class TenantRecord:
    """One tenant's secrets and protection parameters.

    The parameters mirror :class:`~repro.framework.pipeline.ProtectionFramework`'s
    constructor so a framework can be rebuilt from the record alone; they are
    fixed at registration time because detection must re-derive exactly the
    embedding-time keys.
    """

    tenant_id: str
    encryption_key: str
    watermark_secret: str
    eta: int = 75
    k: int = 20
    epsilon: int = 5
    mark_length: int = 20
    copies: int = 4
    metrics_depth: int = 1
    watermark_columns: tuple[str, ...] | None = None
    ownership_tau: float = 1e7
    max_mark_bit_errors: int = 2
    code: str = "repetition"

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ValueError("tenant_id must be non-empty")
        if not self.encryption_key or not self.watermark_secret:
            raise ValueError("tenant secrets must be non-empty")
        # Fail at registration, not at first detect: the code string is part
        # of the write-once embedding parameters.
        from repro.watermarking.ecc import resolve_code

        resolve_code(self.code)


@dataclass(frozen=True)
class DatasetRecord:
    """What one ``protect`` run registers for a dataset.

    ``registered_statistic`` and ``mark_bits`` are the court-critical pair of
    Section 5.4 (``v`` and ``F(v)``); the rest is operational bookkeeping the
    ``status`` endpoint reports.
    """

    dataset_id: str
    registered_statistic: float
    mark_bits: str
    rows: int = 0
    cells_changed: int = 0
    information_loss: float = 0.0
    source: str = ""

    def __post_init__(self) -> None:
        if not self.dataset_id:
            raise ValueError("dataset_id must be non-empty")
        if not self.mark_bits or set(self.mark_bits) - {"0", "1"}:
            raise ValueError("mark_bits must be a non-empty 0/1 string")


def _tenant_to_json(record: TenantRecord) -> dict:
    payload = asdict(record)
    if record.watermark_columns is not None:
        payload["watermark_columns"] = list(record.watermark_columns)
    return payload


def _tenant_from_json(payload: dict) -> TenantRecord:
    columns = payload.get("watermark_columns")
    return TenantRecord(
        **{
            **payload,
            "watermark_columns": tuple(columns) if columns is not None else None,
        }
    )


class KeyVault:
    """The persistent key/claim material store, one JSON document per vault.

    A vault is a *directory* (so sibling artifacts such as the claim store can
    live next to the key material) holding ``vault.json``.  Use
    :meth:`KeyVault.init` to create one and the constructor to open an
    existing one.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self._root = os.fspath(root)
        self._file = os.path.join(self._root, VAULT_FILENAME)
        self._lock_path = lock_path_for(self._file)
        if not os.path.exists(self._file):
            raise VaultError(
                f"no vault at {self._root!r} (expected {VAULT_FILENAME}; run 'repro vault init' first)"
            )
        self._load()

    # ------------------------------------------------------------ construction
    @classmethod
    def init(cls, root: str | os.PathLike) -> "KeyVault":
        """Create an empty vault at *root* (the directory is created too)."""
        root = os.fspath(root)
        file = os.path.join(root, VAULT_FILENAME)
        os.makedirs(root, exist_ok=True)
        with FileLock(lock_path_for(file)):
            if os.path.exists(file):
                raise VaultError(f"vault already initialised at {root!r}")
            _atomic_write_json(file, {"version": VAULT_VERSION, "tenants": {}})
        return cls(root)

    @classmethod
    def open_or_init(cls, root: str | os.PathLike) -> "KeyVault":
        """Open *root*, initialising it first when empty (service convenience)."""
        file = os.path.join(os.fspath(root), VAULT_FILENAME)
        return cls(root) if os.path.exists(file) else cls.init(root)

    # -------------------------------------------------------------- properties
    @property
    def root(self) -> str:
        return self._root

    @property
    def path(self) -> str:
        """Path of the backing JSON document."""
        return self._file

    # ----------------------------------------------------------------- tenants
    def register_tenant(
        self,
        tenant_id: str,
        *,
        encryption_key: str | None = None,
        watermark_secret: str | None = None,
        **params,
    ) -> TenantRecord:
        """Register *tenant_id*, generating any secret not supplied.

        Generated secrets come from :mod:`secrets` (CSPRNG).  Registration is
        write-once: the embedding parameters must never drift between protect
        and detect, so re-registering an existing tenant is an error (also
        when a concurrent writer registered it between our load and now —
        the mutation re-reads the document under the lock).
        """
        record = TenantRecord(
            tenant_id=tenant_id,
            encryption_key=encryption_key or _secrets.token_hex(GENERATED_SECRET_BYTES),
            watermark_secret=watermark_secret or _secrets.token_hex(GENERATED_SECRET_BYTES),
            **params,
        )
        with FileLock(self._lock_path):
            self._load()
            if tenant_id in self._tenants:
                raise VaultError(f"tenant {tenant_id!r} is already registered")
            self._tenants[tenant_id] = {"record": _tenant_to_json(record), "datasets": {}}
            self._save()
        return record

    def tenant(self, tenant_id: str) -> TenantRecord:
        payload = self._tenants.get(tenant_id)
        if payload is None and self.reload_if_changed():
            payload = self._tenants.get(tenant_id)
        if payload is None:
            raise VaultError(f"unknown tenant {tenant_id!r} in vault {self._root!r}")
        return _tenant_from_json(payload["record"])

    def tenants(self) -> list[str]:
        return sorted(self._tenants)

    def __contains__(self, tenant_id: object) -> bool:
        return tenant_id in self._tenants

    def __iter__(self) -> Iterator[str]:
        return iter(self.tenants())

    # ------------------------------------------------------------ bearer tokens
    def issue_token(self, tenant_id: str) -> str:
        """Generate a bearer token for *tenant_id*, persisting only its digest.

        The plaintext is returned exactly once (hand it to the tenant); the
        vault keeps ``sha256(token)``.  Re-issuing replaces the previous
        digest, which is the recovery path for a lost token.
        """
        token = _secrets.token_urlsafe(GENERATED_SECRET_BYTES * 2)
        digest = _token_digest(token)
        with FileLock(self._lock_path):
            self._load()
            if tenant_id not in self._tenants:
                raise VaultError(f"unknown tenant {tenant_id!r} in vault {self._root!r}")
            self._tenants[tenant_id]["token_sha256"] = digest
            self._save()
        return token

    def verify_token(self, tenant_id: str, token: str) -> bool:
        """Whether *token* is the current bearer token of *tenant_id*.

        Constant-time digest comparison; ``False`` for unknown tenants and
        tenants that never had a token issued (never an exception — this is
        the authentication hot path).  A miss against the in-memory state
        re-reads the document once before failing, so tokens issued or
        rotated by *another process* (``repro vault token`` against a vault a
        server is already serving) take effect without a restart.
        """
        if not token:
            return False
        if self._token_matches(tenant_id, token):
            return True
        return self.reload_if_changed() and self._token_matches(tenant_id, token)

    def _token_matches(self, tenant_id: str, token: str) -> bool:
        payload = self._tenants.get(tenant_id)
        stored = payload.get("token_sha256") if payload is not None else None
        if not stored:
            return False
        return _hmac.compare_digest(stored, _token_digest(token))

    def has_token(self, tenant_id: str) -> bool:
        """Whether a bearer token has ever been issued for *tenant_id*."""
        payload = self._tenants.get(tenant_id)
        return bool(payload and payload.get("token_sha256"))

    # ---------------------------------------------------------------- datasets
    def record_dataset(self, tenant_id: str, record: DatasetRecord) -> None:
        """Register (or refresh, after a re-protect) a dataset's ownership record.

        Runs as a locked read-modify-write so a concurrent protect of a
        *different* dataset (or by a different tenant) is never overwritten
        by this save.
        """
        with FileLock(self._lock_path):
            self._load()
            if tenant_id not in self._tenants:
                raise VaultError(f"unknown tenant {tenant_id!r} in vault {self._root!r}")
            self._tenants[tenant_id]["datasets"][record.dataset_id] = asdict(record)
            self._save()

    def dataset(self, tenant_id: str, dataset_id: str) -> DatasetRecord:
        self.tenant(tenant_id)  # raises for unknown tenants
        payload = self._tenants[tenant_id]["datasets"].get(dataset_id)
        if payload is None and self.reload_if_changed():
            # A protect in another process (CLI against a vault a server is
            # already serving) may have registered the dataset since we
            # loaded; one gated re-read makes it visible without a restart.
            payload = self._tenants.get(tenant_id, {}).get("datasets", {}).get(dataset_id)
        if payload is None:
            raise VaultError(
                f"tenant {tenant_id!r} has no dataset {dataset_id!r} in vault {self._root!r}"
            )
        return DatasetRecord(**payload)

    def datasets(self, tenant_id: str) -> list[str]:
        self.tenant(tenant_id)
        return sorted(self._tenants[tenant_id]["datasets"])

    # ------------------------------------------------------------- persistence
    def reload(self) -> None:
        """Re-read the backing file (another process may have written it)."""
        self._load()

    def reload_if_changed(self) -> bool:
        """Re-read only when the file on disk differs from what we loaded.

        The lookup paths fall back to this on a miss, so writes from other
        processes become visible without a per-request parse: an unchanged
        file (by inode/size/mtime — ``os.replace`` always changes the inode)
        costs one ``stat``, not a JSON load.  Returns whether a reload
        happened; a vanished or corrupt file reads as "unchanged" because the
        in-memory state is the best remaining truth.
        """
        signature = self._stat_signature()
        if signature is None or signature == self._loaded_signature:
            return False
        try:
            self._load()
        except (OSError, ValueError, VaultError):  # pragma: no cover - torn deploy
            return False
        return True

    def _stat_signature(self) -> tuple[int, int, int] | None:
        try:
            stat = os.stat(self._file)
        except OSError:
            return None
        return (stat.st_ino, stat.st_size, stat.st_mtime_ns)

    def _load(self) -> None:
        with _stage_span("vault.load"):
            signature = self._stat_signature()
            with open(self._file, encoding="utf-8") as handle:
                document = json.load(handle)
            version = document.get("version")
            if version != VAULT_VERSION:
                raise VaultError(
                    f"unsupported vault version {version!r} (expected {VAULT_VERSION})"
                )
            self._tenants: dict[str, dict] = document["tenants"]
            self._loaded_signature = signature

    def _save(self) -> None:
        with _stage_span("vault.save"):
            _atomic_write_json(self._file, {"version": VAULT_VERSION, "tenants": self._tenants})
            self._loaded_signature = self._stat_signature()


def _token_digest(token: str) -> str:
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


def _atomic_write_json(path: str, document: dict) -> None:
    """Write *document* to *path* atomically (tmp file + ``os.replace``)."""
    directory = os.path.dirname(path) or "."
    tmp_path = path + ".tmp"
    fd = os.open(tmp_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    # Make the rename itself durable where the platform allows it.
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. NT has no directory fds
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
