"""Chunked CSV ingest and emit: million-row files without million-row tables.

The readers wrap :mod:`repro.relational.io` (the single source of truth for
cell parsing, including the ``[lower,upper)`` interval round trip) and add
chunking: :func:`iter_tables` yields successive :class:`Table` objects of at
most ``chunk_size`` rows, so downstream per-row work — binning's rewrite,
embedding, vote collection — touches one bounded chunk at a time.  The
:class:`RowWriter` is the emit-side counterpart: an incrementally fed CSV
writer that the two-pass streaming protect keeps open across chunks.

Memory profile: one chunk of parsed rows plus the constant frontier metadata,
independent of file size.  Protect needs *two* passes over the input (the
binning frontiers and the ownership statistic are global aggregates); detect
needs one.
"""

from __future__ import annotations

import csv
from typing import Iterable, Iterator, Mapping

from repro.relational.io import iter_csv_rows, write_csv_rows
from repro.relational.schema import TableSchema
from repro.relational.table import Row, Table

__all__ = ["DEFAULT_CHUNK_SIZE", "iter_rows", "iter_tables", "write_rows", "RowWriter"]

DEFAULT_CHUNK_SIZE = 10_000


def iter_rows(path: str, schema: TableSchema) -> Iterator[Row]:
    """Stream schema-parsed rows from *path*, one dict at a time."""
    return iter_csv_rows(path, schema)


def iter_tables(path: str, schema: TableSchema, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[Table]:
    """Stream *path* as successive tables of at most *chunk_size* rows.

    Chunk boundaries are invisible to the protection pipeline: binning's
    rewrite, mark embedding and vote collection are all per-row computations,
    so processing chunk tables in file order is exactly equivalent to
    processing one full table.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    chunk = Table(schema)
    for row in iter_csv_rows(path, schema):
        chunk.insert(row)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = Table(schema)
    if len(chunk):
        yield chunk


def write_rows(path: str, schema: TableSchema, rows: Iterable[Mapping[str, object]]) -> int:
    """Stream *rows* to a CSV at *path*; returns the number written."""
    return write_csv_rows(path, schema, rows)


class RowWriter:
    """Incrementally fed CSV emitter (context manager).

    ``write_table`` appends one chunk's rows; the header is written on entry.
    Cells serialise via ``str()``, so :class:`~repro.dht.node.Interval` values
    emit the literal the readers parse back.
    """

    def __init__(self, path: str, schema: TableSchema) -> None:
        self._path = path
        self._schema = schema
        self._handle = None
        self._writer = None
        self._rows_written = 0

    @property
    def rows_written(self) -> int:
        return self._rows_written

    def __enter__(self) -> "RowWriter":
        self._handle = open(self._path, "w", newline="", encoding="utf-8")
        self._writer = csv.DictWriter(self._handle, fieldnames=self._schema.column_names)
        self._writer.writeheader()
        return self

    def write_row(self, row: Mapping[str, object]) -> None:
        self._writer.writerow({name: row[name] for name in self._schema.column_names})
        self._rows_written += 1

    def write_table(self, table: Table) -> None:
        for row in table:
            self.write_row(row)

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._writer = None
