"""Chunked CSV ingest and emit: million-row files without million-row tables.

The readers wrap :mod:`repro.relational.io` (the single source of truth for
cell parsing, including the ``[lower,upper)`` interval round trip) and add
chunking: :func:`iter_tables` yields successive :class:`Table` objects of at
most ``chunk_size`` rows, so downstream per-row work — binning's rewrite,
embedding, vote collection — touches one bounded chunk at a time.  The
:class:`RowWriter` is the emit-side counterpart: an incrementally fed CSV
writer that the two-pass streaming protect keeps open across chunks.

Memory profile: one chunk of parsed rows plus the constant frontier metadata,
independent of file size.  Protect needs *two* passes over the input (the
binning frontiers and the ownership statistic are global aggregates); detect
needs one.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, Iterator, Mapping

from repro.relational.columnar import ColumnarTable, CsvParsePlan
from repro.relational.io import iter_csv_rows, write_csv_rows
from repro.relational.schema import TableSchema
from repro.relational.table import Row, Table
from repro.telemetry.trace import span as _stage_span

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "iter_rows",
    "iter_tables",
    "iter_raw_chunks",
    "spool_stream",
    "write_rows",
    "render_csv_rows",
    "RowWriter",
]

DEFAULT_CHUNK_SIZE = 10_000

#: Socket/file copy granularity for :func:`spool_stream`.
SPOOL_CHUNK_BYTES = 64 * 1024


def iter_rows(path: str, schema: TableSchema) -> Iterator[Row]:
    """Stream schema-parsed rows from *path*, one dict at a time."""
    return iter_csv_rows(path, schema)


def iter_tables(path: str, schema: TableSchema, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[Table]:
    """Stream *path* as successive tables of at most *chunk_size* rows.

    Chunk boundaries are invisible to the protection pipeline: binning's
    rewrite, mark embedding and vote collection are all per-row computations,
    so processing chunk tables in file order is exactly equivalent to
    processing one full table.

    Chunks are :class:`~repro.relational.columnar.ColumnarTable` objects: the
    cells go straight from the CSV reader into typed column buffers (same
    parse semantics as ``csv.DictReader`` + ``parse_row``, asserted by the
    columnar equivalence suite), and every downstream per-row computation
    runs on its per-column fast path.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        fieldnames = next(reader, None)
        if fieldnames is None:
            return
        plan = CsvParsePlan(fieldnames, schema)
        while True:
            chunk = ColumnarTable(schema)
            parsed = plan.extend_table(chunk, reader, limit=chunk_size)
            if parsed:
                yield chunk
            if parsed < chunk_size:
                return


def iter_raw_chunks(
    path: str, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[tuple[str, list[str]]]:
    """Stream *path* as ``(header_line, data_lines)`` chunks of raw CSV text.

    The unparsed counterpart of :func:`iter_tables`, for runners that move
    parsing off the ingest thread: the main process only reads lines (cheap
    I/O), each worker runs ``csv.DictReader`` over its own chunk — prefixed
    with the shared header so field mapping is identical to reading the file
    — and parses with the same :mod:`repro.relational.io` machinery.

    Chunk boundaries land only where the quote parity is even: a suspect CSV
    is attacker-supplied, and a quoted cell may legally contain a newline, so
    a record can span physical lines.  Inside a quoted region the cumulative
    count of ``"`` characters is odd (escaped ``""`` pairs cancel), so
    deferring the cut until parity returns to even guarantees a chunk never
    ends mid-record — every worker parses exactly the records a whole-file
    reader would.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    with open(path, newline="", encoding="utf-8") as handle:
        header = handle.readline()
        if not header:
            return
        lines: list[str] = []
        open_quote = False
        for line in handle:
            lines.append(line)
            if line.count('"') % 2:
                open_quote = not open_quote
            if len(lines) >= chunk_size and not open_quote:
                yield header, lines
                lines = []
        if lines:
            yield header, lines


def spool_stream(stream, path: str, *, max_bytes: int | None = None) -> int:
    """Copy a binary *stream* (e.g. an HTTP request body) to *path* in chunks.

    Returns the number of bytes written.  Protect needs two passes over its
    input while a socket can be read only once, so the HTTP frontend spools
    uploads through this into a temporary file — constant memory, like every
    other leg of the streaming path.  *max_bytes* guards against unbounded
    uploads (``ValueError`` when exceeded).
    """
    if hasattr(stream, "read"):
        reader = stream.read
        blocks = iter(lambda: reader(SPOOL_CHUNK_BYTES), b"")
    else:  # any iterable of byte blocks (e.g. a decoded chunked request body)
        blocks = iter(stream)
    written = 0
    with open(path, "wb") as handle:
        for block in blocks:
            written += len(block)
            if max_bytes is not None and written > max_bytes:
                raise ValueError(f"upload exceeds the configured limit of {max_bytes} bytes")
            handle.write(block)
    return written


def write_rows(path: str, schema: TableSchema, rows: Iterable[Mapping[str, object]]) -> int:
    """Stream *rows* to a CSV at *path*; returns the number written."""
    return write_csv_rows(path, schema, rows)


def render_csv_rows(schema: TableSchema, rows: Iterable[Mapping[str, object]]) -> str:
    """*rows* rendered exactly as :class:`RowWriter` emits them (no header).

    The single source of the emit dialect for code that serialises away from
    the output file — protect pool workers render their chunk with this, the
    executor splices the text through :meth:`RowWriter.write_text`, and
    :meth:`RowWriter.write_table` itself goes through here, so the three can
    never drift apart byte-wise.
    """
    names = schema.column_names
    buffer = io.StringIO()
    if isinstance(rows, Table):
        columns = rows.column_sequences(names)
        if columns is not None:
            # Columnar fast path: one positional writerows over zipped column
            # buffers.  ``csv.DictWriter.writerow`` reduces to exactly this
            # positional write for dicts with the exact fieldnames, so the
            # bytes are identical to the dict path below.
            csv.writer(buffer).writerows(zip(*(columns[name] for name in names)))
            return buffer.getvalue()
    writer = csv.DictWriter(buffer, fieldnames=names)
    for row in rows:
        writer.writerow({name: row[name] for name in names})
    return buffer.getvalue()


class RowWriter:
    """Incrementally fed CSV emitter (context manager).

    ``write_table`` appends one chunk's rows; the header is written on entry.
    Cells serialise via ``str()``, so :class:`~repro.dht.node.Interval` values
    emit the literal the readers parse back.
    """

    def __init__(self, path: str, schema: TableSchema) -> None:
        self._path = path
        self._schema = schema
        self._handle = None
        self._writer = None
        self._rows_written = 0

    @property
    def rows_written(self) -> int:
        return self._rows_written

    def __enter__(self) -> "RowWriter":
        self._handle = open(self._path, "w", newline="", encoding="utf-8")
        self._writer = csv.DictWriter(self._handle, fieldnames=self._schema.column_names)
        self._writer.writeheader()
        return self

    def write_row(self, row: Mapping[str, object]) -> None:
        self._writer.writerow({name: row[name] for name in self._schema.column_names})
        self._rows_written += 1

    def write_table(self, table: Table) -> None:
        self.write_text(render_csv_rows(self._schema, table), len(table))

    def write_text(self, text: str, rows: int) -> None:
        """Append *rows* rows of pre-serialised CSV *text* (no header).

        The emit half of runner-parallel protect: workers serialise their own
        chunk with the same ``csv`` dialect :meth:`write_row` uses (``\\r\\n``
        terminators, ``str()`` cell coercion), so appending the text verbatim
        produces the file a serial :meth:`write_table` loop would — the
        caller vouches for *rows* since the text is not re-scanned.
        """
        with _stage_span("protect.splice", rows=rows):
            self._handle.write(text)
        self._rows_written += rows

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._writer = None
