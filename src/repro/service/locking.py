"""Advisory file locking for the vault's multi-writer mutations.

PR 2's durability contract made every vault/claim-store write atomic (tmp
file + ``os.replace``), which protects *readers* from torn state but not
*writers* from each other: two concurrent protects against one vault each
load the document, apply their own mutation and save — the second save wins
and the first tenant's dataset record silently vanishes.  The HTTP frontend
makes that race real (every request may run in its own thread or process),
so mutations now serialise through an advisory lock file next to the
document.

``fcntl.flock`` is used where available (POSIX — covers threads in one
process *and* separate processes, because each :class:`FileLock` acquisition
opens its own descriptor); elsewhere the lock degrades to a no-op, matching
the seed's single-writer assumption rather than failing.  The lock file
itself is a zero-byte sibling (``<document>.lock``) that is never deleted —
deleting lock files is the classic unlink/flock race.
"""

from __future__ import annotations

import os

try:  # pragma: no cover - the import either works or the platform lacks it
    import fcntl
except ImportError:  # pragma: no cover - e.g. NT
    fcntl = None  # type: ignore[assignment]

__all__ = ["FileLock", "lock_path_for"]


def lock_path_for(document_path: str | os.PathLike) -> str:
    """The advisory lock file guarding writes to *document_path*."""
    return os.fspath(document_path) + ".lock"


class FileLock:
    """Exclusive advisory lock on a sibling lock file (re-usable, not re-entrant).

    Usage::

        with FileLock(lock_path_for(vault_file)):
            ...load, mutate, save...

    Acquisition blocks until the holder releases.  On platforms without
    :mod:`fcntl` the context manager still creates the lock file (so the
    paths behave identically) but provides no exclusion.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = os.fspath(path)
        self._fd: int | None = None

    @property
    def path(self) -> str:
        return self._path

    @property
    def locked(self) -> bool:
        return self._fd is not None

    def __enter__(self) -> "FileLock":
        if self._fd is not None:
            raise RuntimeError(f"lock {self._path!r} is already held by this object")
        fd = os.open(self._path, os.O_CREAT | os.O_RDWR, 0o600)
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
            except BaseException:
                os.close(fd)
                raise
        self._fd = fd
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        fd, self._fd = self._fd, None
        if fd is None:  # pragma: no cover - defensive
            return
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)
