"""The :class:`ProtectionService` facade: protect, detect, dispute — durably.

This is the operable surface over the paper's two agents.  Where
:class:`~repro.framework.pipeline.ProtectionFramework` assumes one in-memory
table and one process lifetime, the service assumes the owner's real world:
many tenants, many datasets, CSV files too big to materialise, and a *cold*
process at detection/dispute time that holds nothing but the vault path.

Protect is two streaming passes (Section 4's binning needs two global
aggregates — per-leaf counts for the frontiers and the identifier statistic
``v`` — everything else is per-row); detect is one streaming pass whose
per-chunk votes merge bit-identically to a serial detect.  Both write their
court-critical outputs (statistic, mark, claim) to the vault and claim store
before returning, so a crash after ``protect`` never loses the ability to
litigate.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from typing import Mapping

from repro.binning.binner import BinnedTable
from repro.binning.kanonymity import EnforcementMode, KAnonymitySpec
from repro.dht.tree import DomainHierarchyTree
from repro.framework.pipeline import ProtectionFramework
from repro.metrics.information_loss import table_information_loss
from repro.metrics.usage_metrics import UsageMetrics
from repro.ontology.registry import standard_ontology
from repro.relational.schema import TableSchema, medical_schema
from repro.relational.table import Table
from repro.service.executor import ShardExecutor
from repro.service.runners import ProtectPlan, ShardRunner, WatermarkerSpec
from repro.service.store import ClaimStore
from repro.service.streaming import DEFAULT_CHUNK_SIZE, iter_rows
from repro.service.vault import DatasetRecord, KeyVault, TenantRecord, VaultError
from repro.telemetry.trace import span as _stage_span
from repro.watermarking.hierarchical import DetectionReport
from repro.watermarking.mark import Mark, mark_loss
from repro.watermarking.ownership import DisputeVerdict, OwnershipClaim

__all__ = [
    "DEFAULT_TENANT",
    "ProtectOutcome",
    "DetectOutcome",
    "ProtectionService",
    "suspect_view",
    "dataset_id_for",
]

DEFAULT_TENANT = "owner"


def dataset_id_for(path: str) -> str:
    """Default dataset id: the input file's stem (``/a/b/claims.csv`` -> ``claims``)."""
    stem = os.path.splitext(os.path.basename(path))[0]
    if not stem:
        raise ValueError(f"cannot derive a dataset id from path {path!r}")
    return stem


def suspect_view(
    table: Table,
    trees: Mapping[str, DomainHierarchyTree],
    schema: TableSchema,
    *,
    k: int = 1,
    metrics_depth: int = 1,
) -> BinnedTable:
    """A :class:`BinnedTable` view of a table found in the wild, for detection.

    Detection only needs the trees and the two frontiers.  The ultimate
    frontier is not recoverable from a suspect CSV, so the leaf cut stands in
    (the detector walks *up* from wherever a cell resolves, so any frontier at
    or below the true one reads the same votes); the maximal frontier is
    re-derived from the usage-metrics depth the owner protected with.
    """
    return BinnedTable(table=table, **_suspect_metadata(trees, schema, k, metrics_depth))


def _suspect_metadata(
    trees: Mapping[str, DomainHierarchyTree],
    schema: TableSchema,
    k: int,
    metrics_depth: int,
) -> dict:
    """The table-independent :class:`BinnedTable` fields of :func:`suspect_view`."""
    quasi = tuple(column.name for column in schema.quasi_identifying_columns)
    metrics = UsageMetrics.uniform_depth(trees, metrics_depth)
    return {
        "trees": {column: trees[column] for column in quasi},
        "identifying_columns": tuple(column.name for column in schema.identifying_columns),
        "quasi_columns": quasi,
        "ultimate_nodes": {
            column: tuple(leaf.name for leaf in trees[column].leaves()) for column in quasi
        },
        "maximal_nodes": {
            column: tuple(node.name for node in metrics.maximal_nodes(column, trees[column]))
            for column in quasi
        },
        "k": k,
    }


@dataclass(frozen=True)
class ProtectOutcome:
    """What one streamed ``protect`` run produced and registered.

    ``runner``/``workers`` name where pass 2 (rewrite + embed + emit) ran;
    ``chunk_seconds`` is each chunk's worker-side wall clock in chunk order —
    the per-chunk timings the protect report surfaces so a parallel protect's
    spread is visible without profiling.
    """

    tenant: str
    dataset: str
    rows: int
    output: str
    registered_statistic: float
    mark: str
    cells_changed: int
    tuples_selected: int
    information_loss: float
    runner: str = "thread"
    workers: int = 1
    chunk_seconds: tuple[float, ...] = ()

    @property
    def chunks(self) -> int:
        return len(self.chunk_seconds)

    def to_json(self) -> dict:
        payload = asdict(self)
        payload["chunk_seconds"] = [round(seconds, 6) for seconds in self.chunk_seconds]
        payload["chunks"] = self.chunks
        return payload


@dataclass(frozen=True)
class DetectOutcome:
    """What a (cold-process) ``detect`` run recovered, versus the vault record."""

    tenant: str
    dataset: str
    rows: int
    mark: str
    expected_mark: str | None
    mark_loss: float | None
    coverage: float
    positions_with_votes: int
    tuples_selected: int
    shards: int
    runner: str = "thread"
    code: str = "repetition"
    corrected_bits: int = 0
    bit_confidence: tuple[float, ...] = ()

    @property
    def matches(self) -> bool | None:
        """Whether the recovered mark equals the registered one (``None`` = unregistered)."""
        if self.mark_loss is None:
            return None
        return self.mark_loss == 0.0

    def to_json(self) -> dict:
        return asdict(self)


class ProtectionService:
    """Multi-tenant protect/detect/dispute over a persistent vault.

    One service instance wraps one vault directory.  Frameworks (and with
    them the batched hash engines and their digest caches) are built lazily
    per tenant and reused across calls, so a detect following a protect in
    the same process still gets PR 1's warm-cache behaviour — while a fresh
    process reconstructs everything from the vault alone.
    """

    def __init__(
        self,
        vault: KeyVault | str | os.PathLike,
        *,
        schema: TableSchema | None = None,
        trees: Mapping[str, DomainHierarchyTree] | None = None,
        executor: ShardExecutor | None = None,
        runner: "str | ShardRunner | None" = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        audit: bool = True,
    ) -> None:
        if executor is not None and runner is not None:
            raise ValueError("pass either executor or runner, not both")
        self._vault = vault if isinstance(vault, KeyVault) else KeyVault(vault)
        self._claims = self._vault.claim_store()
        # Every successful register/protect/detect/dispute lands one record
        # on the vault's hash chain; ``audit=False`` is for vaults on
        # read-only media, where appending would be the error.
        self._audit = self._vault.audit_log() if audit else None
        self._schema = schema if schema is not None else medical_schema()
        self._trees = dict(trees) if trees is not None else dict(standard_ontology().items())
        self._executor = executor if executor is not None else ShardExecutor(runner=runner)
        self._chunk_size = chunk_size
        self._frameworks: dict[str, ProtectionFramework] = {}

    # -------------------------------------------------------------- properties
    @property
    def vault(self) -> KeyVault:
        return self._vault

    @property
    def claim_store(self) -> ClaimStore:
        return self._claims

    @property
    def audit(self):
        """The vault's audit log, or ``None`` when auditing is disabled."""
        return self._audit

    def _record_audit(
        self, event: str, tenant: str | None, dataset: str | None = None, **payload
    ) -> None:
        if self._audit is not None:
            self._audit.append(event, tenant, dataset=dataset, payload=payload)

    @property
    def schema(self) -> TableSchema:
        return self._schema

    @property
    def trees(self) -> Mapping[str, DomainHierarchyTree]:
        """The per-column domain hierarchy trees this service detects against.

        Fleet workers resolve wire-format node *names* against these (the
        trees themselves never cross the network), so every member of a
        distributed deployment must be configured with the same ontology.
        """
        return self._trees

    # ----------------------------------------------------------------- tenants
    def register_tenant(self, tenant_id: str = DEFAULT_TENANT, **kwargs) -> TenantRecord:
        """Register a tenant (generating secrets unless supplied); see the vault."""
        record = self._vault.register_tenant(tenant_id, **kwargs)
        # Parameters only — secrets never reach the (exportable) audit chain.
        self._record_audit(
            "register",
            tenant_id,
            eta=record.eta,
            k=record.k,
            mark_length=record.mark_length,
            copies=record.copies,
            code=record.code,
        )
        return record

    def framework_for(self, tenant_id: str) -> ProtectionFramework:
        """The (cached) framework rebuilt from the tenant's vault record."""
        framework = self._frameworks.get(tenant_id)
        if framework is None:
            framework = self._build_framework(self._vault.tenant(tenant_id))
            self._frameworks[tenant_id] = framework
        return framework

    # ----------------------------------------------------------------- protect
    def protect(
        self,
        tenant_id: str,
        input_csv: str,
        output_csv: str,
        *,
        dataset_id: str | None = None,
        chunk_size: int | None = None,
        workers: int | None = None,
        runner: "str | ShardRunner | None" = None,
    ) -> ProtectOutcome:
        """Bin + watermark *input_csv* to *output_csv* in two streaming passes.

        Pass 1 accumulates the global aggregates (per-leaf counts, the
        ownership statistic); pass 2 rewrites, embeds and emits chunk by chunk
        on the executor's runner (*workers*/*runner* override per call, like
        ``detect``; the remote runner is detect-only and is refused).  The
        result is byte-for-byte the CSV a whole-table ``framework.protect`` +
        export would produce, whatever the runner or worker count — binning's
        frontiers depend only on the leaf counts, everything downstream is
        per-row, and chunks are emitted in chunk order.
        """
        with _stage_span("service.protect"):
            return self._protect(
                tenant_id,
                input_csv,
                output_csv,
                dataset_id=dataset_id,
                chunk_size=chunk_size,
                workers=workers,
                runner=runner,
            )

    def _protect(
        self,
        tenant_id: str,
        input_csv: str,
        output_csv: str,
        *,
        dataset_id: str | None,
        chunk_size: int | None,
        workers: int | None,
        runner: "str | ShardRunner | None",
    ) -> ProtectOutcome:
        framework = self.framework_for(tenant_id)
        dataset_id = dataset_id or dataset_id_for(input_csv)
        chunk_size = chunk_size or self._chunk_size
        schema = self._schema
        identifying = [column.name for column in schema.identifying_columns]
        quasi = [column.name for column in schema.quasi_identifying_columns]
        if not identifying:
            raise ValueError("the schema must have at least one identifying column")

        # Pass 1 — global aggregates, constant memory.
        leaf_counts = {
            column: {leaf: 0 for leaf in self._trees[column].leaves()} for column in quasi
        }
        trees = {column: self._trees[column] for column in quasi}
        ident_sum = 0.0
        ident_count = 0
        rows = 0
        with _stage_span("protect.pass1") as pass1_scope:
            for row in iter_rows(input_csv, schema):
                rows += 1
                for column in identifying:
                    text = str(row[column])
                    if text.isdigit():
                        ident_sum += float(int(text))
                        ident_count += 1
                for column in quasi:
                    leaf_counts[column][trees[column].leaf_for_raw(row[column])] += 1
            pass1_scope.set(rows=rows)
        if ident_count == 0:
            raise ValueError("no numeric identifiers: cannot compute the ownership statistic")
        statistic = ident_sum / ident_count

        mark = framework.register_statistic(statistic)
        agent = framework.binning_agent
        plan = agent.plan_from_counts(leaf_counts, columns=quasi)
        losses = plan.ultimate.information_losses(leaf_counts)
        metadata = plan.metadata_for(self._trees)
        watermarker = framework.watermarker()

        # Pass 2 — rewrite + embed + emit, chunk by chunk on the runner.
        executor = self._protect_executor_for(workers, runner)
        run = executor.protect_csv(
            ProtectPlan(
                spec=WatermarkerSpec.of(watermarker),
                schema=schema,
                metadata=metadata,
                identifying_columns=tuple(identifying),
                encryption_key=framework.encryption_key,
                mark_bits=str(mark),
            ),
            input_csv,
            output_csv,
            chunk_size=chunk_size,
        )
        if run.rows != rows:
            raise ValueError(
                f"pass 2 emitted {run.rows} rows but pass 1 read {rows} "
                "(the input changed between the two streaming passes)"
            )
        tuples_selected = run.tuples_selected
        cells_changed = run.cells_changed

        # Persist the court-critical state before reporting success.
        self._vault.record_dataset(
            tenant_id,
            DatasetRecord(
                dataset_id=dataset_id,
                registered_statistic=statistic,
                mark_bits=str(mark),
                rows=rows,
                cells_changed=cells_changed,
                information_loss=table_information_loss(losses),
                source=os.path.abspath(input_csv),
            ),
        )
        self._claims.add_claim(dataset_id, framework.owner_claim(tenant_id))
        self._record_audit(
            "protect",
            tenant_id,
            dataset_id,
            rows=rows,
            mark=str(mark),
            registered_statistic=statistic,
            cells_changed=cells_changed,
            runner=executor.runner_name,
        )

        return ProtectOutcome(
            tenant=tenant_id,
            dataset=dataset_id,
            rows=rows,
            output=output_csv,
            registered_statistic=statistic,
            mark=str(mark),
            cells_changed=cells_changed,
            tuples_selected=tuples_selected,
            information_loss=table_information_loss(losses),
            runner=executor.runner_name,
            workers=executor.max_workers,
            chunk_seconds=run.chunk_seconds,
        )

    # ------------------------------------------------------------------ detect
    def detect(
        self,
        tenant_id: str,
        suspect_csv: str,
        *,
        dataset_id: str | None = None,
        workers: int | None = None,
        runner: "str | ShardRunner | None" = None,
        chunk_size: int | None = None,
        code: str | None = None,
    ) -> DetectOutcome:
        """Recover the mark from *suspect_csv* using only vault state.

        Streams the file chunk by chunk, collecting detection votes on the
        executor's runner and merging them — bit-identical to a serial detect
        over the materialised table, whichever runner collects the votes.
        When the dataset was protected through this vault, the recovered mark
        is compared against the registered one.  An empty CSV (header only)
        yields a clean zero-coverage report, not an error.

        *code* overrides the registered mark code for this run (wire string,
        e.g. ``"soft"``); only codes sharing the repetition encoder can be
        swapped at detect time.
        """
        with _stage_span("service.detect"):
            return self._detect(
                tenant_id,
                suspect_csv,
                dataset_id=dataset_id,
                workers=workers,
                runner=runner,
                chunk_size=chunk_size,
                code=code,
            )

    def _detect(
        self,
        tenant_id: str,
        suspect_csv: str,
        *,
        dataset_id: str | None,
        workers: int | None,
        runner: "str | ShardRunner | None",
        chunk_size: int | None,
        code: str | None = None,
    ) -> DetectOutcome:
        record = self._vault.tenant(tenant_id)
        framework = self.framework_for(tenant_id)
        dataset_id = dataset_id or dataset_id_for(suspect_csv)
        expected: Mark | None = None
        try:
            stored = self._vault.dataset(tenant_id, dataset_id)
        except VaultError:
            stored = None
        if stored is not None:
            expected = framework.restore_registration(
                stored.registered_statistic, Mark.from_string(stored.mark_bits)
            )

        executor = self._executor_for(workers, runner)
        watermarker = framework.watermarker()
        if code is not None:
            watermarker = watermarker.with_code(code)
        row_counter = [0]

        def count_rows(n: int) -> None:
            row_counter[0] += n

        report = executor.detect_csv(
            watermarker,
            suspect_csv,
            self._schema,
            _suspect_metadata(self._trees, self._schema, record.k, record.metrics_depth),
            record.mark_length,
            chunk_size=chunk_size or self._chunk_size,
            on_rows=count_rows,
        )
        loss = mark_loss(expected, report.mark) if expected is not None else None
        self._record_audit(
            "detect",
            tenant_id,
            dataset_id,
            rows=row_counter[0],
            mark=str(report.mark),
            mark_loss=loss,
            coverage=report.coverage,
            runner=executor.runner_name,
        )
        return DetectOutcome(
            tenant=tenant_id,
            dataset=dataset_id,
            rows=row_counter[0],
            mark=str(report.mark),
            expected_mark=str(expected) if expected is not None else None,
            mark_loss=loss,
            coverage=report.coverage,
            positions_with_votes=report.positions_with_votes,
            tuples_selected=report.tuples_selected,
            shards=executor.max_workers,
            runner=executor.runner_name,
            code=report.code,
            corrected_bits=report.corrected_bits,
            bit_confidence=report.bit_confidence,
        )

    def detect_binned(
        self,
        tenant_id: str,
        binned: BinnedTable,
        *,
        workers: int | None = None,
        runner: "str | ShardRunner | None" = None,
        shards: int | None = None,
    ) -> DetectionReport:
        """Shard-parallel detect over an in-memory binned table (library callers)."""
        record = self._vault.tenant(tenant_id)
        executor = self._executor_for(workers, runner)
        return executor.detect(
            self.framework_for(tenant_id).watermarker(), binned, record.mark_length, shards=shards
        )

    def _executor_for(
        self, workers: int | None, runner: "str | ShardRunner | None"
    ) -> ShardExecutor:
        """The configured executor, or a per-call override of workers/runner."""
        if workers is None and runner is None:
            return self._executor
        return ShardExecutor(
            workers if workers is not None else self._executor.max_workers,
            runner=runner if runner is not None else self._executor.runner,
        )

    def _protect_executor_for(
        self, workers: int | None, runner: "str | ShardRunner | None"
    ) -> ShardExecutor:
        """Like :meth:`_executor_for`, but protect-capable.

        A service whose *default* runner is a detect fleet (a ``repro serve
        --runner remote`` coordinator) still protects — pass 2 falls back to
        the local thread runner, exactly the pre-parallel behavior.  Only an
        *explicitly requested* fleet runner is refused (by the executor,
        before the output file exists), so asking for the impossible stays
        loud while the default deployment keeps working.
        """
        executor = self._executor_for(workers, runner)
        if executor.runner.supports_protect or runner is not None:
            return executor
        return ShardExecutor(
            workers if workers is not None else executor.max_workers, runner="thread"
        )

    # ----------------------------------------------------------------- dispute
    def register_claim(self, dataset_id: str, claim: OwnershipClaim) -> None:
        """Record a (possibly rival) claim over *dataset_id* for later disputes."""
        self._claims.add_claim(dataset_id, claim)
        self._record_audit("claim", claim.claimant, dataset_id)

    def dispute(
        self,
        tenant_id: str,
        disputed_csv: str,
        *,
        dataset_id: str | None = None,
        extra_claims: tuple[OwnershipClaim, ...] = (),
    ) -> DisputeVerdict:
        """Resolve ownership of *disputed_csv* from the persisted claims.

        All claims stored for the dataset (the owner's, written by
        ``protect``, plus any rivals registered since) are re-hydrated and
        assessed per Section 5.4.  *tenant_id* picks the registry parameters
        (``τ``, mark length, bit-error tolerance) — the court's configuration.
        """
        record = self._vault.tenant(tenant_id)
        framework = self.framework_for(tenant_id)
        dataset_id = dataset_id or dataset_id_for(disputed_csv)
        claims = self._claims.claims(dataset_id) + list(extra_claims)
        if not claims:
            raise VaultError(f"no claims stored for dataset {dataset_id!r}")
        table = Table(self._schema, iter_rows(disputed_csv, self._schema))
        binned = suspect_view(
            table, self._trees, self._schema, k=record.k, metrics_depth=record.metrics_depth
        )
        verdict = framework.resolve_dispute(binned, claims)
        self._record_audit(
            "dispute",
            tenant_id,
            dataset_id,
            winner=verdict.winner,
            claimants=[assessment.claimant for assessment in verdict.assessments],
            valid_claimants=verdict.valid_claimants,
        )
        return verdict

    # ------------------------------------------------------------------ status
    def status(self, tenant_id: str | None = None) -> dict:
        """JSON-able snapshot of the vault: tenants, datasets, claimants.

        Picks up writes from other processes first (stat-gated reload), so a
        long-running server reports datasets a CLI protect just registered.
        """
        self._vault.reload_if_changed()
        tenants = [tenant_id] if tenant_id is not None else self._vault.tenants()
        out: dict = {
            "vault": self._vault.root,
            "backend": self._vault.backend,
            "tenants": {},
        }
        for tenant in tenants:
            record = self._vault.tenant(tenant)
            datasets = {}
            for dataset in self._vault.datasets(tenant):
                stored = self._vault.dataset(tenant, dataset)
                datasets[dataset] = {
                    "rows": stored.rows,
                    "mark": stored.mark_bits,
                    "registered_statistic": stored.registered_statistic,
                    "cells_changed": stored.cells_changed,
                    "information_loss": stored.information_loss,
                    "claimants": self._claims.claimants(dataset),
                }
            out["tenants"][tenant] = {
                "eta": record.eta,
                "k": record.k,
                "mark_length": record.mark_length,
                "copies": record.copies,
                "datasets": datasets,
            }
        return out

    # ----------------------------------------------------------------- helpers
    def _build_framework(self, record: TenantRecord) -> ProtectionFramework:
        metrics = UsageMetrics.uniform_depth(self._trees, record.metrics_depth)
        return ProtectionFramework(
            self._trees,
            metrics,
            KAnonymitySpec(k=record.k, mode=EnforcementMode.MONO, epsilon=record.epsilon),
            encryption_key=record.encryption_key,
            watermark_secret=record.watermark_secret,
            eta=record.eta,
            mark_length=record.mark_length,
            copies=record.copies,
            watermark_columns=record.watermark_columns,
            ownership_tau=record.ownership_tau,
            max_mark_bit_errors=record.max_mark_bit_errors,
            code=record.code,
        )
