"""Stdlib-only HTTP frontend over the :class:`~repro.service.api.ProtectionService`.

PR 2 made protection durable across *processes*; this package makes it
operable across *machines*: a WSGI application (no third-party dependencies
— ``wsgiref`` serves it, any WSGI container can) exposing the service's five
verbs with streaming CSV bodies and per-tenant bearer-token auth backed by
the :class:`~repro.service.vault.KeyVault`:

* :mod:`repro.service.http.app` — the WSGI application: routing, chunked
  upload decoding, streaming download, JSON bodies matching the CLI's
  ``--json`` shapes, plus the ``/internal/detect-votes`` worker endpoint of
  distributed detection;
* :mod:`repro.service.http.auth` — ``Authorization: Bearer`` validation
  against the vault's token digests (401 missing / 403 wrong);
* :mod:`repro.service.http.metrics` — the per-process counters behind
  ``GET /metrics`` (request/response counts, rows, per-runner timings);
* :mod:`repro.service.http.prefork` — the production serving layer: a
  pre-fork multi-process server (``SO_REUSEPORT`` port sharing, HTTP/1.1
  keep-alive, bounded admission queue with 503 sheds, per-tenant rate
  limiting, graceful SIGTERM drain) behind the ``repro serve`` entry point;
* :mod:`repro.service.http.server` — the legacy threading ``wsgiref``
  server (one request per connection), kept for embedding and tests;
* :mod:`repro.service.http.client` — the stdlib client the CLI's ``--url``
  mode drives (chunked uploads via :mod:`http.client`, streamed downloads,
  pooled keep-alive connections with one transparent stale retry) and the
  :class:`~repro.service.runners.RemoteRunner` posts chunks with.
"""

from repro.service.http.app import ProtectionApp
from repro.service.http.client import HTTPServiceError, ServiceClient
from repro.service.http.metrics import ServiceMetrics
from repro.service.http.prefork import HTTPWorker, PreForkServer, RateLimiter
from repro.service.http.server import make_http_server

__all__ = [
    "ProtectionApp",
    "ServiceClient",
    "HTTPServiceError",
    "ServiceMetrics",
    "HTTPWorker",
    "PreForkServer",
    "RateLimiter",
    "make_http_server",
]
