"""Pre-fork, keep-alive HTTP/1.1 serving for the protection app — stdlib only.

The threading ``wsgiref`` server (:mod:`repro.service.http.server`) opens one
thread and one TCP connection per request: fine for a walkthrough, a ceiling
for heavy multi-tenant traffic, where the frontend must multiplex thousands
of small calls (status polls, fleet chunk POSTs, detects) without paying a
handshake each.  This module is the production shape:

* :class:`PreForkServer` — a parent that binds the port once and forks N
  worker **processes**.  Where the platform offers ``SO_REUSEPORT`` each
  worker binds its own listening socket on the shared port and the kernel
  load-balances connections across them; elsewhere the children inherit the
  parent's listening socket and share ``accept``.  Dead workers are respawned;
  ``SIGTERM`` drains: stop accepting, finish in-flight requests, exit.
* :class:`HTTPWorker` — one serving process (or thread, in tests): an accept
  loop feeding a **bounded connection queue** drained by a fixed pool of
  handler threads.  A full queue sheds load with ``503`` + ``Retry-After``
  instead of letting a silent kernel backlog time callers out; queue depth,
  shed count and connection count surface in ``/metrics``.
* **Keep-alive** — each connection serves many HTTP/1.1 requests (idle
  timeout, max-requests cap), so :class:`~repro.service.http.client.ServiceClient`
  and the :class:`~repro.service.runners.RemoteRunner` fleet hop stop paying
  a TCP handshake per call.  Transfer framing (``Content-Length`` and
  ``chunked``) is decoded by the server per PEP 3333's hop-by-hop rule and
  the body is handed to the app as a terminated ``wsgi.input`` stream
  (``environ["wsgi.input_terminated"] = True``, the de-facto flag), which is
  what keeps the connection byte-exact between pipelined requests.
* :class:`RateLimiter` — per-tenant token buckets keyed on the bearer token;
  over-limit requests answer ``429`` with ``Retry-After`` and the uniform
  ``{"error": ...}`` JSON before any service work runs.

The WSGI application mounted underneath is the unchanged
:class:`~repro.service.http.app.ProtectionApp`: auth, streaming CSV bodies,
tracing headers and the byte/bit-identity invariants all carry over —
asserted by ``tests/service/test_prefork.py`` and
``benchmarks/bench_load.py``.

Worker sizing: each worker process handles up to ``handler_threads``
concurrent connections (a kept-alive idle connection parks its handler
thread until the idle timeout); ``queue_limit`` more may wait in the
admission queue before new arrivals shed.  ``processes`` ≈ CPU cores is the
right default for CPU-bound protect/detect traffic.
"""

from __future__ import annotations

import json
import math
import os
import queue
import signal
import socket
import sys
import threading
import time
import traceback
from typing import Callable, Iterable, Mapping
from urllib.parse import unquote

__all__ = [
    "DEFAULT_KEEPALIVE_SECONDS",
    "DEFAULT_MAX_REQUESTS_PER_CONNECTION",
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_HANDLER_THREADS",
    "RateLimiter",
    "HTTPWorker",
    "PreForkServer",
    "serve_worker_in_thread",
]

#: Idle seconds before a kept-alive connection is closed.
DEFAULT_KEEPALIVE_SECONDS = 75.0

#: Requests served on one connection before the server closes it (bounds the
#: damage of per-connection state leaks and rebalances REUSEPORT load).
DEFAULT_MAX_REQUESTS_PER_CONNECTION = 1000

#: Accepted-but-unhandled connections allowed to wait per worker; beyond it
#: new arrivals are shed with ``503 Retry-After``.
DEFAULT_QUEUE_LIMIT = 64

#: Handler threads per worker — the concurrent-connection bound.
DEFAULT_HANDLER_THREADS = 16

#: Listen backlog behind the explicit admission queue.  Small on purpose:
#: admission control lives in the queue (visible, counted, shed with 503),
#: not in a silent kernel backlog.
LISTEN_BACKLOG = 16

#: ``Retry-After`` seconds on a shed (503) response.
SHED_RETRY_AFTER = 1

#: Unconsumed request-body bytes the server will drain to keep a connection
#: alive after the app answered without reading the body (an early 401/405);
#: larger leftovers close the connection instead, like the wsgiref server did.
DRAIN_CAP_BYTES = 1 << 20

#: Longest request/header/chunk-size line accepted.
_MAX_LINE = 65536

#: Most header lines accepted per request.
_MAX_HEADERS = 200

_BLOCK = 65536

#: Routes exempt from rate limiting even when a bearer token is presented
#: (liveness and scraping must keep answering while a tenant is throttled).
_RATE_LIMIT_EXEMPT = ("/healthz", "/metrics")

_STATUS_REASONS = {
    400: "Bad Request",
    408: "Request Timeout",
    429: "Too Many Requests",
    503: "Service Unavailable",
}


class _ProtocolError(Exception):
    """A malformed request that aborts the connection with *status*."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


# --------------------------------------------------------------- rate limiting
class RateLimiter:
    """Per-key token buckets: *rate* requests/second refill, *burst* capacity.

    Keys are bearer tokens, so the limit is per tenant credential.  Buckets
    live per worker process — the effective tenant ceiling is
    ``rate × processes``, which is the documented pre-fork semantics (each
    worker defends itself; see docs/http.md).  ``admit`` returns ``None``
    when the request may proceed, else the seconds after which a retry could
    succeed (the ``Retry-After`` value).
    """

    def __init__(self, rate: float, burst: int | None = None) -> None:
        if rate <= 0:
            raise ValueError("rate limit must be positive (requests/second)")
        self.rate = float(rate)
        self.burst = max(1, int(burst if burst is not None else math.ceil(2 * rate)))
        self._lock = threading.Lock()
        self._buckets: dict[str, list[float]] = {}  # key -> [tokens, stamp]
        self._max_buckets = 10_000

    def admit(self, key: str) -> float | None:
        now = time.monotonic()
        with self._lock:
            bucket = self._buckets.pop(key, None)
            if bucket is None:
                bucket = [float(self.burst), now]
                while len(self._buckets) >= self._max_buckets:
                    self._buckets.pop(next(iter(self._buckets)))
            tokens, stamp = bucket
            tokens = min(float(self.burst), tokens + (now - stamp) * self.rate)
            admitted = tokens >= 1.0
            if admitted:
                tokens -= 1.0
            bucket[0], bucket[1] = tokens, now
            # Re-insertion keeps eviction LRU-ish, like the watermarker cache.
            self._buckets[key] = bucket
            if admitted:
                return None
            return (1.0 - tokens) / self.rate


# ----------------------------------------------------------------- body input
class _EmptyBody:
    """``wsgi.input`` for a bodiless request."""

    complete = True

    def read(self, size: int = -1) -> bytes:  # noqa: ARG002 - stream protocol
        return b""

    def drain(self, cap: int) -> bool:  # noqa: ARG002
        return True


class _KnownLengthBody:
    """``wsgi.input`` for a ``Content-Length`` body: never reads past it.

    ``read`` returns ``b""`` at the body's end, so the app can stream to EOF
    (``wsgi.input_terminated``) and the bytes that follow — the next pipelined
    request — stay untouched.
    """

    def __init__(self, fp, length: int) -> None:
        self._fp = fp
        self._remaining = int(length)

    @property
    def complete(self) -> bool:
        return self._remaining <= 0

    def read(self, size: int = -1) -> bytes:
        if self._remaining <= 0:
            return b""
        if size is None or size < 0 or size > self._remaining:
            size = self._remaining
        block = self._fp.read(size)
        if not block:
            self._remaining = -1  # poisoned: never reusable
            raise ValueError("truncated body (short read against Content-Length)")
        self._remaining -= len(block)
        return block

    def drain(self, cap: int) -> bool:
        """Discard the unread remainder if it fits *cap*; True when complete."""
        if self._remaining < 0:
            return False
        if self._remaining > cap:
            return False
        try:
            while self._remaining > 0:
                self.read(min(self._remaining, _BLOCK))
        except ValueError:
            return False
        return True


class _ChunkedBody:
    """``wsgi.input`` for a chunked body, decoded by the server.

    Per PEP 3333 transfer framing is hop-by-hop: the server owns it, the app
    sees only payload bytes with a real EOF.  Decoding server-side is also
    what makes keep-alive exact — the reader knows precisely where the body
    ends, so the connection is positioned at the next request line.
    """

    def __init__(self, fp) -> None:
        self._fp = fp
        self._remaining = 0
        self._complete = False
        self._broken = False

    @property
    def complete(self) -> bool:
        return self._complete

    def _begin_chunk(self) -> None:
        size_line = self._fp.readline(_MAX_LINE + 1)
        if not size_line or len(size_line) > _MAX_LINE:
            self._broken = True
            raise ValueError("truncated chunked body (missing chunk size)")
        try:
            size = int(size_line.split(b";", 1)[0].strip() or b"0", 16)
        except ValueError:
            self._broken = True
            raise ValueError("malformed chunked body (bad chunk size)") from None
        if size == 0:
            while True:  # consume trailers up to the final blank line
                trailer = self._fp.readline(_MAX_LINE + 1)
                if trailer in (b"", b"\r\n", b"\n"):
                    break
            self._complete = True
            return
        self._remaining = size

    def read(self, size: int = -1) -> bytes:
        if size is None or size < 0:
            blocks = []
            while True:
                block = self.read(_BLOCK)
                if not block:
                    return b"".join(blocks)
                blocks.append(block)
        if self._complete or self._broken:
            return b""
        if self._remaining == 0:
            self._begin_chunk()
            if self._complete:
                return b""
        block = self._fp.read(min(size, self._remaining))
        if not block:
            self._broken = True
            raise ValueError("truncated chunked body (short chunk)")
        self._remaining -= len(block)
        if self._remaining == 0:
            self._fp.readline(_MAX_LINE)  # the CRLF closing this chunk
        return block

    def drain(self, cap: int) -> bool:
        if self._broken:
            return False
        consumed = 0
        try:
            while not self._complete and consumed <= cap:
                consumed += len(self.read(_BLOCK))
        except ValueError:
            return False
        return self._complete


# -------------------------------------------------------------------- request
class _Request:
    __slots__ = ("method", "target", "version", "headers")

    def __init__(self, method: str, target: str, version: str, headers: dict[str, str]) -> None:
        self.method = method
        self.target = target
        self.version = version
        self.headers = headers  # lower-cased names


class _ConnState:
    """Where a connection's handler is, for the drain logic.

    ``receiving`` — reading (or waiting for) the connection's *current*
    request: an accept-to-first-byte window or a request already on the
    wire; drain lets it finish.  ``busy`` — a request is being processed.
    ``parked`` — waiting for a possible *next* keep-alive request; drain
    closes these immediately.
    """

    __slots__ = ("phase",)

    def __init__(self) -> None:
        self.phase = "receiving"


def _simple_body(status: int, message: str) -> bytes:
    return (json.dumps({"error": message}, indent=2, sort_keys=True) + "\n").encode("utf-8")


def _write_simple_response(
    conn: socket.socket,
    status: int,
    message: str,
    *,
    extra_headers: Iterable[tuple[str, str]] = (),
) -> None:
    """A self-contained JSON error written straight to the socket, then close.

    Used where the app cannot answer: load sheds, rate limits and protocol
    errors.  Same ``{"error": ...}`` document every other failure path emits.
    """
    body = _simple_body(status, message)
    reason = _STATUS_REASONS.get(status, "Error")
    head = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json; charset=utf-8",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    head += [f"{name}: {value}" for name, value in extra_headers]
    try:
        conn.sendall(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
    except OSError:
        pass


def _close_quietly(conn: socket.socket) -> None:
    try:
        conn.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        conn.close()
    except OSError:
        pass


# --------------------------------------------------------------------- worker
class HTTPWorker:
    """One serving process: accept loop, bounded queue, keep-alive handlers.

    *sock* is a bound, listening socket the worker takes ownership of.  The
    worker serves until :meth:`begin_drain` (or SIGTERM via
    :class:`PreForkServer`): the accept loop stops, queued and in-flight
    requests finish (idle kept-alive connections are closed immediately),
    handler threads join, and :meth:`serve_forever` returns.

    *metrics* is the app's :class:`~repro.service.http.metrics.ServiceMetrics`
    (or ``None``): the worker records connections, queue depth, sheds and
    rate-limited requests into it so ``/metrics`` tells the whole admission
    story, not just what reached the WSGI layer.
    """

    def __init__(
        self,
        app: Callable,
        sock: socket.socket,
        *,
        keepalive_seconds: float = DEFAULT_KEEPALIVE_SECONDS,
        max_requests_per_connection: int = DEFAULT_MAX_REQUESTS_PER_CONNECTION,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        handler_threads: int = DEFAULT_HANDLER_THREADS,
        rate_limiter: RateLimiter | None = None,
        metrics=None,
        multiprocess: bool = False,
        verbose: bool = False,
        drain_grace_seconds: float = 30.0,
        poll_seconds: float = 0.2,
    ) -> None:
        self._app = app
        self._sock = sock
        self._host, self._port = sock.getsockname()[:2]
        self._keepalive = float(keepalive_seconds)
        self._max_requests = max(1, int(max_requests_per_connection))
        self._queue_limit = max(1, int(queue_limit))
        self._queue: queue.Queue = queue.Queue(maxsize=self._queue_limit)
        self._handler_count = max(1, int(handler_threads))
        self._rate_limiter = rate_limiter
        self._metrics = metrics
        self._multiprocess = multiprocess
        self._verbose = verbose
        self._drain_grace = float(drain_grace_seconds)
        self._poll = float(poll_seconds)
        self._draining = threading.Event()
        self._done = threading.Event()
        self._conns: dict[socket.socket, _ConnState] = {}
        self._conns_lock = threading.Lock()
        if self._metrics is not None:
            self._metrics.record_queue(0, self._queue_limit)

    @property
    def address(self) -> tuple[str, int]:
        return self._host, self._port

    @property
    def base_url(self) -> str:
        return f"http://{self._host}:{self._port}"

    # ------------------------------------------------------------- lifecycle
    def begin_drain(self) -> None:
        """Stop accepting; finish in-flight work; ``serve_forever`` returns.

        Signal-safe (sets an event), so it is exactly what a SIGTERM handler
        calls.
        """
        self._draining.set()

    def close(self, timeout: float | None = None) -> None:
        """Drain and wait for :meth:`serve_forever` to finish (test helper)."""
        self.begin_drain()
        self._done.wait(self._drain_grace + 5.0 if timeout is None else timeout)

    def serve_forever(self) -> None:
        handlers = [
            threading.Thread(target=self._handler_loop, name=f"http-handler-{i}", daemon=True)
            for i in range(self._handler_count)
        ]
        for thread in handlers:
            thread.start()
        self._sock.settimeout(self._poll)
        try:
            while not self._draining.is_set():
                try:
                    conn, addr = self._sock.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                self._admit(conn, addr)
        finally:
            try:
                self._sock.close()
            except OSError:
                pass
            self._drain(handlers)
            self._done.set()

    # -------------------------------------------------------------- admission
    def _admit(self, conn: socket.socket, addr) -> None:
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        if self._metrics is not None:
            self._metrics.record_connection()
        try:
            self._queue.put_nowait((conn, addr))
        except queue.Full:
            # Explicit backpressure: the caller learns *now* that this worker
            # is saturated, instead of waiting out a kernel backlog.
            if self._metrics is not None:
                self._metrics.record_shed()
            _write_simple_response(
                conn,
                503,
                f"server saturated ({self._queue_limit} connections queued); retry shortly",
                extra_headers=[("Retry-After", str(SHED_RETRY_AFTER))],
            )
            _close_quietly(conn)
        self._record_queue_depth()

    def _record_queue_depth(self) -> None:
        if self._metrics is not None:
            self._metrics.record_queue(self._queue.qsize(), self._queue_limit)

    # ---------------------------------------------------------------- workers
    def _handler_loop(self) -> None:
        while True:
            try:
                conn, addr = self._queue.get(timeout=self._poll)
            except queue.Empty:
                if self._draining.is_set():
                    return
                continue
            self._record_queue_depth()
            state = _ConnState()
            with self._conns_lock:
                self._conns[conn] = state
            try:
                self._handle_connection(conn, addr, state)
            except Exception:  # noqa: BLE001 - one bad connection must not kill the worker
                if self._verbose:
                    traceback.print_exc()
            finally:
                with self._conns_lock:
                    self._conns.pop(conn, None)
                _close_quietly(conn)

    def _drain(self, handlers) -> None:
        """Finish in-flight requests, close parked connections, join handlers."""
        deadline = time.monotonic() + self._drain_grace
        while True:
            with self._conns_lock:
                parked = [
                    conn for conn, state in self._conns.items() if state.phase == "parked"
                ]
                active = len(self._conns) - len(parked)
            for conn in parked:
                _close_quietly(conn)  # wakes the handler waiting in readline
            if (active == 0 and self._queue.empty()) or time.monotonic() > deadline:
                break
            time.sleep(0.05)
        with self._conns_lock:
            leftovers = list(self._conns)
        for conn in leftovers:
            _close_quietly(conn)
        for thread in handlers:
            thread.join(timeout=1.0)

    # ------------------------------------------------------------- connection
    def _handle_connection(self, conn: socket.socket, addr, state: _ConnState) -> None:
        conn.settimeout(self._keepalive)
        fp = conn.makefile("rb", buffering=_BLOCK)
        served = 0
        try:
            while served < self._max_requests:
                # First request: the connection is "receiving" (drain lets it
                # land).  Afterwards it is "parked" (drain closes it).
                state.phase = "receiving" if served == 0 else "parked"
                try:
                    request = self._read_request(fp)
                except (socket.timeout, OSError, ValueError):
                    return  # idle timeout or peer went away between requests
                except _ProtocolError as error:
                    _write_simple_response(conn, error.status, error.message)
                    return
                if request is None:
                    return  # clean EOF: the peer closed between requests
                state.phase = "busy"
                try:
                    served += 1
                    keep_alive = self._serve_request(conn, fp, request, served)
                finally:
                    state.phase = "parked"
                if not keep_alive:
                    return
        finally:
            try:
                fp.close()
            except OSError:
                pass

    def _read_request(self, fp) -> _Request | None:
        line = fp.readline(_MAX_LINE + 1)
        if not line:
            return None
        if len(line) > _MAX_LINE:
            raise _ProtocolError(400, "request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _ProtocolError(400, f"malformed request line {line[:80]!r}")
        method, target, version = parts
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            raw = fp.readline(_MAX_LINE + 1)
            if not raw:
                raise _ProtocolError(400, "truncated request headers")
            if len(raw) > _MAX_LINE:
                raise _ProtocolError(400, "header line too long")
            if raw in (b"\r\n", b"\n"):
                return _Request(method.upper(), target, version, headers)
            text = raw.decode("latin-1").rstrip("\r\n")
            name, sep, value = text.partition(":")
            if not sep or not name.strip():
                raise _ProtocolError(400, f"malformed header line {text[:80]!r}")
            key = name.strip().lower()
            value = value.strip()
            headers[key] = f"{headers[key]},{value}" if key in headers else value
        raise _ProtocolError(400, f"too many request headers (max {_MAX_HEADERS})")

    def _serve_request(self, conn: socket.socket, fp, request: _Request, served: int) -> bool:
        """Run one request through the app; returns whether to keep the connection."""
        headers = request.headers
        path, _, query = request.target.partition("?")

        # Rate limiting happens before any body read or service work.
        if self._rate_limiter is not None and path not in _RATE_LIMIT_EXEMPT:
            token = _bearer_of(headers.get("authorization", ""))
            if token is not None:
                retry_after = self._rate_limiter.admit(token)
                if retry_after is not None:
                    if self._metrics is not None:
                        self._metrics.record_rate_limited()
                    _write_simple_response(
                        conn,
                        429,
                        "rate limit exceeded for this token; retry after the Retry-After delay",
                        extra_headers=[("Retry-After", str(max(1, math.ceil(retry_after))))],
                    )
                    return False  # the unread body makes the framing unusable

        if "100-continue" in headers.get("expect", "").lower():
            try:
                conn.sendall(b"HTTP/1.1 100 Continue\r\n\r\n")
            except OSError:
                return False

        body = self._body_reader(fp, headers)
        environ = self._environ(request, path, query, body, conn)

        captured: dict = {}
        writes: list[bytes] = []

        def start_response(status: str, response_headers, exc_info=None):
            if exc_info is not None and captured.get("sent"):
                raise exc_info[1].with_traceback(exc_info[2])
            captured["status"] = status
            captured["headers"] = list(response_headers)
            return writes.append

        try:
            result = self._app(environ, start_response)
        except Exception:  # noqa: BLE001 - the app answers 500s itself; this is a server bug
            if self._verbose:
                traceback.print_exc()
            _write_simple_response(conn, 500, "internal server error")
            return False

        # Decide keep-alive: protocol defaults, explicit Connection tokens,
        # the per-connection request cap, drain mode, and whether the request
        # body left the stream positioned at the next request.
        connection_tokens = [
            token.strip().lower() for token in headers.get("connection", "").split(",")
        ]
        keep_alive = request.version != "HTTP/1.0" or "keep-alive" in connection_tokens
        if "close" in connection_tokens:
            keep_alive = False
        if served >= self._max_requests or self._draining.is_set():
            keep_alive = False
        if keep_alive and not body.complete:
            keep_alive = body.drain(DRAIN_CAP_BYTES)

        try:
            sent = self._write_response(
                conn, request, captured, writes, result, keep_alive=keep_alive
            )
        finally:
            close = getattr(result, "close", None)
            if close is not None:
                close()
        if self._verbose:
            status = str(captured.get("status", "?")).split(" ", 1)[0]
            print(
                f'{environ.get("REMOTE_ADDR", "-")} "{request.method} {request.target}" {status}',
                file=sys.stderr,
            )
        return keep_alive and sent

    def _body_reader(self, fp, headers: Mapping[str, str]):
        if "chunked" in headers.get("transfer-encoding", "").lower():
            return _ChunkedBody(fp)
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            raise _ProtocolError(400, "malformed Content-Length") from None
        if length > 0:
            return _KnownLengthBody(fp, length)
        return _EmptyBody()

    def _environ(self, request: _Request, path: str, query: str, body, conn) -> dict:
        try:
            peer = conn.getpeername()[0]
        except OSError:
            peer = ""
        environ = {
            "REQUEST_METHOD": request.method,
            "PATH_INFO": unquote(path),
            "QUERY_STRING": query,
            "SCRIPT_NAME": "",
            "SERVER_NAME": self._host,
            "SERVER_PORT": str(self._port),
            "SERVER_PROTOCOL": request.version,
            "REMOTE_ADDR": peer,
            "wsgi.version": (1, 0),
            "wsgi.url_scheme": "http",
            "wsgi.input": body,
            # The server decoded the transfer framing (hop-by-hop, PEP 3333):
            # the app streams wsgi.input to EOF instead of re-parsing framing.
            "wsgi.input_terminated": True,
            "wsgi.errors": sys.stderr,
            "wsgi.multithread": True,
            "wsgi.multiprocess": self._multiprocess,
            "wsgi.run_once": False,
        }
        for name, value in request.headers.items():
            if name == "content-type":
                environ["CONTENT_TYPE"] = value
            elif name == "content-length":
                environ["CONTENT_LENGTH"] = value
            elif name in ("transfer-encoding", "connection", "keep-alive", "expect"):
                continue  # hop-by-hop: the server owns these
            else:
                environ["HTTP_" + name.upper().replace("-", "_")] = value
        return environ

    def _write_response(
        self, conn: socket.socket, request: _Request, captured: dict, writes, result, *, keep_alive: bool
    ) -> bool:
        status = captured.get("status")
        if status is None:
            _write_simple_response(conn, 500, "application returned without a response")
            return False
        code = int(str(status).split(" ", 1)[0])
        headers: list[tuple[str, str]] = []
        content_length: int | None = None
        for name, value in captured.get("headers", []):
            lname = name.lower()
            if lname in ("connection", "transfer-encoding", "keep-alive"):
                continue  # framing is the server's, not the app's
            if lname == "content-length":
                content_length = int(value)
            headers.append((name, value))

        bodiless = request.method == "HEAD" or code < 200 or code in (204, 304)
        chunked = False
        if not bodiless and content_length is None:
            if keep_alive:
                chunked = True
                headers.append(("Transfer-Encoding", "chunked"))
            # else: close-delimited body (HTTP/1.0 semantics)
        headers.append(("Connection", "keep-alive" if keep_alive else "close"))

        head = [f"HTTP/1.1 {status}"]
        head += [f"{name}: {value}" for name, value in headers]
        try:
            conn.sendall(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
            if not bodiless:
                for block in writes:
                    self._send_block(conn, block, chunked)
                for block in result:
                    self._send_block(conn, block, chunked)
                if chunked:
                    conn.sendall(b"0\r\n\r\n")
        except OSError:
            return False
        return True

    @staticmethod
    def _send_block(conn: socket.socket, block: bytes, chunked: bool) -> None:
        if not block:
            return
        if chunked:
            conn.sendall(b"%x\r\n" % len(block) + block + b"\r\n")
        else:
            conn.sendall(block)


def _bearer_of(header: str) -> str | None:
    scheme, _, credential = header.partition(" ")
    if scheme.lower() != "bearer" or not credential.strip():
        return None
    return credential.strip()


# ------------------------------------------------------------------- pre-fork
def _bind_socket(host: str, port: int, *, reuseport: bool) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    if reuseport:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    return sock


class PreForkServer:
    """N worker processes sharing one port; the parent only supervises.

    The parent binds first (resolving an ephemeral port), then forks.  With
    ``SO_REUSEPORT`` each child binds its own listening socket on the shared
    port and the kernel spreads connections across them (the parent's socket
    never listens, so it receives none); without it the children inherit and
    ``accept`` on the parent's listening socket.  Either way every worker is
    a full :class:`HTTPWorker` — keep-alive, bounded queue, rate limiting —
    over a fork-copy of the same WSGI app, whose vault state stays coherent
    across processes through the advisory file locks and stat-gated reloads
    the service already had.

    Lifecycle: :meth:`serve_forever` installs a SIGTERM handler that drains —
    children stop accepting, finish in-flight requests and exit; the parent
    reaps them and returns.  A worker that dies any other way is respawned.

    ``/metrics`` is per process: each worker answers with its own counters
    stamped ``host:pid`` (see docs/observability.md for the scrape model).
    """

    def __init__(
        self,
        app: Callable,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        processes: int = 1,
        **worker_options,
    ) -> None:
        if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only module
            raise RuntimeError("PreForkServer requires os.fork (POSIX)")
        self._processes = max(1, int(processes))
        self._reuseport = hasattr(socket, "SO_REUSEPORT")
        if self._reuseport:
            try:
                self._sock = _bind_socket(host, port, reuseport=True)
            except OSError:
                self._reuseport = False
        if not self._reuseport:
            self._sock = _bind_socket(host, port, reuseport=False)
            self._sock.listen(LISTEN_BACKLOG)
        self._host, self._port = self._sock.getsockname()[:2]
        self._app = app
        self._worker_options = worker_options
        self._pids: dict[int, int] = {}  # pid -> slot
        self._draining = False
        self._signalled = False
        self._started = False

    @property
    def address(self) -> tuple[str, int]:
        return self._host, self._port

    @property
    def base_url(self) -> str:
        return f"http://{self._host}:{self._port}"

    @property
    def processes(self) -> int:
        return self._processes

    @property
    def reuseport(self) -> bool:
        return self._reuseport

    @property
    def worker_pids(self) -> tuple[int, ...]:
        return tuple(sorted(self._pids))

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Fork the workers (idempotent).  The port is accepting on return —
        every worker's listening socket is created in the parent *before* the
        fork, so a caller may advertise the URL the moment this returns."""
        if self._started:
            return
        self._started = True
        for slot in range(self._processes):
            self._spawn(slot)

    def begin_drain(self) -> None:
        self._draining = True

    def serve_forever(self, *, poll_seconds: float = 0.2) -> None:
        previous = signal.signal(signal.SIGTERM, lambda *_: self.begin_drain())
        self.start()
        try:
            while self._pids:
                if self._draining and not self._signalled:
                    self._terminate_children()
                self._reap(respawn=not self._draining)
                time.sleep(poll_seconds)
        finally:
            signal.signal(signal.SIGTERM, previous)
            self.close()

    def close(self) -> None:
        """Terminate and reap any remaining children; release the port."""
        self._draining = True
        if self._pids:
            self._terminate_children()
            deadline = time.monotonic() + 10.0
            while self._pids and time.monotonic() < deadline:
                self._reap(respawn=False)
                time.sleep(0.05)
            for pid in list(self._pids):  # drain grace expired: force
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass
            while self._pids:
                self._reap(respawn=False, block=True)
        try:
            self._sock.close()
        except OSError:
            pass

    # -------------------------------------------------------------- plumbing
    def _terminate_children(self) -> None:
        self._signalled = True
        for pid in list(self._pids):
            try:
                os.kill(pid, signal.SIGTERM)
            except OSError:
                pass

    def _reap(self, *, respawn: bool, block: bool = False) -> None:
        while self._pids:
            try:
                pid, _status = os.waitpid(-1, 0 if block else os.WNOHANG)
            except ChildProcessError:
                self._pids.clear()
                return
            if pid == 0:
                return
            slot = self._pids.pop(pid, None)
            if slot is not None and respawn:
                self._spawn(slot)
            if block:
                return

    def _spawn(self, slot: int) -> None:
        if self._reuseport:
            # Created in the parent before the fork so the port never has a
            # listener gap: the child's socket is already accepting when
            # start() returns (the parent closes its copy right after).
            child_sock = _bind_socket(self._host, self._port, reuseport=True)
            child_sock.listen(LISTEN_BACKLOG)
        else:
            child_sock = self._sock  # inherited, already listening
        pid = os.fork()
        if pid:
            self._pids[pid] = slot
            if self._reuseport:
                child_sock.close()
            return
        # Child: never unwind into the parent's stack.
        code = 1
        try:
            code = self._child_main(child_sock)
        except BaseException:  # noqa: BLE001
            traceback.print_exc()
        finally:
            os._exit(code)

    def _child_main(self, sock: socket.socket) -> int:
        if self._reuseport:
            try:
                self._sock.close()  # the parent's bound-but-silent reservation
            except OSError:
                pass
        worker = HTTPWorker(
            self._app, sock, multiprocess=self._processes > 1, **self._worker_options
        )
        signal.signal(signal.SIGTERM, lambda *_: worker.begin_drain())
        signal.signal(signal.SIGINT, signal.SIG_IGN)  # the parent drives shutdown
        worker.serve_forever()
        return 0


# ------------------------------------------------------------------- helpers
def serve_worker_in_thread(
    app: Callable, host: str = "127.0.0.1", port: int = 0, **worker_options
) -> tuple[HTTPWorker, str]:
    """One keep-alive worker on a daemon thread; returns ``(worker, base_url)``.

    The in-process twin of a pre-fork child, for tests and benchmarks: full
    HTTP/1.1 keep-alive, queue, rate-limit and drain semantics without
    forking.  Stop with ``worker.close()``.
    """
    sock = _bind_socket(host, port, reuseport=False)
    sock.listen(LISTEN_BACKLOG)
    worker = HTTPWorker(app, sock, **worker_options)
    thread = threading.Thread(target=worker.serve_forever, daemon=True)
    thread.start()
    return worker, worker.base_url
