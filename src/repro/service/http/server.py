"""A threading ``wsgiref`` server for the protection app — stdlib only.

``wsgiref.simple_server`` is single-threaded and chatty; this module gives
the frontend what an operator actually runs: one thread per request (uploads
are I/O-bound spools, detects fan out to the shard runner), quiet logs, and
an ephemeral-port mode for tests and the CI smoke job.  One request per
connection (no keep-alive) — exactly ``wsgiref``'s model — which the client
honours by opening a fresh connection per call.

This is the **legacy** server: ``repro serve`` now fronts the app with the
pre-fork keep-alive layer in :mod:`repro.service.http.prefork`; this module
stays for embedders and as the threading baseline the load benchmark
(``benchmarks/bench_load.py``) measures against.  Production deployments can
also mount :class:`~repro.service.http.app.ProtectionApp` in any WSGI
container; nothing here is load-bearing beyond serving.

Request *logging* is the app's job, not the server's: keep the handler
quiet and run ``repro serve --log-json`` for structured per-request records
stamped with trace/span ids (``docs/observability.md``) — the two verbosity
mechanisms are independent.
"""

from __future__ import annotations

import threading
from socketserver import ThreadingMixIn
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

__all__ = ["ThreadingWSGIServer", "QuietWSGIRequestHandler", "make_http_server", "serve_in_thread"]


class ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """One thread per request; daemon threads so shutdown never hangs."""

    daemon_threads = True
    # Concurrent uploads otherwise queue behind the default backlog of 5.
    request_queue_size = 32


class QuietWSGIRequestHandler(WSGIRequestHandler):
    """Request logging off by default — the CLI owns the operator's stdout."""

    verbose = False

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        if self.verbose:
            super().log_message(format, *args)


class VerboseWSGIRequestHandler(QuietWSGIRequestHandler):
    verbose = True


def make_http_server(
    app, host: str = "127.0.0.1", port: int = 0, *, verbose: bool = False
) -> WSGIServer:
    """A ready-to-serve threading server bound to *host*:*port* (0 = ephemeral).

    The caller owns the lifecycle: ``server.serve_forever()`` to block,
    ``server.shutdown()`` + ``server.server_close()`` to stop.  The bound
    port is ``server.server_address[1]``.
    """
    handler = VerboseWSGIRequestHandler if verbose else QuietWSGIRequestHandler
    return make_server(host, port, app, server_class=ThreadingWSGIServer, handler_class=handler)


def serve_in_thread(app, host: str = "127.0.0.1", port: int = 0):
    """Start a server on a daemon thread; returns ``(server, base_url)``.

    The test-suite (and any embedder) helper: the server is already accepting
    when this returns.  Stop with ``server.shutdown(); server.server_close()``.
    """
    server = make_http_server(app, host, port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    bound_host, bound_port = server.server_address[:2]
    return server, f"http://{bound_host}:{bound_port}"
