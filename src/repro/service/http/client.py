"""Stdlib HTTP client for the protection frontend (what ``--url`` drives).

Uploads stream: the CSV is fed to :mod:`http.client` as a block generator,
which transfer-encodes it chunked — constant memory on the wire no matter
the file size.  The protect download streams too: the response body is
copied to the output path in blocks and the JSON report is read from the
``X-Repro-Report`` header, so a protect round trip holds at most one block
of either CSV in memory.

One connection per request (the ``wsgiref`` server speaks one request per
connection); errors surface as :class:`HTTPServiceError` carrying the status
and the server's ``{"error": ...}`` message.
"""

from __future__ import annotations

import http.client
import json
import os
from typing import Iterator, Mapping
from urllib.parse import urlencode, urlsplit

from repro.service.http.app import REPORT_HEADER, TRACE_RESPONSE_HEADER
from repro.service.streaming import SPOOL_CHUNK_BYTES
from repro.telemetry.trace import (
    PARENT_HEADER,
    TRACE_HEADER,
    current_span_id as _current_span_id,
    current_tracer as _current_tracer,
    span as _stage_span,
)

__all__ = ["HTTPServiceError", "ServiceClient"]

DEFAULT_TIMEOUT = 600.0


class HTTPServiceError(RuntimeError):
    """A non-2xx response from the protection frontend."""

    def __init__(self, status: int, message: str, payload: dict | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.payload = payload or {}


def _iter_file(path: str) -> Iterator[bytes]:
    with open(path, "rb") as handle:
        while True:
            block = handle.read(SPOOL_CHUNK_BYTES)
            if not block:
                return
            yield block


class ServiceClient:
    """A thin, connection-per-request client bound to one base URL + token."""

    def __init__(
        self, base_url: str, token: str | None = None, *, timeout: float = DEFAULT_TIMEOUT
    ) -> None:
        parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {parts.scheme!r} (stdlib frontend is http)")
        if not parts.hostname:
            raise ValueError(f"no host in service url {base_url!r}")
        self._host = parts.hostname
        self._port = parts.port or 80
        self._prefix = parts.path.rstrip("/")
        self._token = token
        self._timeout = timeout

    @property
    def base_url(self) -> str:
        return f"http://{self._host}:{self._port}{self._prefix}"

    # --------------------------------------------------------------------- API
    def health(self) -> dict:
        return self._json_request("GET", "/healthz", authenticated=False)

    def status(self, tenant: str | None = None) -> dict:
        path = f"/tenants/{tenant}/status" if tenant else "/status"
        return self._json_request("GET", path)

    def register_tenant(
        self, tenant: str, *, admin_token: str | None = None, **params
    ) -> dict:
        """Register *tenant* and return the record summary incl. its bearer token."""
        body = json.dumps(params).encode("utf-8") if params else b""
        return self._json_request(
            "POST",
            f"/tenants/{tenant}",
            body=body,
            token=admin_token or self._token,
            headers={"Content-Type": "application/json"},
        )

    def protect(
        self,
        tenant: str,
        dataset: str,
        input_csv: str,
        output_csv: str,
        *,
        chunk_size: int | None = None,
        workers: int | None = None,
        runner: str | None = None,
    ) -> dict:
        """Stream *input_csv* up, the protected CSV down; return the report.

        *workers*/*runner* pick where the server runs protect's pass 2
        (``thread`` or ``process``; the remote runner is detect-only).
        """
        query_params = {"chunk_size": chunk_size, "workers": workers, "runner": runner}
        query = {name: value for name, value in query_params.items() if value is not None} or None
        with _stage_span("http.client.protect"):
            status, headers, response = self._request(
                "POST",
                f"/tenants/{tenant}/datasets/{dataset}/protect",
                query=query,
                body=_iter_file(input_csv),
            )
        self._ingest_trace(headers)
        try:
            if status != 200:
                raise self._error(status, response.read())
            report_json = headers.get(REPORT_HEADER)
            if not report_json:
                raise HTTPServiceError(status, f"response lacks the {REPORT_HEADER} header")
            with open(output_csv, "wb") as handle:
                while True:
                    block = response.read(SPOOL_CHUNK_BYTES)
                    if not block:
                        break
                    handle.write(block)
            report = json.loads(report_json)
        finally:
            response.close()
        report["output"] = os.path.abspath(output_csv)
        return report

    def detect(
        self,
        tenant: str,
        dataset: str,
        suspect_csv: str,
        *,
        workers: int | None = None,
        runner: str | None = None,
        max_loss: float | None = None,
        expected_mark: str | None = None,
        chunk_size: int | None = None,
    ) -> dict:
        query = {
            "workers": workers,
            "runner": runner,
            "max_loss": max_loss,
            "expected_mark": expected_mark,
            "chunk_size": chunk_size,
        }
        with _stage_span("http.client.detect"):
            payload, headers = self._json_exchange(
                "POST",
                f"/tenants/{tenant}/datasets/{dataset}/detect",
                query={name: value for name, value in query.items() if value is not None},
                body=_iter_file(suspect_csv),
            )
        self._ingest_trace(headers)
        return payload

    def dispute(self, tenant: str, dataset: str, disputed_csv: str) -> dict:
        return self._json_request(
            "POST",
            f"/tenants/{tenant}/datasets/{dataset}/dispute",
            body=_iter_file(disputed_csv),
        )

    def metrics(self) -> dict:
        """This server's ``/metrics`` counters (no auth, like :meth:`health`)."""
        return self._json_request("GET", "/metrics", authenticated=False)

    def metrics_text(self) -> str:
        """The ``/metrics`` document in Prometheus text exposition format."""
        status, _, response = self._request(
            "GET", "/metrics", query={"format": "prometheus"}, authenticated=False
        )
        try:
            raw = response.read()
        finally:
            response.close()
        if status != 200:
            raise self._error(status, raw)
        return raw.decode("utf-8")

    def detect_votes(self, payload: dict, *, headers: Mapping[str, str] | None = None) -> dict:
        """POST one raw chunk to ``/internal/detect-votes`` — the fleet hop.

        *payload* is the :mod:`repro.service.wire` request document (spec +
        metadata + mark_length + header/lines); the response carries the
        chunk's row count and serialized ``DetectionVotes``.  This is what
        :class:`~repro.service.runners.RemoteRunner` calls per chunk; the
        token presented is the worker's admin/fleet token.  *headers* lets
        the coordinator stamp trace-propagation headers on the hop.
        """
        request_headers = {"Content-Type": "application/json"}
        if headers:
            request_headers.update(headers)
        return self._json_request(
            "POST",
            "/internal/detect-votes",
            body=json.dumps(payload).encode("utf-8"),
            headers=request_headers,
        )

    # ----------------------------------------------------------------- plumbing
    def _request(
        self,
        method: str,
        path: str,
        *,
        query: Mapping[str, object] | None = None,
        body=None,
        token: str | None = None,
        headers: Mapping[str, str] | None = None,
        authenticated: bool = True,
    ):
        target = self._prefix + path
        if query:
            target += "?" + urlencode(query)
        request_headers = dict(headers or {})
        tracer = _current_tracer()
        if tracer is not None and TRACE_HEADER not in request_headers:
            # Propagate the ambient trace so the server's spans join ours.
            request_headers[TRACE_HEADER] = tracer.trace_id
            parent = _current_span_id()
            if parent:
                request_headers[PARENT_HEADER] = parent
        bearer = token if token is not None else self._token
        if authenticated and bearer:
            request_headers["Authorization"] = f"Bearer {bearer}"
        connection = http.client.HTTPConnection(self._host, self._port, timeout=self._timeout)
        try:
            try:
                connection.request(method, target, body=body, headers=request_headers)
            except (BrokenPipeError, ConnectionResetError):
                # The server answered (e.g. 401) and closed before draining
                # our streamed upload; the response is usually still readable.
                pass
            response = connection.getresponse()
        except BaseException:
            connection.close()
            raise
        # The response object owns the connection from here; closing the
        # response closes the socket (one request per connection anyway).
        return response.status, dict(response.getheaders()), response

    def _json_request(self, method: str, path: str, **kwargs) -> dict:
        payload, _ = self._json_exchange(method, path, **kwargs)
        return payload

    def _json_exchange(self, method: str, path: str, **kwargs) -> tuple[dict, dict]:
        """Like :meth:`_json_request` but also returns the response headers."""
        status, headers, response = self._request(method, path, **kwargs)
        try:
            raw = response.read()
        finally:
            response.close()
        if status != 200:
            raise self._error(status, raw)
        try:
            return json.loads(raw), headers
        except json.JSONDecodeError:
            raise HTTPServiceError(status, f"non-JSON response body: {raw[:200]!r}") from None

    @staticmethod
    def _ingest_trace(headers: Mapping[str, str]) -> None:
        """Fold server-side spans from the trace response header into our trace.

        The server answers a traced request with its own spans serialized in
        the :data:`TRACE_RESPONSE_HEADER` header (the response *body* stays
        byte-identical with telemetry on or off).  No ambient tracer or no
        header means nothing to do; a malformed header is ignored — telemetry
        must never fail a successful request.
        """
        tracer = _current_tracer()
        if tracer is None:
            return
        raw = headers.get(TRACE_RESPONSE_HEADER)
        if not raw:
            return
        try:
            document = json.loads(raw)
            spans = document.get("spans", ())
        except (json.JSONDecodeError, AttributeError):
            return
        if isinstance(spans, list):
            tracer.ingest(spans)

    @staticmethod
    def _error(status: int, raw: bytes) -> HTTPServiceError:
        try:
            payload = json.loads(raw)
            message = payload.get("error", raw.decode("utf-8", "replace"))
        except (json.JSONDecodeError, AttributeError):
            payload, message = {}, raw.decode("utf-8", "replace")
        return HTTPServiceError(status, message, payload if isinstance(payload, dict) else {})
