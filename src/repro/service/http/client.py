"""Stdlib HTTP client for the protection frontend (what ``--url`` drives).

Uploads stream: the CSV is fed to :mod:`http.client` as a block generator,
which transfer-encodes it chunked — constant memory on the wire no matter
the file size.  The protect download streams too: the response body is
copied to the output path in blocks and the JSON report is read from the
``X-Repro-Report`` header, so a protect round trip holds at most one block
of either CSV in memory.

Connections are **kept alive and pooled**: against the pre-fork server
(:mod:`repro.service.http.prefork`) every call reuses an idle connection
from a small thread-safe pool, so a fleet detect's hundreds of chunk POSTs
pay one TCP handshake, not one each.  A connection that went stale while
idle (the server's keep-alive timeout, a restart) is retried transparently
exactly once on a fresh connection — safe because a stale close means the
server never read the request.  Against the legacy one-request-per-
connection ``wsgiref`` server the responses say ``Connection: close``, the
pool never retains anything, and behaviour degrades to exactly the old
connection-per-request model.  ``connections_opened`` counts real TCP
connects, which is what the keep-alive tests assert on.

Errors surface as :class:`HTTPServiceError` carrying the status and the
server's ``{"error": ...}`` message.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
from typing import Iterator, Mapping
from urllib.parse import urlencode, urlsplit

from repro.service.http.app import REPORT_HEADER, TRACE_RESPONSE_HEADER
from repro.service.streaming import SPOOL_CHUNK_BYTES
from repro.telemetry.trace import (
    PARENT_HEADER,
    TRACE_HEADER,
    current_span_id as _current_span_id,
    current_tracer as _current_tracer,
    span as _stage_span,
)

__all__ = ["HTTPServiceError", "ServiceClient"]

DEFAULT_TIMEOUT = 600.0

#: Idle connections retained per client; more concurrent callers than this
#: simply open (and afterwards close) extra connections.
MAX_IDLE_CONNECTIONS = 8

#: What a reused-but-stale connection raises: the server closed it while it
#: sat idle in the pool, which also guarantees this request was never
#: processed — the one transparent retry is therefore safe for any verb.
_STALE_ERRORS = (
    http.client.BadStatusLine,  # includes RemoteDisconnected
    ConnectionResetError,
    ConnectionAbortedError,
    BrokenPipeError,
)


class HTTPServiceError(RuntimeError):
    """A non-2xx response from the protection frontend."""

    def __init__(self, status: int, message: str, payload: dict | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.payload = payload or {}


def _iter_file(path: str) -> Iterator[bytes]:
    with open(path, "rb") as handle:
        while True:
            block = handle.read(SPOOL_CHUNK_BYTES)
            if not block:
                return
            yield block


class _PooledResponse:
    """An ``HTTPResponse`` whose ``close()`` recycles the connection.

    The connection goes back to the client's idle pool only when the
    response was read to completion **and** the server did not announce
    ``Connection: close`` — ``will_close`` is how :mod:`http.client` records
    that, so legacy ``wsgiref`` responses (HTTP/1.0, always closing) recycle
    nothing and keep the old semantics automatically.
    """

    def __init__(self, client: "ServiceClient", connection, response) -> None:
        self._client = client
        self._connection = connection
        self._response = response

    def read(self, amt: int | None = None) -> bytes:
        return self._response.read(amt)

    def close(self) -> None:
        connection, self._connection = self._connection, None
        if connection is None:
            return
        try:
            reusable = self._response.isclosed() and not getattr(
                self._response, "will_close", True
            )
        except Exception:  # noqa: BLE001 - never let pooling break a request
            reusable = False
        if reusable:
            self._client._checkin(connection)
        else:
            connection.close()

    def __getattr__(self, name: str):
        return getattr(self._response, name)


class ServiceClient:
    """A thin, keep-alive client bound to one base URL + token.

    Thread-safe: the :class:`~repro.service.runners.RemoteRunner` posts
    chunks through one client from many threads, each call borrowing an
    idle pooled connection (or opening its own) for the request's duration.
    Pass ``keepalive=False`` for the old connection-per-request behaviour.
    """

    def __init__(
        self,
        base_url: str,
        token: str | None = None,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        keepalive: bool = True,
    ) -> None:
        parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {parts.scheme!r} (stdlib frontend is http)")
        if not parts.hostname:
            raise ValueError(f"no host in service url {base_url!r}")
        self._host = parts.hostname
        self._port = parts.port or 80
        self._prefix = parts.path.rstrip("/")
        self._token = token
        self._timeout = timeout
        self._keepalive = keepalive
        self._pool_lock = threading.Lock()
        self._idle: list[http.client.HTTPConnection] = []
        self._connections_opened = 0
        self._closed = False

    @property
    def base_url(self) -> str:
        return f"http://{self._host}:{self._port}{self._prefix}"

    @property
    def connections_opened(self) -> int:
        """TCP connections this client has opened — the keep-alive witness.

        Many requests over few connections is the whole point; tests assert
        this stays far below the request count against a keep-alive server.
        """
        with self._pool_lock:
            return self._connections_opened

    def close(self) -> None:
        """Close pooled idle connections (in-flight ones close via their response)."""
        with self._pool_lock:
            idle, self._idle = self._idle, []
            self._closed = True
        for connection in idle:
            connection.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------------- API
    def health(self) -> dict:
        return self._json_request("GET", "/healthz", authenticated=False)

    def status(self, tenant: str | None = None) -> dict:
        path = f"/tenants/{tenant}/status" if tenant else "/status"
        return self._json_request("GET", path)

    def register_tenant(
        self, tenant: str, *, admin_token: str | None = None, **params
    ) -> dict:
        """Register *tenant* and return the record summary incl. its bearer token."""
        body = json.dumps(params).encode("utf-8") if params else b""
        return self._json_request(
            "POST",
            f"/tenants/{tenant}",
            body=body,
            token=admin_token or self._token,
            headers={"Content-Type": "application/json"},
        )

    def protect(
        self,
        tenant: str,
        dataset: str,
        input_csv: str,
        output_csv: str,
        *,
        chunk_size: int | None = None,
        workers: int | None = None,
        runner: str | None = None,
    ) -> dict:
        """Stream *input_csv* up, the protected CSV down; return the report.

        *workers*/*runner* pick where the server runs protect's pass 2
        (``thread`` or ``process``; the remote runner is detect-only).
        """
        query_params = {"chunk_size": chunk_size, "workers": workers, "runner": runner}
        query = {name: value for name, value in query_params.items() if value is not None} or None
        with _stage_span("http.client.protect"):
            status, headers, response = self._request(
                "POST",
                f"/tenants/{tenant}/datasets/{dataset}/protect",
                query=query,
                body=lambda: _iter_file(input_csv),
            )
        self._ingest_trace(headers)
        try:
            if status != 200:
                raise self._error(status, response.read())
            report_json = headers.get(REPORT_HEADER)
            if not report_json:
                raise HTTPServiceError(status, f"response lacks the {REPORT_HEADER} header")
            with open(output_csv, "wb") as handle:
                while True:
                    block = response.read(SPOOL_CHUNK_BYTES)
                    if not block:
                        break
                    handle.write(block)
            report = json.loads(report_json)
        finally:
            response.close()
        report["output"] = os.path.abspath(output_csv)
        return report

    def detect(
        self,
        tenant: str,
        dataset: str,
        suspect_csv: str,
        *,
        workers: int | None = None,
        runner: str | None = None,
        max_loss: float | None = None,
        expected_mark: str | None = None,
        chunk_size: int | None = None,
        code: str | None = None,
    ) -> dict:
        query = {
            "workers": workers,
            "runner": runner,
            "max_loss": max_loss,
            "expected_mark": expected_mark,
            "chunk_size": chunk_size,
            "code": code,
        }
        with _stage_span("http.client.detect"):
            payload, headers = self._json_exchange(
                "POST",
                f"/tenants/{tenant}/datasets/{dataset}/detect",
                query={name: value for name, value in query.items() if value is not None},
                body=lambda: _iter_file(suspect_csv),
            )
        self._ingest_trace(headers)
        return payload

    def dispute(self, tenant: str, dataset: str, disputed_csv: str) -> dict:
        return self._json_request(
            "POST",
            f"/tenants/{tenant}/datasets/{dataset}/dispute",
            body=lambda: _iter_file(disputed_csv),
        )

    def metrics(self) -> dict:
        """This server's ``/metrics`` counters (no auth, like :meth:`health`)."""
        return self._json_request("GET", "/metrics", authenticated=False)

    def metrics_text(self) -> str:
        """The ``/metrics`` document in Prometheus text exposition format."""
        status, _, response = self._request(
            "GET", "/metrics", query={"format": "prometheus"}, authenticated=False
        )
        try:
            raw = response.read()
        finally:
            response.close()
        if status != 200:
            raise self._error(status, raw)
        return raw.decode("utf-8")

    def detect_votes(self, payload: dict, *, headers: Mapping[str, str] | None = None) -> dict:
        """POST one raw chunk to ``/internal/detect-votes`` — the fleet hop.

        *payload* is the :mod:`repro.service.wire` request document (spec +
        metadata + mark_length + header/lines); the response carries the
        chunk's row count and serialized ``DetectionVotes``.  This is what
        :class:`~repro.service.runners.RemoteRunner` calls per chunk; the
        token presented is the worker's admin/fleet token.  *headers* lets
        the coordinator stamp trace-propagation headers on the hop.
        """
        request_headers = {"Content-Type": "application/json"}
        if headers:
            request_headers.update(headers)
        return self._json_request(
            "POST",
            "/internal/detect-votes",
            body=json.dumps(payload).encode("utf-8"),
            headers=request_headers,
        )

    # ----------------------------------------------------------------- plumbing
    def _request(
        self,
        method: str,
        path: str,
        *,
        query: Mapping[str, object] | None = None,
        body=None,
        token: str | None = None,
        headers: Mapping[str, str] | None = None,
        authenticated: bool = True,
    ):
        """One request over a pooled connection; returns ``(status, headers, response)``.

        *body* may be ``None``, bytes, an iterator, or a **callable returning
        an iterator** — the callable shape is what streamed uploads use, so
        the body can be produced afresh if the first attempt hits a stale
        pooled connection.  A bare iterator is sent as-is but never retried
        (it may be partially consumed).  Closing the returned response gives
        the connection back to the pool when it is reusable.
        """
        target = self._prefix + path
        if query:
            target += "?" + urlencode(query)
        request_headers = dict(headers or {})
        tracer = _current_tracer()
        if tracer is not None and TRACE_HEADER not in request_headers:
            # Propagate the ambient trace so the server's spans join ours.
            request_headers[TRACE_HEADER] = tracer.trace_id
            parent = _current_span_id()
            if parent:
                request_headers[PARENT_HEADER] = parent
        bearer = token if token is not None else self._token
        if authenticated and bearer:
            request_headers["Authorization"] = f"Bearer {bearer}"

        replayable = body is None or isinstance(body, (bytes, bytearray)) or callable(body)
        retried = False
        while True:
            connection, reused = self._acquire()
            try:
                payload = body() if callable(body) else body
                try:
                    connection.request(method, target, body=payload, headers=request_headers)
                except (BrokenPipeError, ConnectionResetError):
                    # The server answered (e.g. 401) and closed before
                    # draining our streamed upload; the response is usually
                    # still readable — and if the connection was merely
                    # stale, getresponse raises and the retry path runs.
                    pass
                response = connection.getresponse()
            except _STALE_ERRORS:
                connection.close()
                if reused and replayable and not retried:
                    # A pooled connection the server closed while it sat
                    # idle: the request was never processed, retry it once
                    # on a fresh connection.
                    retried = True
                    continue
                raise
            except BaseException:
                connection.close()
                raise
            return (
                response.status,
                dict(response.getheaders()),
                _PooledResponse(self, connection, response),
            )

    def _acquire(self) -> tuple[http.client.HTTPConnection, bool]:
        if self._keepalive:
            with self._pool_lock:
                if self._idle:
                    return self._idle.pop(), True
        with self._pool_lock:
            self._connections_opened += 1
        return http.client.HTTPConnection(self._host, self._port, timeout=self._timeout), False

    def _checkin(self, connection: http.client.HTTPConnection) -> None:
        with self._pool_lock:
            if self._keepalive and not self._closed and len(self._idle) < MAX_IDLE_CONNECTIONS:
                self._idle.append(connection)
                return
        connection.close()

    def _json_request(self, method: str, path: str, **kwargs) -> dict:
        payload, _ = self._json_exchange(method, path, **kwargs)
        return payload

    def _json_exchange(self, method: str, path: str, **kwargs) -> tuple[dict, dict]:
        """Like :meth:`_json_request` but also returns the response headers."""
        status, headers, response = self._request(method, path, **kwargs)
        try:
            raw = response.read()
        finally:
            response.close()
        if status != 200:
            raise self._error(status, raw)
        try:
            return json.loads(raw), headers
        except json.JSONDecodeError:
            raise HTTPServiceError(status, f"non-JSON response body: {raw[:200]!r}") from None

    @staticmethod
    def _ingest_trace(headers: Mapping[str, str]) -> None:
        """Fold server-side spans from the trace response header into our trace.

        The server answers a traced request with its own spans serialized in
        the :data:`TRACE_RESPONSE_HEADER` header (the response *body* stays
        byte-identical with telemetry on or off).  No ambient tracer or no
        header means nothing to do; a malformed header is ignored — telemetry
        must never fail a successful request.
        """
        tracer = _current_tracer()
        if tracer is None:
            return
        raw = headers.get(TRACE_RESPONSE_HEADER)
        if not raw:
            return
        try:
            document = json.loads(raw)
            spans = document.get("spans", ())
        except (json.JSONDecodeError, AttributeError):
            return
        if isinstance(spans, list):
            tracer.ingest(spans)

    @staticmethod
    def _error(status: int, raw: bytes) -> HTTPServiceError:
        try:
            payload = json.loads(raw)
            message = payload.get("error", raw.decode("utf-8", "replace"))
        except (json.JSONDecodeError, AttributeError):
            payload, message = {}, raw.decode("utf-8", "replace")
        return HTTPServiceError(status, message, payload if isinstance(payload, dict) else {})
