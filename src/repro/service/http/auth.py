"""Bearer-token authentication for the HTTP frontend, backed by the vault.

The tenant-auth shape follows the certification-service pattern (cf. OIDC²:
the caller proves identity with a bearer credential, the service holds only
a verifier): each tenant's token is issued once by
:meth:`~repro.service.vault.KeyVault.issue_token` and presented as
``Authorization: Bearer <token>``; the vault stores nothing but the SHA-256
digest, compared in constant time.

Two failure modes, deliberately distinct:

* **401** — no usable credential (header missing or not a bearer scheme);
  the client should obtain a token;
* **403** — a credential was presented but it is not the named tenant's
  current token (wrong token, another tenant's token, or a rotated-away
  one); retrying with the same credential is pointless.

Admin endpoints (tenant registration, vault-wide status) are guarded by an
optional static admin token configured at serve time; when none is
configured they are open — the single-operator development mode.
"""

from __future__ import annotations

import hmac
from typing import Mapping

from repro.service.vault import KeyVault

__all__ = ["AuthError", "Authenticator", "bearer_token"]


class AuthError(Exception):
    """An authentication/authorisation failure with its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def bearer_token(environ: Mapping[str, str]) -> str | None:
    """The bearer token of a WSGI *environ*, or ``None`` when absent/malformed."""
    header = environ.get("HTTP_AUTHORIZATION", "")
    scheme, _, credential = header.partition(" ")
    if scheme.lower() != "bearer" or not credential.strip():
        return None
    return credential.strip()


class Authenticator:
    """Validates request credentials against the vault (and the admin token)."""

    def __init__(self, vault: KeyVault, *, admin_token: str | None = None) -> None:
        self._vault = vault
        self._admin_token = admin_token

    @property
    def requires_admin_token(self) -> bool:
        return self._admin_token is not None

    def require_tenant(self, environ: Mapping[str, str], tenant_id: str) -> None:
        """Authorise the request for *tenant_id* or raise :class:`AuthError`.

        The admin token, when configured, is also accepted for any tenant —
        the operator can drive every endpoint with one credential.
        """
        token = bearer_token(environ)
        if token is None:
            raise AuthError(401, "missing bearer token (Authorization: Bearer <token>)")
        if self._is_admin(token):
            return
        if not self._vault.verify_token(tenant_id, token):
            raise AuthError(403, f"token is not valid for tenant {tenant_id!r}")

    def require_admin(self, environ: Mapping[str, str]) -> None:
        """Authorise an admin endpoint; a no-op when no admin token is configured."""
        if self._admin_token is None:
            return
        token = bearer_token(environ)
        if token is None:
            raise AuthError(401, "missing bearer token (Authorization: Bearer <token>)")
        if not self._is_admin(token):
            raise AuthError(403, "admin token required for this endpoint")

    def _is_admin(self, token: str) -> bool:
        return self._admin_token is not None and hmac.compare_digest(self._admin_token, token)
