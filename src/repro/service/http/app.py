"""The WSGI application exposing the protection service over HTTP.

Routes (all ids are ``[A-Za-z0-9._-]+`` path segments)::

    GET  /healthz                                     liveness, no auth
    GET  /status                                      vault-wide status   [admin]
    POST /tenants/{tenant}                            register + token    [admin]
    GET  /tenants/{tenant}/status                     tenant status       [tenant]
    POST /tenants/{tenant}/datasets/{ds}/protect      CSV in -> CSV out   [tenant]
    POST /tenants/{tenant}/datasets/{ds}/detect       CSV in -> JSON      [tenant]
    POST /tenants/{tenant}/datasets/{ds}/dispute      CSV in -> JSON      [tenant]

CSV request bodies stream: ``Content-Length`` bodies are read in blocks,
``Transfer-Encoding: chunked`` bodies are decoded chunk by chunk (wsgiref
passes the raw stream through), and either way the bytes are spooled to a
temporary file — protect needs two passes over its input and a socket can be
read only once.  The protect response streams the protected CSV back with an
exact ``Content-Length`` and carries the JSON report (the same document
``repro protect --json`` prints) in the ``X-Repro-Report`` header, so one
round trip yields both artifacts without buffering either.

``detect`` accepts ``?workers=``, ``?runner=thread|process`` and
``?max_loss=`` query parameters — the HTTP spelling of the CLI flags.
Failures are uniform ``{"error": ...}`` JSON with 4xx/5xx statuses.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
from typing import Callable, Iterable, Iterator, Mapping
from urllib.parse import parse_qs

from repro.service.api import ProtectionService
from repro.service.http.auth import AuthError, Authenticator
from repro.service.reports import DEFAULT_MAX_LOSS, detect_report, dispute_report, error_payload
from repro.service.runners import RUNNER_NAMES
from repro.service.streaming import SPOOL_CHUNK_BYTES, spool_stream
from repro.service.vault import VaultError

__all__ = ["ProtectionApp", "REPORT_HEADER"]

#: Response header carrying the protect report JSON alongside the CSV body.
REPORT_HEADER = "X-Repro-Report"

_SEGMENT = r"[A-Za-z0-9._-]+"
_TENANT_ROUTE = re.compile(rf"^/tenants/(?P<tenant>{_SEGMENT})$")
_STATUS_ROUTE = re.compile(rf"^/tenants/(?P<tenant>{_SEGMENT})/status$")
_DATASET_ROUTE = re.compile(
    rf"^/tenants/(?P<tenant>{_SEGMENT})/datasets/(?P<dataset>{_SEGMENT})"
    r"/(?P<verb>protect|detect|dispute)$"
)

_STATUS_TEXT = {
    200: "200 OK",
    400: "400 Bad Request",
    401: "401 Unauthorized",
    403: "403 Forbidden",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    409: "409 Conflict",
    413: "413 Payload Too Large",
    500: "500 Internal Server Error",
}

#: TenantRecord fields a registration request body may set.
_REGISTRATION_PARAMS = (
    "encryption_key",
    "watermark_secret",
    "eta",
    "k",
    "epsilon",
    "mark_length",
    "copies",
    "metrics_depth",
    "ownership_tau",
    "max_mark_bit_errors",
)


class _HTTPError(Exception):
    """Internal: aborts request handling with a JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class _FileBody:
    """A WSGI response iterable streaming a temp file, deleting it on close."""

    def __init__(self, path: str, *, block_size: int = SPOOL_CHUNK_BYTES) -> None:
        self._path = path
        self._block_size = block_size
        self._handle = open(path, "rb")

    def __iter__(self) -> Iterator[bytes]:
        while True:
            block = self._handle.read(self._block_size)
            if not block:
                return
            yield block

    def close(self) -> None:  # wsgiref calls this after the last block
        self._handle.close()
        _unlink_quietly(self._path)


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def _iter_request_body(environ: Mapping[str, object]) -> Iterator[bytes]:
    """Stream the request body, decoding chunked transfer-encoding ourselves.

    ``wsgiref`` hands the application the raw socket stream; WSGI has no
    standard chunked story, so the frontend decodes the framing here (sizes
    line, payload, trailing CRLF, terminated by a zero-size chunk whose
    trailers are skipped).  Bodies with ``Content-Length`` are read exactly
    to length in blocks — never ``read()`` to EOF, which can block on a
    keep-alive socket.
    """
    stream = environ["wsgi.input"]
    encoding = str(environ.get("HTTP_TRANSFER_ENCODING", "")).lower()
    if "chunked" in encoding:
        while True:
            size_line = stream.readline()
            if not size_line:
                raise _HTTPError(400, "truncated chunked body (missing chunk size)")
            try:
                size = int(size_line.split(b";", 1)[0].strip() or b"0", 16)
            except ValueError:
                raise _HTTPError(400, "malformed chunked body (bad chunk size)") from None
            if size == 0:
                # Consume trailers (rare) up to the final blank line.
                while True:
                    trailer = stream.readline()
                    if trailer in (b"", b"\r\n", b"\n"):
                        return
            remaining = size
            while remaining:
                block = stream.read(min(remaining, SPOOL_CHUNK_BYTES))
                if not block:
                    raise _HTTPError(400, "truncated chunked body (short chunk)")
                remaining -= len(block)
                yield block
            stream.readline()  # the CRLF closing this chunk
    try:
        remaining = int(str(environ.get("CONTENT_LENGTH") or 0))
    except ValueError:
        raise _HTTPError(400, "malformed Content-Length") from None
    while remaining > 0:
        block = stream.read(min(remaining, SPOOL_CHUNK_BYTES))
        if not block:
            raise _HTTPError(400, "truncated body (short read against Content-Length)")
        remaining -= len(block)
        yield block


class ProtectionApp:
    """The WSGI callable wrapping one :class:`ProtectionService`.

    Thread-safe for threading WSGI servers: vault/claim writes are already
    serialised by the advisory file locks, and the one in-process hazard —
    two concurrent protects mutating a shared framework's registration state
    — is serialised by an app-level lock (protect is minutes-per-call at
    scale; the lock is not the bottleneck).
    """

    def __init__(
        self,
        service: ProtectionService,
        *,
        admin_token: str | None = None,
        max_upload_bytes: int | None = None,
        spool_dir: str | None = None,
    ) -> None:
        self._service = service
        self._auth = Authenticator(service.vault, admin_token=admin_token)
        self._max_upload_bytes = max_upload_bytes
        self._spool_dir = spool_dir
        self._protect_lock = threading.Lock()

    @property
    def service(self) -> ProtectionService:
        return self._service

    # ------------------------------------------------------------------- WSGI
    def __call__(self, environ: Mapping[str, object], start_response: Callable) -> Iterable[bytes]:
        try:
            return self._route(environ, start_response)
        except AuthError as error:
            return _json_response(start_response, error.status, error_payload(error.message))
        except _HTTPError as error:
            return _json_response(start_response, error.status, error_payload(error.message))
        except VaultError as error:
            status = 409 if "already" in str(error) else 404
            return _json_response(start_response, status, error_payload(str(error)))
        except ValueError as error:
            return _json_response(start_response, 400, error_payload(str(error)))
        except Exception as error:  # noqa: BLE001 - the service must answer, not die
            return _json_response(
                start_response, 500, error_payload(f"internal error: {type(error).__name__}: {error}")
            )

    # ---------------------------------------------------------------- routing
    def _route(self, environ: Mapping[str, object], start_response: Callable) -> Iterable[bytes]:
        method = str(environ.get("REQUEST_METHOD", "GET")).upper()
        path = str(environ.get("PATH_INFO", "/")) or "/"

        if path == "/healthz":
            if method != "GET":
                raise _HTTPError(405, "healthz only answers GET")
            return _json_response(
                start_response, 200, {"status": "ok", "vault": self._service.vault.root}
            )

        if path == "/status":
            if method != "GET":
                raise _HTTPError(405, "status only answers GET")
            self._auth.require_admin(environ)
            return _json_response(start_response, 200, self._service.status())

        match = _STATUS_ROUTE.match(path)
        if match:
            if method != "GET":
                raise _HTTPError(405, "tenant status only answers GET")
            tenant = match.group("tenant")
            self._auth.require_tenant(environ, tenant)
            return _json_response(start_response, 200, self._service.status(tenant))

        match = _TENANT_ROUTE.match(path)
        if match:
            if method != "POST":
                raise _HTTPError(405, "tenant registration only answers POST")
            return self._handle_register(environ, start_response, match.group("tenant"))

        match = _DATASET_ROUTE.match(path)
        if match:
            if method != "POST":
                raise _HTTPError(405, f"{match.group('verb')} only answers POST")
            tenant, dataset, verb = match.group("tenant", "dataset", "verb")
            self._auth.require_tenant(environ, tenant)
            handler = {
                "protect": self._handle_protect,
                "detect": self._handle_detect,
                "dispute": self._handle_dispute,
            }[verb]
            return handler(environ, start_response, tenant, dataset)

        raise _HTTPError(404, f"no route for {method} {path}")

    # --------------------------------------------------------------- handlers
    def _handle_register(
        self, environ: Mapping[str, object], start_response: Callable, tenant: str
    ) -> Iterable[bytes]:
        self._auth.require_admin(environ)
        body = b"".join(_iter_request_body(environ))
        params: dict = {}
        if body.strip():
            try:
                params = json.loads(body)
            except json.JSONDecodeError:
                raise _HTTPError(400, "registration body must be a JSON object") from None
            if not isinstance(params, dict):
                raise _HTTPError(400, "registration body must be a JSON object")
            unknown = sorted(set(params) - set(_REGISTRATION_PARAMS))
            if unknown:
                raise _HTTPError(400, f"unknown registration parameters: {', '.join(unknown)}")
        record = self._service.register_tenant(tenant, **params)
        token = self._service.vault.issue_token(tenant)
        return _json_response(
            start_response,
            200,
            {
                "tenant": record.tenant_id,
                "token": token,
                "eta": record.eta,
                "k": record.k,
                "mark_length": record.mark_length,
                "copies": record.copies,
            },
        )

    def _handle_protect(
        self, environ: Mapping[str, object], start_response: Callable, tenant: str, dataset: str
    ) -> Iterable[bytes]:
        query = _query(environ)
        chunk_size = _int_param(query, "chunk_size", minimum=1)
        upload = self._spool_upload(environ)
        output = self._temp_path("protected")
        try:
            with self._protect_lock:
                outcome = self._service.protect(
                    tenant, upload, output, dataset_id=dataset, chunk_size=chunk_size
                )
        except BaseException:
            _unlink_quietly(output)
            raise
        finally:
            _unlink_quietly(upload)
        report = json.dumps(outcome.to_json(), sort_keys=True)
        headers = [
            ("Content-Type", "text/csv; charset=utf-8"),
            ("Content-Length", str(os.path.getsize(output))),
            (REPORT_HEADER, report),
        ]
        start_response(_STATUS_TEXT[200], headers)
        return _FileBody(output)

    def _handle_detect(
        self, environ: Mapping[str, object], start_response: Callable, tenant: str, dataset: str
    ) -> Iterable[bytes]:
        query = _query(environ)
        workers = _int_param(query, "workers", minimum=1)
        chunk_size = _int_param(query, "chunk_size", minimum=1)
        runner = _str_param(query, "runner")
        if runner is not None and runner not in RUNNER_NAMES:
            raise _HTTPError(
                400, f"unknown runner {runner!r} (expected one of {', '.join(RUNNER_NAMES)})"
            )
        max_loss = _float_param(query, "max_loss", default=DEFAULT_MAX_LOSS)
        expected_mark = _str_param(query, "expected_mark")
        upload = self._spool_upload(environ)
        try:
            outcome = self._service.detect(
                tenant,
                upload,
                dataset_id=dataset,
                workers=workers,
                runner=runner,
                chunk_size=chunk_size,
            )
        finally:
            _unlink_quietly(upload)
        return _json_response(
            start_response,
            200,
            detect_report(outcome, expected_mark=expected_mark, max_loss=max_loss),
        )

    def _handle_dispute(
        self, environ: Mapping[str, object], start_response: Callable, tenant: str, dataset: str
    ) -> Iterable[bytes]:
        upload = self._spool_upload(environ)
        try:
            verdict = self._service.dispute(tenant, upload, dataset_id=dataset)
        finally:
            _unlink_quietly(upload)
        return _json_response(start_response, 200, dispute_report(dataset, verdict))

    # ----------------------------------------------------------------- helpers
    def _spool_upload(self, environ: Mapping[str, object]) -> str:
        """The request body, spooled to a temp CSV (caller unlinks)."""
        path = self._temp_path("upload")
        try:
            written = spool_stream(
                _iter_request_body(environ), path, max_bytes=self._max_upload_bytes
            )
        except ValueError as error:  # the upload cap
            _unlink_quietly(path)
            raise _HTTPError(413, str(error)) from None
        except BaseException:
            _unlink_quietly(path)
            raise
        if written == 0:
            _unlink_quietly(path)
            raise _HTTPError(400, "empty request body (expected a CSV upload)")
        return path

    def _temp_path(self, kind: str) -> str:
        fd, path = tempfile.mkstemp(prefix=f"repro-http-{kind}-", suffix=".csv", dir=self._spool_dir)
        os.close(fd)
        return path


def _json_response(start_response: Callable, status: int, payload: dict) -> Iterable[bytes]:
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
    start_response(
        _STATUS_TEXT.get(status, f"{status} Error"),
        [
            ("Content-Type", "application/json; charset=utf-8"),
            ("Content-Length", str(len(body))),
        ],
    )
    return [body]


def _query(environ: Mapping[str, object]) -> dict[str, list[str]]:
    return parse_qs(str(environ.get("QUERY_STRING", "")), keep_blank_values=False)


def _str_param(query: dict[str, list[str]], name: str) -> str | None:
    values = query.get(name)
    return values[-1] if values else None


def _int_param(query: dict[str, list[str]], name: str, *, minimum: int) -> int | None:
    raw = _str_param(query, name)
    if raw is None:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise _HTTPError(400, f"query parameter {name!r} must be an integer") from None
    if value < minimum:
        raise _HTTPError(400, f"query parameter {name!r} must be >= {minimum}")
    return value


def _float_param(query: dict[str, list[str]], name: str, *, default: float) -> float:
    raw = _str_param(query, name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise _HTTPError(400, f"query parameter {name!r} must be a number") from None
