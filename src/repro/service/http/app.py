"""The WSGI application exposing the protection service over HTTP.

Routes (all ids are ``[A-Za-z0-9._-]+`` path segments)::

    GET  /healthz                                     liveness, no auth
    GET  /metrics                                     counters, no auth
    GET  /status                                      vault-wide status   [admin]
    POST /tenants/{tenant}                            register + token    [admin]
    GET  /tenants/{tenant}/status                     tenant status       [tenant]
    POST /tenants/{tenant}/datasets/{ds}/protect      CSV in -> CSV out   [tenant]
    POST /tenants/{tenant}/datasets/{ds}/detect       CSV in -> JSON      [tenant]
    POST /tenants/{tenant}/datasets/{ds}/dispute      CSV in -> JSON      [tenant]
    POST /internal/detect-votes                       chunk -> votes      [admin]

``/internal/detect-votes`` is the worker half of distributed detection (see
:class:`~repro.service.runners.RemoteRunner` and docs/distributed.md): the
coordinator POSTs one raw CSV chunk plus a serialized watermarker spec and
frontier metadata (:mod:`repro.service.wire` shapes) and gets that chunk's
``DetectionVotes`` back — rows never leave the worker in the response, and
the vault is never consulted.  It is guarded like the other admin routes:
gated behind ``--admin-token`` when one is configured (the fleet secret),
open otherwise.  ``/metrics`` exposes the process's
:class:`~repro.service.http.metrics.ServiceMetrics` snapshot.

CSV request bodies stream: ``Content-Length`` bodies are read in blocks,
``Transfer-Encoding: chunked`` bodies are decoded chunk by chunk (wsgiref
passes the raw stream through), and either way the bytes are spooled to a
temporary file — protect needs two passes over its input and a socket can be
read only once.  The protect response streams the protected CSV back with an
exact ``Content-Length`` and carries the JSON report (the same document
``repro protect --json`` prints) in the ``X-Repro-Report`` header, so one
round trip yields both artifacts without buffering either.

``detect`` accepts ``?workers=``, ``?runner=thread|process`` and
``?max_loss=`` query parameters — the HTTP spelling of the CLI flags.
``protect`` accepts ``?workers=`` and ``?runner=thread|process`` too (pass 2
runs on the named runner; ``remote`` is detect-only and is refused with 400).
Failures are uniform ``{"error": ...}`` JSON with 4xx/5xx statuses.

Telemetry (see docs/observability.md): a request carrying a valid
``X-Repro-Trace-Id`` header is traced — the app activates a tracer with the
caller's trace id, wraps handling in an ``http.request`` span, and returns
the collected spans to the caller.  Protect and detect return them in the
``X-Repro-Trace`` *response header* (the CSV/JSON bodies stay byte-identical
with tracing on or off); ``/internal/detect-votes`` returns them as the
``spans`` key of its JSON body, which the coordinator's ``RemoteRunner``
merges into the caller's trace.  ``GET /metrics?format=prometheus`` renders
the counters in Prometheus text exposition format (JSON stays the default).
"""

from __future__ import annotations

import json
import logging
import os
import re
import tempfile
import threading
import time
from typing import Callable, Iterable, Iterator, Mapping
from urllib.parse import parse_qs

from repro.service.api import ProtectionService
from repro.service.http.auth import AuthError, Authenticator
from repro.service.http.metrics import ServiceMetrics
from repro.service.reports import DEFAULT_MAX_LOSS, detect_report, dispute_report, error_payload
from repro.service.runners import RUNNER_NAMES, collect_raw_chunk
from repro.service.streaming import SPOOL_CHUNK_BYTES, spool_stream
from repro.service.vault import VaultError
from repro.service.wire import metadata_from_json, spec_from_json, votes_to_json
from repro.telemetry.log import log_event, tenant_hash
from repro.watermarking.ecc import resolve_code
from repro.telemetry.trace import (
    PARENT_HEADER,
    TRACE_HEADER,
    Tracer,
    activate as _activate,
    current_tracer as _current_tracer,
    is_valid_trace_id,
    span as _stage_span,
)

__all__ = ["ProtectionApp", "REPORT_HEADER", "TRACE_RESPONSE_HEADER"]

#: Response header carrying the protect report JSON alongside the CSV body.
REPORT_HEADER = "X-Repro-Report"

#: Response header carrying the server-side trace of a traced protect/detect
#: (the :meth:`~repro.telemetry.trace.Tracer.to_json` document), so response
#: bodies stay byte-identical with tracing on or off.
TRACE_RESPONSE_HEADER = "X-Repro-Trace"

#: Cap on spans shipped in the response — stdlib ``http.client`` refuses
#: header lines over 64 KiB, and ~150 span documents stay well under it.
TRACE_EXPORT_LIMIT = 150

#: The WSGI environ spellings of the trace propagation request headers.
_TRACE_ENVIRON = "HTTP_" + TRACE_HEADER.upper().replace("-", "_")
_PARENT_ENVIRON = "HTTP_" + PARENT_HEADER.upper().replace("-", "_")

_SEGMENT = r"[A-Za-z0-9._-]+"
_TENANT_ROUTE = re.compile(rf"^/tenants/(?P<tenant>{_SEGMENT})$")
_STATUS_ROUTE = re.compile(rf"^/tenants/(?P<tenant>{_SEGMENT})/status$")
_DATASET_ROUTE = re.compile(
    rf"^/tenants/(?P<tenant>{_SEGMENT})/datasets/(?P<dataset>{_SEGMENT})"
    r"/(?P<verb>protect|detect|dispute)$"
)

_STATUS_TEXT = {
    200: "200 OK",
    400: "400 Bad Request",
    401: "401 Unauthorized",
    403: "403 Forbidden",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    409: "409 Conflict",
    413: "413 Payload Too Large",
    500: "500 Internal Server Error",
}

#: TenantRecord fields a registration request body may set.
_REGISTRATION_PARAMS = (
    "encryption_key",
    "watermark_secret",
    "eta",
    "k",
    "epsilon",
    "mark_length",
    "copies",
    "metrics_depth",
    "ownership_tau",
    "max_mark_bit_errors",
    "code",
)


class _HTTPError(Exception):
    """Internal: aborts request handling with a JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class _FileBody:
    """A WSGI response iterable streaming a temp file, deleting it on close."""

    def __init__(self, path: str, *, block_size: int = SPOOL_CHUNK_BYTES) -> None:
        self._path = path
        self._block_size = block_size
        self._handle = open(path, "rb")

    def __iter__(self) -> Iterator[bytes]:
        while True:
            block = self._handle.read(self._block_size)
            if not block:
                return
            yield block

    def close(self) -> None:  # wsgiref calls this after the last block
        self._handle.close()
        _unlink_quietly(self._path)


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def _iter_request_body(environ: Mapping[str, object]) -> Iterator[bytes]:
    """Stream the request body, decoding chunked transfer-encoding ourselves.

    ``wsgiref`` hands the application the raw socket stream; WSGI has no
    standard chunked story, so the frontend decodes the framing here (sizes
    line, payload, trailing CRLF, terminated by a zero-size chunk whose
    trailers are skipped).  Bodies with ``Content-Length`` are read exactly
    to length in blocks — never ``read()`` to EOF, which can block on a
    keep-alive socket.

    A keep-alive frontend (``repro.service.http.prefork``) decodes transfer
    framing itself — it has to, to know where a pipelined request's body ends
    — and advertises that with the de-facto ``wsgi.input_terminated`` flag:
    the stream then yields exactly the payload bytes and EOFs at the body's
    end, so this function just reads it out in blocks.
    """
    stream = environ["wsgi.input"]
    if environ.get("wsgi.input_terminated"):
        while True:
            block = stream.read(SPOOL_CHUNK_BYTES)
            if not block:
                return
            yield block
    encoding = str(environ.get("HTTP_TRANSFER_ENCODING", "")).lower()
    if "chunked" in encoding:
        while True:
            size_line = stream.readline()
            if not size_line:
                raise _HTTPError(400, "truncated chunked body (missing chunk size)")
            try:
                size = int(size_line.split(b";", 1)[0].strip() or b"0", 16)
            except ValueError:
                raise _HTTPError(400, "malformed chunked body (bad chunk size)") from None
            if size == 0:
                # Consume trailers (rare) up to the final blank line.
                while True:
                    trailer = stream.readline()
                    if trailer in (b"", b"\r\n", b"\n"):
                        return
            remaining = size
            while remaining:
                block = stream.read(min(remaining, SPOOL_CHUNK_BYTES))
                if not block:
                    raise _HTTPError(400, "truncated chunked body (short chunk)")
                remaining -= len(block)
                yield block
            stream.readline()  # the CRLF closing this chunk
    try:
        remaining = int(str(environ.get("CONTENT_LENGTH") or 0))
    except ValueError:
        raise _HTTPError(400, "malformed Content-Length") from None
    while remaining > 0:
        block = stream.read(min(remaining, SPOOL_CHUNK_BYTES))
        if not block:
            raise _HTTPError(400, "truncated body (short read against Content-Length)")
        remaining -= len(block)
        yield block


class ProtectionApp:
    """The WSGI callable wrapping one :class:`ProtectionService`.

    Thread-safe for threading WSGI servers: vault/claim writes are already
    serialised by the advisory file locks, and the one in-process hazard —
    two concurrent protects mutating a shared framework's registration state
    — is serialised by an app-level lock (protect is minutes-per-call at
    scale; the lock is not the bottleneck).
    """

    def __init__(
        self,
        service: ProtectionService,
        *,
        admin_token: str | None = None,
        max_upload_bytes: int | None = None,
        spool_dir: str | None = None,
        logger: logging.Logger | None = None,
    ) -> None:
        self._service = service
        self._auth = Authenticator(service.vault, admin_token=admin_token)
        self._max_upload_bytes = max_upload_bytes
        self._spool_dir = spool_dir
        self._protect_lock = threading.Lock()
        self._metrics = ServiceMetrics()
        #: Structured-event sink (``repro serve --log-json``); None = silent.
        self._logger = logger

    @property
    def service(self) -> ProtectionService:
        return self._service

    @property
    def metrics(self) -> ServiceMetrics:
        return self._metrics

    # ------------------------------------------------------------------- WSGI
    def __call__(self, environ: Mapping[str, object], start_response: Callable) -> Iterable[bytes]:
        tracer = self._request_tracer(environ)
        if tracer is None:
            return self._serve(environ, start_response)
        # The caller sent a valid trace id: collect this request's spans
        # under it.  The scope lands in environ so handlers that embed the
        # trace in the *response* can close the request span first (it would
        # otherwise still be open while the response headers are built).
        with _activate(tracer):
            scope = _stage_span(
                "http.request", method=str(environ.get("REQUEST_METHOD", "GET")).upper()
            )
            environ["repro.request_span"] = scope  # type: ignore[index]
            with scope:
                return self._serve(environ, start_response)

    def _serve(self, environ: Mapping[str, object], start_response: Callable) -> Iterable[bytes]:
        started = time.perf_counter()
        start_response = self._recording(environ, start_response)
        try:
            try:
                return self._route(environ, start_response)
            except AuthError as error:
                return _json_response(start_response, error.status, error_payload(error.message))
            except _HTTPError as error:
                return _json_response(start_response, error.status, error_payload(error.message))
            except VaultError as error:
                status = 409 if "already" in str(error) else 404
                return _json_response(start_response, status, error_payload(str(error)))
            except ValueError as error:
                return _json_response(start_response, 400, error_payload(str(error)))
            except Exception as error:  # noqa: BLE001 - the service must answer, not die
                return _json_response(
                    start_response,
                    500,
                    error_payload(f"internal error: {type(error).__name__}: {error}"),
                )
        finally:
            # Error paths included: tail latencies that omit failures lie.
            route = str(environ.get("repro.route", "unknown"))
            elapsed = time.perf_counter() - started
            self._metrics.observe_request(route, elapsed)
            log_event(
                self._logger,
                "http.request",
                route=route,
                method=str(environ.get("REQUEST_METHOD", "GET")).upper(),
                status=environ.get("repro.status"),
                duration_seconds=round(elapsed, 6),
            )

    def _recording(self, environ: Mapping[str, object], start_response: Callable) -> Callable:
        """Wrap *start_response* so every sent status lands in the metrics."""

        def wrapped(status: str, headers, exc_info=None):
            try:
                code = int(str(status).split(" ", 1)[0])
            except ValueError:
                code = None
            if code is not None:
                self._metrics.record_response(code)
                environ["repro.status"] = code  # type: ignore[index]
            if exc_info is not None:
                return start_response(status, headers, exc_info)
            return start_response(status, headers)

        return wrapped

    def _request_tracer(self, environ: Mapping[str, object]) -> Tracer | None:
        """A tracer adopting the caller's trace id, or None for untraced requests.

        Ids that fail validation are ignored rather than echoed into spans —
        a hostile header must not be able to inject content into telemetry.
        """
        trace_id = str(environ.get(_TRACE_ENVIRON, ""))
        if not is_valid_trace_id(trace_id):
            return None
        parent = str(environ.get(_PARENT_ENVIRON, ""))
        return Tracer(trace_id, parent_id=parent if is_valid_trace_id(parent) else None)

    def _trace_header_items(self, environ: Mapping[str, object]) -> list[tuple[str, str]]:
        """The ``X-Repro-Trace`` response header for a traced request, else []."""
        tracer = _current_tracer()
        if tracer is None:
            return []
        scope = environ.get("repro.request_span")
        if scope is not None:
            scope.done()
        document = tracer.to_json(limit=TRACE_EXPORT_LIMIT)
        return [(TRACE_RESPONSE_HEADER, json.dumps(document, separators=(",", ":")))]

    # ---------------------------------------------------------------- routing
    def _count(self, environ: Mapping[str, object], route: str) -> None:
        """Record the recognised route, and remember it for latency/logs."""
        environ["repro.route"] = route  # type: ignore[index]
        self._metrics.record_request(route)

    def _route(self, environ: Mapping[str, object], start_response: Callable) -> Iterable[bytes]:
        method = str(environ.get("REQUEST_METHOD", "GET")).upper()
        path = str(environ.get("PATH_INFO", "/")) or "/"

        if path == "/healthz":
            if method != "GET":
                raise _HTTPError(405, "healthz only answers GET")
            self._count(environ, "healthz")
            return _json_response(
                start_response, 200, {"status": "ok", "vault": self._service.vault.root}
            )

        if path == "/metrics":
            if method != "GET":
                raise _HTTPError(405, "metrics only answers GET")
            self._count(environ, "metrics")
            fmt = _str_param(_query(environ), "format") or "json"
            if fmt == "prometheus":
                return _text_response(
                    start_response,
                    200,
                    self._metrics.prometheus(),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            if fmt != "json":
                raise _HTTPError(
                    400, f"unknown metrics format {fmt!r} (expected json or prometheus)"
                )
            return _json_response(start_response, 200, self._metrics.snapshot())

        if path == "/internal/detect-votes":
            if method != "POST":
                raise _HTTPError(405, "detect-votes only answers POST")
            self._count(environ, "detect_votes")
            return self._handle_detect_votes(environ, start_response)

        if path == "/status":
            if method != "GET":
                raise _HTTPError(405, "status only answers GET")
            self._count(environ, "status")
            self._auth.require_admin(environ)
            return _json_response(start_response, 200, self._service.status())

        match = _STATUS_ROUTE.match(path)
        if match:
            if method != "GET":
                raise _HTTPError(405, "tenant status only answers GET")
            self._count(environ, "tenant_status")
            tenant = match.group("tenant")
            self._auth.require_tenant(environ, tenant)
            return _json_response(start_response, 200, self._service.status(tenant))

        match = _TENANT_ROUTE.match(path)
        if match:
            if method != "POST":
                raise _HTTPError(405, "tenant registration only answers POST")
            self._count(environ, "register")
            return self._handle_register(environ, start_response, match.group("tenant"))

        match = _DATASET_ROUTE.match(path)
        if match:
            if method != "POST":
                raise _HTTPError(405, f"{match.group('verb')} only answers POST")
            tenant, dataset, verb = match.group("tenant", "dataset", "verb")
            self._count(environ, verb)
            self._auth.require_tenant(environ, tenant)
            handler = {
                "protect": self._handle_protect,
                "detect": self._handle_detect,
                "dispute": self._handle_dispute,
            }[verb]
            return handler(environ, start_response, tenant, dataset)

        # Unmatched paths still count — a flood of bad paths (a scanner, a
        # misconfigured client) must be visible in /metrics, not invisible
        # because routing never reached a record_request call.
        self._count(environ, "unknown")
        raise _HTTPError(404, f"no route for {method} {path}")

    # --------------------------------------------------------------- handlers
    def _handle_register(
        self, environ: Mapping[str, object], start_response: Callable, tenant: str
    ) -> Iterable[bytes]:
        self._auth.require_admin(environ)
        body = self._read_body(environ)
        params: dict = {}
        if body.strip():
            try:
                params = json.loads(body)
            except json.JSONDecodeError:
                raise _HTTPError(400, "registration body must be a JSON object") from None
            if not isinstance(params, dict):
                raise _HTTPError(400, "registration body must be a JSON object")
            unknown = sorted(set(params) - set(_REGISTRATION_PARAMS))
            if unknown:
                raise _HTTPError(400, f"unknown registration parameters: {', '.join(unknown)}")
        record = self._service.register_tenant(tenant, **params)
        token = self._service.vault.issue_token(tenant)
        return _json_response(
            start_response,
            200,
            {
                "tenant": record.tenant_id,
                "token": token,
                "eta": record.eta,
                "k": record.k,
                "mark_length": record.mark_length,
                "copies": record.copies,
            },
        )

    def _handle_protect(
        self, environ: Mapping[str, object], start_response: Callable, tenant: str, dataset: str
    ) -> Iterable[bytes]:
        query = _query(environ)
        chunk_size = _int_param(query, "chunk_size", minimum=1)
        workers = _int_param(query, "workers", minimum=1)
        runner = _str_param(query, "runner")
        if runner is not None and runner not in RUNNER_NAMES:
            # Includes ?runner=remote: the remote runner is detect-only.
            raise _HTTPError(
                400,
                f"unknown protect runner {runner!r} "
                f"(expected one of {', '.join(RUNNER_NAMES)}; remote is detect-only)",
            )
        upload = self._spool_upload(environ)
        output = self._temp_path("protected")
        started = time.perf_counter()
        try:
            with self._protect_lock:
                outcome = self._service.protect(
                    tenant,
                    upload,
                    output,
                    dataset_id=dataset,
                    chunk_size=chunk_size,
                    workers=workers,
                    runner=runner,
                )
        except BaseException:
            _unlink_quietly(output)
            raise
        finally:
            _unlink_quietly(upload)
        elapsed = time.perf_counter() - started
        self._metrics.record_protect(outcome.runner, outcome.rows, elapsed)
        log_event(
            self._logger,
            "protect.complete",
            tenant_hash=tenant_hash(tenant),
            rows=outcome.rows,
            runner=outcome.runner,
            duration_seconds=round(elapsed, 6),
        )
        report = json.dumps(outcome.to_json(), sort_keys=True)
        headers = [
            ("Content-Type", "text/csv; charset=utf-8"),
            ("Content-Length", str(os.path.getsize(output))),
            (REPORT_HEADER, report),
        ] + self._trace_header_items(environ)
        start_response(_STATUS_TEXT[200], headers)
        return _FileBody(output)

    def _handle_detect(
        self, environ: Mapping[str, object], start_response: Callable, tenant: str, dataset: str
    ) -> Iterable[bytes]:
        query = _query(environ)
        workers = _int_param(query, "workers", minimum=1)
        chunk_size = _int_param(query, "chunk_size", minimum=1)
        runner = _str_param(query, "runner")
        if runner is not None and runner not in RUNNER_NAMES:
            raise _HTTPError(
                400, f"unknown runner {runner!r} (expected one of {', '.join(RUNNER_NAMES)})"
            )
        max_loss = _float_param(query, "max_loss", default=DEFAULT_MAX_LOSS)
        expected_mark = _str_param(query, "expected_mark")
        code = _str_param(query, "code")
        if code is not None:
            try:
                resolve_code(code)
            except ValueError as error:
                raise _HTTPError(400, str(error)) from None
        upload = self._spool_upload(environ)
        started = time.perf_counter()
        try:
            outcome = self._service.detect(
                tenant,
                upload,
                dataset_id=dataset,
                workers=workers,
                runner=runner,
                chunk_size=chunk_size,
                code=code,
            )
        finally:
            _unlink_quietly(upload)
        elapsed = time.perf_counter() - started
        self._metrics.record_detect(outcome.runner, outcome.rows, elapsed)
        log_event(
            self._logger,
            "detect.complete",
            tenant_hash=tenant_hash(tenant),
            rows=outcome.rows,
            runner=outcome.runner,
            duration_seconds=round(elapsed, 6),
        )
        return _json_response(
            start_response,
            200,
            detect_report(outcome, expected_mark=expected_mark, max_loss=max_loss),
            extra_headers=self._trace_header_items(environ),
        )

    def _handle_detect_votes(
        self, environ: Mapping[str, object], start_response: Callable
    ) -> Iterable[bytes]:
        """The worker hop of distributed detection: one chunk in, its votes out.

        The request is one JSON document (:mod:`repro.service.wire` shapes):
        ``spec`` (watermarker reconstruction material), ``metadata`` (frontier
        node names, resolved against *this* service's trees), ``mark_length``
        and the raw CSV chunk as ``header`` + ``lines``.  Parsing and vote
        collection reuse :func:`repro.service.runners.collect_raw_chunk` — the
        exact code path the in-process runners execute — and engines are
        cached per spec across chunks, so a fleet worker behaves like one
        long-lived process-pool worker that happens to be on another machine.
        """
        self._auth.require_admin(environ)
        body = self._read_body(environ)
        try:
            payload = json.loads(body)
        except json.JSONDecodeError:
            raise _HTTPError(400, "detect-votes body must be a JSON document") from None
        if not isinstance(payload, dict):
            raise _HTTPError(400, "detect-votes body must be a JSON object")
        for name in ("spec", "metadata", "mark_length", "header", "lines"):
            if name not in payload:
                raise _HTTPError(400, f"detect-votes body lacks the {name!r} field")
        try:
            spec = spec_from_json(payload["spec"])
            metadata = metadata_from_json(payload["metadata"], self._service.trees)
            mark_length = int(payload["mark_length"])
        except (ValueError, TypeError) as error:
            raise _HTTPError(400, f"malformed detect-votes request: {error}") from None
        if mark_length < 1:
            raise _HTTPError(400, "mark_length must be at least 1")
        header, lines = payload["header"], payload["lines"]
        if not isinstance(header, str) or not isinstance(lines, list) or not all(
            isinstance(line, str) for line in lines
        ):
            raise _HTTPError(400, "header must be a string and lines a list of strings")
        started = time.perf_counter()
        try:
            rows, votes = collect_raw_chunk(
                spec, self._service.schema, metadata, header, lines, mark_length
            )
        except (ValueError, KeyError, TypeError) as error:
            # A chunk that cannot be parsed or collected is a *request* error
            # (bad CSV cell, metadata missing BinnedTable fields): it must
            # come back 4xx so the coordinator fails fast with the real
            # message instead of treating it as a dead worker and re-sending
            # the same bad chunk across the whole fleet.
            raise _HTTPError(400, f"chunk does not parse/collect: {error}") from None
        self._metrics.record_chunk(rows, time.perf_counter() - started)
        document = {"rows": rows, "votes": votes_to_json(votes)}
        tracer = _current_tracer()
        if tracer is not None:
            # Traced by the coordinator: ship this worker's spans back in the
            # body (an internal hop — RemoteRunner strips them before voting).
            scope = environ.get("repro.request_span")
            if scope is not None:
                scope.done()
            document["spans"] = tracer.export(limit=TRACE_EXPORT_LIMIT)
        return _json_response(start_response, 200, document)

    def _handle_dispute(
        self, environ: Mapping[str, object], start_response: Callable, tenant: str, dataset: str
    ) -> Iterable[bytes]:
        upload = self._spool_upload(environ)
        try:
            verdict = self._service.dispute(tenant, upload, dataset_id=dataset)
        finally:
            _unlink_quietly(upload)
        return _json_response(start_response, 200, dispute_report(dataset, verdict))

    # ----------------------------------------------------------------- helpers
    def _read_body(self, environ: Mapping[str, object]) -> bytes:
        """The whole request body in memory, honouring the upload cap.

        Only for bounded JSON bodies (registration, detect-votes chunks —
        one chunk is ``chunk_size`` rows by construction); CSV uploads go
        through :meth:`_spool_upload` instead.
        """
        blocks: list[bytes] = []
        read = 0
        for block in _iter_request_body(environ):
            read += len(block)
            if self._max_upload_bytes is not None and read > self._max_upload_bytes:
                raise _HTTPError(
                    413, f"upload exceeds the configured limit of {self._max_upload_bytes} bytes"
                )
            blocks.append(block)
        return b"".join(blocks)

    def _spool_upload(self, environ: Mapping[str, object]) -> str:
        """The request body, spooled to a temp CSV (caller unlinks)."""
        path = self._temp_path("upload")
        try:
            written = spool_stream(
                _iter_request_body(environ), path, max_bytes=self._max_upload_bytes
            )
        except ValueError as error:  # the upload cap
            _unlink_quietly(path)
            raise _HTTPError(413, str(error)) from None
        except BaseException:
            _unlink_quietly(path)
            raise
        if written == 0:
            _unlink_quietly(path)
            raise _HTTPError(400, "empty request body (expected a CSV upload)")
        return path

    def _temp_path(self, kind: str) -> str:
        fd, path = tempfile.mkstemp(prefix=f"repro-http-{kind}-", suffix=".csv", dir=self._spool_dir)
        os.close(fd)
        return path


def _json_response(
    start_response: Callable,
    status: int,
    payload: dict,
    *,
    extra_headers: Iterable[tuple[str, str]] = (),
) -> Iterable[bytes]:
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
    start_response(
        _STATUS_TEXT.get(status, f"{status} Error"),
        [
            ("Content-Type", "application/json; charset=utf-8"),
            ("Content-Length", str(len(body))),
        ]
        + list(extra_headers),
    )
    return [body]


def _text_response(
    start_response: Callable, status: int, text: str, *, content_type: str
) -> Iterable[bytes]:
    body = text.encode("utf-8")
    start_response(
        _STATUS_TEXT.get(status, f"{status} Error"),
        [("Content-Type", content_type), ("Content-Length", str(len(body)))],
    )
    return [body]


def _query(environ: Mapping[str, object]) -> dict[str, list[str]]:
    return parse_qs(str(environ.get("QUERY_STRING", "")), keep_blank_values=False)


def _str_param(query: dict[str, list[str]], name: str) -> str | None:
    values = query.get(name)
    return values[-1] if values else None


def _int_param(query: dict[str, list[str]], name: str, *, minimum: int) -> int | None:
    raw = _str_param(query, name)
    if raw is None:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise _HTTPError(400, f"query parameter {name!r} must be an integer") from None
    if value < minimum:
        raise _HTTPError(400, f"query parameter {name!r} must be >= {minimum}")
    return value


def _float_param(query: dict[str, list[str]], name: str, *, default: float) -> float:
    raw = _str_param(query, name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise _HTTPError(400, f"query parameter {name!r} must be a number") from None
