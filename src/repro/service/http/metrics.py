"""In-process request/throughput counters behind the ``/metrics`` endpoint.

A fleet of ``repro serve`` processes is only operable if each member can
answer "what have you been doing": the coordinator needs to see chunks
landing on every worker, and a single-box server needs request counts to
size itself.  :class:`ServiceMetrics` is the minimal, dependency-free
answer — monotonic counters and fixed-bucket latency histograms guarded by
one lock, snapshotted as a JSON document by ``GET /metrics`` and rendered
as Prometheus text exposition by ``GET /metrics?format=prometheus`` (no
auth, like ``/healthz``: the counters name routes and runners, never
tenants' data or tokens).

The JSON snapshot schema — **normalisation rule: every duration field is
seconds rounded to 6 decimal places** (micro-second precision; nothing in
this document mixes precisions)::

    uptime_seconds   float       seconds since process start
    requests         {route: count}          per recognised route, plus the
                                             "unknown" key counting 404s so
                                             a flood of bad paths is visible
    responses        {status: count}         per HTTP status actually sent
    detect           {"runners": {runner: {calls, rows, seconds}}, "rows": n}
    protect          {"runners": {runner: {calls, rows, seconds}}, "rows": n}
    worker_chunks    {chunks, rows, seconds}  the worker side of distributed
                                              detection (POST /internal/detect-votes)
    server           {host, pid, connections, queue_depth, queue_limit,
                      sheds, rate_limited} — the serving-layer story: which
                      process answered (``host``/``pid`` are stamped at
                      snapshot time, so they are correct after a pre-fork),
                      TCP connections accepted, the admission queue's
                      current depth and configured limit (``queue_limit``
                      is ``null`` under the legacy threading server),
                      connections shed with 503, requests refused with 429
    latency          {"requests": {route: H}, "detect": {runner: H},
                      "protect": {runner: H}, "worker_chunks": H}
                     where H = {count, sum_seconds, p50_seconds,
                     p95_seconds, p99_seconds} from
                     :meth:`repro.telemetry.metrics.Histogram.snapshot`

Counters reset with the process; scrape-and-diff is the consumer's job.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections import Counter, defaultdict

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricFamily,
    render_prometheus,
)

__all__ = ["ServiceMetrics", "SECONDS_PRECISION"]

#: Every ``*seconds`` field in the snapshot is rounded to this many decimal
#: places — the one normalisation rule for the whole document.
SECONDS_PRECISION = 6

_HOSTNAME = socket.gethostname()


class ServiceMetrics:
    """Thread-safe counters for one server process; ``snapshot()`` is the wire shape."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._requests: Counter = Counter()
        self._responses: Counter = Counter()
        self._detect: defaultdict[str, list[float]] = defaultdict(lambda: [0, 0, 0.0])
        self._protect: defaultdict[str, list[float]] = defaultdict(lambda: [0, 0, 0.0])
        self._chunks = [0, 0, 0.0]  # chunks, rows, seconds
        self._request_latency: defaultdict[str, Histogram] = defaultdict(
            lambda: Histogram(DEFAULT_LATENCY_BUCKETS)
        )
        self._detect_latency: defaultdict[str, Histogram] = defaultdict(
            lambda: Histogram(DEFAULT_LATENCY_BUCKETS)
        )
        self._protect_latency: defaultdict[str, Histogram] = defaultdict(
            lambda: Histogram(DEFAULT_LATENCY_BUCKETS)
        )
        self._chunk_latency = Histogram(DEFAULT_LATENCY_BUCKETS)
        # Serving-layer counters (filled in by the pre-fork worker; the
        # legacy threading server leaves them at rest).
        self._connections = 0
        self._sheds = 0
        self._rate_limited = 0
        self._queue_depth = 0
        self._queue_limit: int | None = None

    # ------------------------------------------------------------- recording
    def record_request(self, route: str) -> None:
        with self._lock:
            self._requests[route] += 1

    def record_response(self, status: int) -> None:
        with self._lock:
            self._responses[str(status)] += 1

    def observe_request(self, route: str, seconds: float) -> None:
        """One served request's wall time, bucketed per route.

        Called once per request from the WSGI layer's ``finally`` — error
        responses are observed too, under whatever route was recognised
        (``"unknown"`` for 404s), so tail latencies include failures.
        """
        with self._lock:
            self._request_latency[route].observe(seconds)

    def record_detect(self, runner: str, rows: int, seconds: float) -> None:
        with self._lock:
            entry = self._detect[runner]
            entry[0] += 1
            entry[1] += rows
            entry[2] += seconds
            self._detect_latency[runner].observe(seconds)

    def record_protect(self, runner: str, rows: int, seconds: float) -> None:
        with self._lock:
            entry = self._protect[runner]
            entry[0] += 1
            entry[1] += rows
            entry[2] += seconds
            self._protect_latency[runner].observe(seconds)

    def record_chunk(self, rows: int, seconds: float) -> None:
        with self._lock:
            self._chunks[0] += 1
            self._chunks[1] += rows
            self._chunks[2] += seconds
            self._chunk_latency.observe(seconds)

    def record_connection(self) -> None:
        """One TCP connection accepted (many requests may follow on it)."""
        with self._lock:
            self._connections += 1

    def record_shed(self) -> None:
        """One connection refused with 503 because the admission queue was full."""
        with self._lock:
            self._sheds += 1

    def record_rate_limited(self) -> None:
        """One request refused with 429 by the per-tenant token bucket."""
        with self._lock:
            self._rate_limited += 1

    def record_queue(self, depth: int, limit: int) -> None:
        """The admission queue's current depth and configured limit."""
        with self._lock:
            self._queue_depth = int(depth)
            self._queue_limit = int(limit)

    # -------------------------------------------------------------- snapshot
    def snapshot(self) -> dict:
        """The JSON document described in the module docstring.

        All duration fields follow the one normalisation rule:
        seconds rounded to :data:`SECONDS_PRECISION` decimal places.
        """

        def timing(entry: list[float], first_key: str) -> dict:
            return {
                first_key: int(entry[0]),
                "rows": int(entry[1]),
                "seconds": round(entry[2], SECONDS_PRECISION),
            }

        with self._lock:
            return {
                "uptime_seconds": round(time.monotonic() - self._started, SECONDS_PRECISION),
                "requests": dict(sorted(self._requests.items())),
                "responses": dict(sorted(self._responses.items())),
                "detect": {
                    "runners": {
                        runner: timing(entry, "calls")
                        for runner, entry in sorted(self._detect.items())
                    },
                    "rows": int(sum(entry[1] for entry in self._detect.values())),
                },
                "protect": {
                    "runners": {
                        runner: timing(entry, "calls")
                        for runner, entry in sorted(self._protect.items())
                    },
                    "rows": int(sum(entry[1] for entry in self._protect.values())),
                },
                "worker_chunks": timing(self._chunks, "chunks"),
                # host/pid stamped per snapshot, not per construction: after a
                # pre-fork every worker inherits the same object but must
                # answer with its own identity.
                "server": {
                    "host": _HOSTNAME,
                    "pid": os.getpid(),
                    "connections": self._connections,
                    "queue_depth": self._queue_depth,
                    "queue_limit": self._queue_limit,
                    "sheds": self._sheds,
                    "rate_limited": self._rate_limited,
                },
                "latency": {
                    "requests": {
                        route: histogram.snapshot(precision=SECONDS_PRECISION)
                        for route, histogram in sorted(self._request_latency.items())
                    },
                    "detect": {
                        runner: histogram.snapshot(precision=SECONDS_PRECISION)
                        for runner, histogram in sorted(self._detect_latency.items())
                    },
                    "protect": {
                        runner: histogram.snapshot(precision=SECONDS_PRECISION)
                        for runner, histogram in sorted(self._protect_latency.items())
                    },
                    "worker_chunks": self._chunk_latency.snapshot(
                        precision=SECONDS_PRECISION
                    ),
                },
            }

    def prometheus(self) -> str:
        """The same counters in Prometheus text exposition format.

        Rendered under the lock from the live structures (no snapshot
        round-tripping), so a scrape is one lock acquisition.
        """
        identity = {"host": _HOSTNAME, "pid": str(os.getpid())}
        with self._lock:
            families = [
                MetricFamily(
                    "repro_uptime_seconds",
                    "gauge",
                    "Seconds since this server process started.",
                    [({}, time.monotonic() - self._started)],
                ),
                MetricFamily(
                    "repro_server_info",
                    "gauge",
                    "Identity of the process answering this scrape (pre-fork: one per worker).",
                    [(identity, 1)],
                ),
                MetricFamily(
                    "repro_connections_total",
                    "counter",
                    "TCP connections accepted by this worker (keep-alive: many requests each).",
                    [({}, self._connections)],
                ),
                MetricFamily(
                    "repro_queue_depth",
                    "gauge",
                    "Connections waiting in this worker's admission queue right now.",
                    [({}, self._queue_depth)],
                ),
                MetricFamily(
                    "repro_queue_limit",
                    "gauge",
                    "Configured admission-queue limit (0 = legacy threading server).",
                    [({}, self._queue_limit or 0)],
                ),
                MetricFamily(
                    "repro_queue_sheds_total",
                    "counter",
                    "Connections shed with 503 because the admission queue was full.",
                    [({}, self._sheds)],
                ),
                MetricFamily(
                    "repro_rate_limited_total",
                    "counter",
                    "Requests refused with 429 by the per-tenant token bucket.",
                    [({}, self._rate_limited)],
                ),
                MetricFamily(
                    "repro_requests_total",
                    "counter",
                    "Requests per recognised route (unknown = unmatched path).",
                    [({"route": route}, count) for route, count in sorted(self._requests.items())],
                ),
                MetricFamily(
                    "repro_responses_total",
                    "counter",
                    "Responses per HTTP status sent.",
                    [({"status": status}, count) for status, count in sorted(self._responses.items())],
                ),
                MetricFamily(
                    "repro_detect_rows_total",
                    "counter",
                    "Rows examined by detect, per runner.",
                    [({"runner": runner}, entry[1]) for runner, entry in sorted(self._detect.items())],
                ),
                MetricFamily(
                    "repro_protect_rows_total",
                    "counter",
                    "Rows protected, per runner.",
                    [({"runner": runner}, entry[1]) for runner, entry in sorted(self._protect.items())],
                ),
                MetricFamily(
                    "repro_worker_chunk_rows_total",
                    "counter",
                    "Rows served over POST /internal/detect-votes.",
                    [({}, self._chunks[1])],
                ),
                MetricFamily(
                    "repro_request_duration_seconds",
                    "histogram",
                    "Wall time per served request, by route.",
                    [
                        ({"route": route}, histogram)
                        for route, histogram in sorted(self._request_latency.items())
                    ],
                ),
                MetricFamily(
                    "repro_detect_duration_seconds",
                    "histogram",
                    "Wall time per detect call, by runner.",
                    [
                        ({"runner": runner}, histogram)
                        for runner, histogram in sorted(self._detect_latency.items())
                    ],
                ),
                MetricFamily(
                    "repro_protect_duration_seconds",
                    "histogram",
                    "Wall time per protect call, by runner.",
                    [
                        ({"runner": runner}, histogram)
                        for runner, histogram in sorted(self._protect_latency.items())
                    ],
                ),
                MetricFamily(
                    "repro_worker_chunk_duration_seconds",
                    "histogram",
                    "Wall time per detect-votes chunk served.",
                    [({}, self._chunk_latency)],
                ),
            ]
            return render_prometheus(families)
