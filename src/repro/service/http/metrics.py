"""In-process request/throughput counters behind the ``/metrics`` endpoint.

A fleet of ``repro serve`` processes is only operable if each member can
answer "what have you been doing": the coordinator needs to see chunks
landing on every worker, and a single-box server needs request counts to
size itself.  :class:`ServiceMetrics` is the minimal, dependency-free
answer — monotonic counters guarded by one lock, snapshotted as a JSON
document by ``GET /metrics`` (no auth, like ``/healthz``: the counters name
routes and runners, never tenants' data or tokens).

What is counted:

* **requests** — per recognised route (``detect``, ``protect``,
  ``detect_votes``, …), incremented when routing succeeds;
* **responses** — per HTTP status actually sent (including error paths);
* **detect** — per-runner calls / rows examined / wall seconds, so a
  coordinator's ``remote`` timings sit next to its workers' chunk timings;
* **protect** — per-runner calls / rows protected / wall seconds, mirroring
  detect now that protect's pass 2 runs on a pluggable runner too;
* **worker_chunks** — the worker side of distributed detection: chunks
  served over ``POST /internal/detect-votes``, their rows and seconds.

Counters reset with the process; scrape-and-diff is the consumer's job.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, defaultdict

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Thread-safe counters for one server process; ``snapshot()`` is the wire shape."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._requests: Counter = Counter()
        self._responses: Counter = Counter()
        self._detect: defaultdict[str, list[float]] = defaultdict(lambda: [0, 0, 0.0])
        self._protect: defaultdict[str, list[float]] = defaultdict(lambda: [0, 0, 0.0])
        self._chunks = [0, 0, 0.0]  # chunks, rows, seconds

    # ------------------------------------------------------------- recording
    def record_request(self, route: str) -> None:
        with self._lock:
            self._requests[route] += 1

    def record_response(self, status: int) -> None:
        with self._lock:
            self._responses[str(status)] += 1

    def record_detect(self, runner: str, rows: int, seconds: float) -> None:
        with self._lock:
            entry = self._detect[runner]
            entry[0] += 1
            entry[1] += rows
            entry[2] += seconds

    def record_protect(self, runner: str, rows: int, seconds: float) -> None:
        with self._lock:
            entry = self._protect[runner]
            entry[0] += 1
            entry[1] += rows
            entry[2] += seconds

    def record_chunk(self, rows: int, seconds: float) -> None:
        with self._lock:
            self._chunks[0] += 1
            self._chunks[1] += rows
            self._chunks[2] += seconds

    # -------------------------------------------------------------- snapshot
    def snapshot(self) -> dict:
        """One JSON-able document: everything above plus process uptime."""

        def timing(entry: list[float], first_key: str) -> dict:
            return {
                first_key: int(entry[0]),
                "rows": int(entry[1]),
                "seconds": round(entry[2], 6),
            }

        with self._lock:
            return {
                "uptime_seconds": round(time.monotonic() - self._started, 3),
                "requests": dict(sorted(self._requests.items())),
                "responses": dict(sorted(self._responses.items())),
                "detect": {
                    "runners": {
                        runner: timing(entry, "calls")
                        for runner, entry in sorted(self._detect.items())
                    },
                    "rows": int(sum(entry[1] for entry in self._detect.values())),
                },
                "protect": {
                    "runners": {
                        runner: timing(entry, "calls")
                        for runner, entry in sorted(self._protect.items())
                    },
                    "rows": int(sum(entry[1] for entry in self._protect.values())),
                },
                "worker_chunks": timing(self._chunks, "chunks"),
            }
