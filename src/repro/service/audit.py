"""Append-only, hash-chained audit log of registry events.

A dispute verdict is only as credible as the history behind it: *when* was
the dataset protected, *what* statistic was registered, *who* asked for the
detect that preceded the claim?  The audit log records every successful
protect/detect/dispute/register event as one immutable record, and makes the
sequence tamper-evident by chaining digests — record *i* carries the digest
of record *i-1*, so editing, deleting, or reordering any record breaks every
digest after it.  Verification walks the chain and reports the exact index
of the first broken record.

Record format
-------------

One JSON object per record with exactly these keys::

    {
      "index":   0,                  # position in the chain, dense from 0
      "prev":    "000…0",            # digest of record index-1 (64 zeros at genesis)
      "ts":      1754650000.123456,  # unix seconds, 6 decimal places
      "event":   "protect",          # register | token | protect | detect |
                                     # dispute | claim | migrate
      "tenant":  "alice",            # or null for vault-level events
      "dataset": "trial-7",          # or null
      "payload": {...},              # event-specific facts (never secrets)
      "digest":  "ab12…"            # sha256 over the record minus this key
    }

``digest`` is ``sha256`` of the canonical JSON serialisation (sorted keys,
no whitespace) of the record *without* its ``digest`` key.  The scheme is
deliberately reimplementable from this paragraph alone —
``tools/check_audit.py`` does exactly that, sharing no code with this
module, so an auditor needs nothing but the chain file and the stdlib.

Storage
-------

The file backend appends JSONL to ``audit.log`` under the vault's advisory
lock (O_APPEND + fsync per record); the SQLite backend inserts rows into the
``audit`` table of ``registry.db`` inside a ``BEGIN IMMEDIATE`` transaction.
Both serialise the read-last/append step, so concurrent writers extend the
chain instead of forking it.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Iterator

from repro.service.locking import FileLock, lock_path_for

__all__ = [
    "GENESIS_DIGEST",
    "AUDIT_EVENTS",
    "AuditChainError",
    "AuditRecord",
    "FileAuditLog",
    "SQLiteAuditLog",
    "record_digest",
    "verify_records",
]

#: ``prev`` of the first record: 64 zeros, the width of a sha256 hex digest.
GENESIS_DIGEST = "0" * 64

#: The event vocabulary (informative, not enforced — forward compatible).
AUDIT_EVENTS = ("register", "token", "protect", "detect", "dispute", "claim", "migrate")

_RECORD_KEYS = frozenset({"index", "prev", "ts", "event", "tenant", "dataset", "payload", "digest"})


class AuditChainError(RuntimeError):
    """A broken audit chain, pinpointing the first bad record.

    ``index`` is the position (0-based) of the first record that fails
    verification; ``reason`` says how it fails.
    """

    def __init__(self, index: int, reason: str) -> None:
        super().__init__(f"audit chain broken at record {index}: {reason}")
        self.index = index
        self.reason = reason


def _canonical(body: dict) -> str:
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def record_digest(body: dict) -> str:
    """sha256 over the canonical JSON of a record body (sans ``digest``)."""
    return hashlib.sha256(_canonical(body).encode("utf-8")).hexdigest()


def build_record(
    index: int,
    prev: str,
    event: str,
    tenant: str | None,
    dataset: str | None,
    payload: dict,
    *,
    ts: float | None = None,
) -> dict:
    """A fully-formed, digest-sealed audit record."""
    body = {
        "index": index,
        "prev": prev,
        "ts": round(time.time() if ts is None else ts, 6),
        "event": event,
        "tenant": tenant,
        "dataset": dataset,
        "payload": payload,
    }
    return {**body, "digest": record_digest(body)}


class AuditRecord(dict):
    """A verified audit record (a plain dict with attribute sugar)."""

    @property
    def index(self) -> int:
        return self["index"]

    @property
    def event(self) -> str:
        return self["event"]

    @property
    def digest(self) -> str:
        return self["digest"]


def _check_record(doc: dict, index: int, prev: str) -> None:
    if not isinstance(doc, dict):
        raise AuditChainError(index, "record is not a JSON object")
    missing = _RECORD_KEYS - doc.keys()
    if missing:
        raise AuditChainError(index, f"missing keys: {', '.join(sorted(missing))}")
    extra = doc.keys() - _RECORD_KEYS
    if extra:
        raise AuditChainError(index, f"unexpected keys: {', '.join(sorted(extra))}")
    if doc["index"] != index:
        raise AuditChainError(index, f"index discontinuity (found {doc['index']!r})")
    if doc["prev"] != prev:
        raise AuditChainError(index, "prev digest does not match the preceding record")
    body = {key: value for key, value in doc.items() if key != "digest"}
    if record_digest(body) != doc["digest"]:
        raise AuditChainError(index, "digest mismatch (record was modified)")


def verify_records(records) -> int:
    """Walk *records* checking linkage and digests; return the chain length.

    Raises :class:`AuditChainError` naming the first failing index.  An
    empty chain verifies trivially (length 0).
    """
    prev = GENESIS_DIGEST
    index = 0
    for doc in records:
        _check_record(doc, index, prev)
        prev = doc["digest"]
        index += 1
    return index


class _AuditLogBase:
    """Shared verification surface over the storage-specific logs."""

    def verify(self) -> int:
        """Chain length when intact; :class:`AuditChainError` when not."""
        return verify_records(self.entries())

    def entries(self) -> Iterator[AuditRecord]:  # pragma: no cover - interface
        raise NotImplementedError

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())


class FileAuditLog(_AuditLogBase):
    """JSONL chain in ``audit.log``, appended under the vault's file lock.

    The writer keeps a cached tail (byte offset + last digest) and catches up
    by reading only the bytes other processes appended since — appends stay
    O(new records), not O(chain length).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = os.fspath(path)
        self._lock_path = lock_path_for(self._path)
        self._offset = 0
        self._next_index = 0
        self._last_digest = GENESIS_DIGEST

    @property
    def path(self) -> str:
        return self._path

    @property
    def exists(self) -> bool:
        return os.path.exists(self._path)

    def append(
        self,
        event: str,
        tenant: str | None,
        *,
        dataset: str | None = None,
        payload: dict | None = None,
    ) -> AuditRecord:
        """Seal one record onto the chain and fsync it to disk."""
        with FileLock(self._lock_path):
            self._catch_up()
            record = build_record(
                self._next_index,
                self._last_digest,
                event,
                tenant,
                dataset,
                payload or {},
            )
            line = (_canonical(record) + "\n").encode("utf-8")
            fd = os.open(self._path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o600)
            try:
                os.write(fd, line)
                os.fsync(fd)
            finally:
                os.close(fd)
            self._offset += len(line)
            self._next_index += 1
            self._last_digest = record["digest"]
        return AuditRecord(record)

    def append_raw(self, record: dict) -> None:
        """Append an already-sealed record (migration), verifying linkage."""
        with FileLock(self._lock_path):
            self._catch_up()
            _check_record(record, self._next_index, self._last_digest)
            line = (_canonical(record) + "\n").encode("utf-8")
            fd = os.open(self._path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o600)
            try:
                os.write(fd, line)
                os.fsync(fd)
            finally:
                os.close(fd)
            self._offset += len(line)
            self._next_index += 1
            self._last_digest = record["digest"]

    def _catch_up(self) -> None:
        """Advance the cached tail over records other processes appended.

        Called under the lock.  A shrunken file (external truncation) forces
        a rescan from byte 0; the records read are fully verified (linkage
        and digests), because appending on top of a broken chain would
        launder the damage — refuse loudly instead.
        """
        try:
            size = os.path.getsize(self._path)
        except OSError:
            self._offset, self._next_index, self._last_digest = 0, 0, GENESIS_DIGEST
            return
        if size < self._offset:
            self._offset, self._next_index, self._last_digest = 0, 0, GENESIS_DIGEST
        if size == self._offset:
            return
        with open(self._path, "rb") as handle:
            handle.seek(self._offset)
            tail = handle.read(size - self._offset)
        for raw in tail.splitlines():
            try:
                doc = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as error:
                raise AuditChainError(
                    self._next_index, f"malformed record on disk: {error}"
                ) from error
            _check_record(doc, self._next_index, self._last_digest)
            self._next_index += 1
            self._last_digest = doc["digest"]
        self._offset = size

    def entries(self) -> Iterator[AuditRecord]:
        """Every record in chain order (malformed lines raise with their index)."""
        if not os.path.exists(self._path):
            return
        with open(self._path, "rb") as handle:
            for index, raw in enumerate(handle):
                try:
                    doc = json.loads(raw.decode("utf-8"))
                except (ValueError, UnicodeDecodeError) as error:
                    raise AuditChainError(index, f"malformed record: {error}") from error
                yield AuditRecord(doc)


class SQLiteAuditLog(_AuditLogBase):
    """Chain rows in the ``audit`` table of a :class:`SQLiteRegistryBackend`.

    The read-last/insert step runs inside ``BEGIN IMMEDIATE``, so concurrent
    appenders across processes serialise on the database write lock and the
    chain stays linear.
    """

    def __init__(self, backend) -> None:
        self._backend = backend

    @property
    def path(self) -> str:
        return self._backend.path

    @property
    def exists(self) -> bool:
        return self._backend.exists

    def append(
        self,
        event: str,
        tenant: str | None,
        *,
        dataset: str | None = None,
        payload: dict | None = None,
    ) -> AuditRecord:
        from repro.service.backends import _Transaction

        conn = self._backend.connection()
        with _Transaction(conn):
            row = conn.execute(
                "SELECT idx, digest FROM audit ORDER BY idx DESC LIMIT 1"
            ).fetchone()
            index = row[0] + 1 if row is not None else 0
            prev = row[1] if row is not None else GENESIS_DIGEST
            record = build_record(index, prev, event, tenant, dataset, payload or {})
            conn.execute(
                "INSERT INTO audit (idx, prev, ts, event, tenant, dataset, payload, digest) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    record["index"],
                    record["prev"],
                    record["ts"],
                    record["event"],
                    record["tenant"],
                    record["dataset"],
                    _canonical(record["payload"]),
                    record["digest"],
                ),
            )
        return AuditRecord(record)

    def append_raw(self, record: dict) -> None:
        from repro.service.backends import _Transaction

        conn = self._backend.connection()
        with _Transaction(conn):
            row = conn.execute(
                "SELECT idx, digest FROM audit ORDER BY idx DESC LIMIT 1"
            ).fetchone()
            index = row[0] + 1 if row is not None else 0
            prev = row[1] if row is not None else GENESIS_DIGEST
            _check_record(record, index, prev)
            conn.execute(
                "INSERT INTO audit (idx, prev, ts, event, tenant, dataset, payload, digest) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    record["index"],
                    record["prev"],
                    record["ts"],
                    record["event"],
                    record["tenant"],
                    record["dataset"],
                    _canonical(record["payload"]),
                    record["digest"],
                ),
            )

    def entries(self) -> Iterator[AuditRecord]:
        rows = self._backend.connection().execute(
            "SELECT idx, prev, ts, event, tenant, dataset, payload, digest "
            "FROM audit ORDER BY idx"
        )
        for position, row in enumerate(rows):
            idx, prev, ts, event, tenant, dataset, payload, digest = row
            try:
                parsed = json.loads(payload)
            except ValueError as error:
                raise AuditChainError(position, f"malformed payload: {error}") from error
            yield AuditRecord(
                {
                    "index": idx,
                    "prev": prev,
                    "ts": ts,
                    "event": event,
                    "tenant": tenant,
                    "dataset": dataset,
                    "payload": parsed,
                    "digest": digest,
                }
            )


#: Either storage flavour — the facades only use the shared surface.
AuditLog = FileAuditLog | SQLiteAuditLog
