"""The machine-readable report shapes shared by the CLI and the HTTP frontend.

``repro detect --json`` and ``POST .../detect`` must emit the *same* JSON
document — the CI smoke job, the HTTP client and any operator tooling parse
one shape, not two.  These builders are that single source of truth: the CLI
prints them, the WSGI app serialises them onto the wire, and the test suites
assert both against the same keys.
"""

from __future__ import annotations

from repro.service.api import DetectOutcome
from repro.watermarking.mark import Mark, mark_loss
from repro.watermarking.ownership import DisputeVerdict

__all__ = ["DEFAULT_MAX_LOSS", "detect_report", "dispute_report", "error_payload"]

#: Mark-loss threshold below which a detection counts as a positive match.
DEFAULT_MAX_LOSS = 0.1


def detect_report(
    outcome: DetectOutcome,
    *,
    expected_mark: str | None = None,
    max_loss: float = DEFAULT_MAX_LOSS,
) -> dict:
    """The detect JSON document: the outcome plus the ``ok`` verdict.

    *expected_mark* overrides the vault's registered mark (the operator may
    compare against an externally retained one).  ``ok`` is ``None`` when
    there is nothing to compare against — an unregistered dataset is "no
    verdict", not a failure.
    """
    expected = expected_mark or outcome.expected_mark
    loss = (
        mark_loss(Mark.from_string(expected), Mark.from_string(outcome.mark))
        if expected
        else None
    )
    payload = outcome.to_json()
    payload["expected_mark"] = expected
    payload["mark_loss"] = loss
    payload["ok"] = None if loss is None else loss <= max_loss
    return payload


def dispute_report(dataset_id: str, verdict: DisputeVerdict) -> dict:
    """The dispute JSON document: per-claim assessments plus the winner."""
    return {
        "dataset": dataset_id,
        "winner": verdict.winner,
        "valid_claimants": verdict.valid_claimants,
        "assessments": [
            {
                "claimant": assessment.claimant,
                "valid": assessment.valid,
                "decryption_ok": assessment.decryption_ok,
                "statistic_ok": assessment.statistic_ok,
                "mark_matches": assessment.mark_matches,
                "mark_bit_errors": assessment.mark_bit_errors,
            }
            for assessment in verdict.assessments
        ],
    }


def error_payload(message: str) -> dict:
    """The uniform failure document: ``{"error": <message>}``, nothing else."""
    return {"error": message}
