"""Command-line interface: protect and verify CSV tables from the shell.

Two subcommands wrap the :class:`~repro.framework.pipeline.ProtectionFramework`
for operators who work with flat files rather than Python code::

    python -m repro protect raw.csv protected.csv \
        --k 20 --eta 75 --encryption-key E --watermark-secret W

    python -m repro detect protected.csv \
        --eta 75 --encryption-key E --watermark-secret W --expected-mark 1010...

``protect`` reads a CSV with the paper's schema
``ssn, age, zip_code, doctor, symptom, prescription``, runs binning +
watermarking, writes the outsourced CSV and prints the mark the owner must
retain.  ``detect`` re-derives the embedding parameters from the same secrets
and reports the recovered mark (and, when ``--expected-mark`` is given, the
mark loss).  The framework is deterministic, so the same secrets always
reproduce the same keys.
"""

from __future__ import annotations

import argparse
import sys

from repro.binning.binner import BinnedTable
from repro.binning.kanonymity import EnforcementMode, KAnonymitySpec
from repro.dht.node import Interval
from repro.framework.pipeline import ProtectionFramework
from repro.metrics.usage_metrics import UsageMetrics
from repro.ontology.registry import standard_ontology
from repro.relational.schema import medical_schema
from repro.relational.table import Table
from repro.watermarking.mark import Mark, mark_loss

__all__ = ["main", "build_parser"]


def _framework(args: argparse.Namespace) -> ProtectionFramework:
    trees = dict(standard_ontology().items())
    return ProtectionFramework(
        trees,
        UsageMetrics.uniform_depth(trees, args.metrics_depth),
        KAnonymitySpec(k=args.k, mode=EnforcementMode.MONO, epsilon=args.epsilon),
        encryption_key=args.encryption_key,
        watermark_secret=args.watermark_secret,
        eta=args.eta,
        mark_length=args.mark_length,
        copies=args.copies,
    )


def _load_raw_table(path: str) -> Table:
    return Table.from_csv(path, medical_schema())


def _load_protected_table(path: str, framework: ProtectionFramework, k: int) -> BinnedTable:
    """Rebuild a :class:`BinnedTable` view of an outsourced CSV for detection.

    Detection only needs the trees and the two frontiers; the ultimate
    frontier is not stored in the CSV, so the root-to-leaf resolution of each
    cell value (``Val2Nd`` without candidates) is used instead — which is
    exactly what an owner examining a table found in the wild has to do.
    """
    trees = dict(standard_ontology().items())
    schema = medical_schema()
    import csv

    table = Table(schema)
    with open(path, newline="", encoding="utf-8") as handle:
        for raw in csv.DictReader(handle):
            row = dict(raw)
            # Age cells are serialised intervals like "[25,30)"; keep them as
            # Interval objects so the DHT can resolve them.
            age = row["age"]
            if isinstance(age, str) and age.startswith("["):
                lower, upper = age.strip("[)").split(",")
                row["age"] = Interval(float(lower), float(upper))
            table.insert(row)
    quasi = tuple(column.name for column in schema.quasi_identifying_columns)
    return BinnedTable(
        table=table,
        trees={column: trees[column] for column in quasi},
        identifying_columns=tuple(column.name for column in schema.identifying_columns),
        quasi_columns=quasi,
        # The detector walks up from whatever node a cell resolves to, so the
        # leaf cut is a safe stand-in for the (unknown) ultimate frontier.
        ultimate_nodes={column: tuple(leaf.name for leaf in trees[column].leaves()) for column in quasi},
        maximal_nodes={
            column: tuple(
                node.name
                for node in UsageMetrics.uniform_depth(trees, 1).maximal_nodes(column, trees[column])
            )
            for column in quasi
        },
        k=k,
    )


def _cmd_protect(args: argparse.Namespace) -> int:
    framework = _framework(args)
    table = _load_raw_table(args.input)
    protected = framework.protect(table)

    export = protected.outsourced_table.copy()
    for row in export:
        row["age"] = str(row["age"])
    export.to_csv(args.output)

    result = protected.binning_result
    print(f"protected {len(table)} rows -> {args.output}")
    print(f"  binning information loss : {result.normalized_information_loss:.2%}")
    print(f"  cells changed by watermark: {protected.embedding_report.cells_changed}")
    print(f"  registered statistic v    : {protected.registered_statistic:.0f}")
    print(f"  mark F(v) (retain this)   : {protected.mark}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    framework = _framework(args)
    binned = _load_protected_table(args.input, framework, args.k)
    report = framework.detect(binned)
    print(f"examined {len(binned.table)} rows from {args.input}")
    print(f"  recovered mark : {report.mark}")
    print(f"  positions voted: {report.positions_with_votes} (coverage {report.coverage:.0%})")
    if args.expected_mark:
        expected = Mark.from_string(args.expected_mark)
        loss = mark_loss(expected, report.mark)
        print(f"  expected mark  : {expected}")
        print(f"  mark loss      : {loss:.0%}")
        return 0 if loss <= args.max_loss else 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--k", type=int, default=20, help="k-anonymity parameter (default 20)")
        sub.add_argument("--epsilon", type=int, default=5, help="k + epsilon margin of Section 6")
        sub.add_argument("--eta", type=int, default=75, help="selection modulus (default 75)")
        sub.add_argument("--mark-length", type=int, default=20, help="mark length in bits")
        sub.add_argument("--copies", type=int, default=4, help="mark replication factor")
        sub.add_argument("--metrics-depth", type=int, default=1, help="usage-metric frontier depth")
        sub.add_argument("--encryption-key", required=True, help="identifier encryption secret")
        sub.add_argument("--watermark-secret", required=True, help="watermarking master secret")

    protect = subparsers.add_parser("protect", help="bin + watermark a raw CSV table")
    protect.add_argument("input", help="raw CSV with columns ssn,age,zip_code,doctor,symptom,prescription")
    protect.add_argument("output", help="path of the outsourced CSV to write")
    add_common(protect)
    protect.set_defaults(func=_cmd_protect)

    detect = subparsers.add_parser("detect", help="recover the mark from an outsourced CSV table")
    detect.add_argument("input", help="outsourced CSV to examine")
    detect.add_argument("--expected-mark", help="bit string to compare the recovered mark against")
    detect.add_argument("--max-loss", type=float, default=0.1, help="mark-loss threshold for exit status")
    add_common(detect)
    detect.set_defaults(func=_cmd_detect)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
