"""Command-line interface: protect, detect and litigate CSV tables from the shell.

Two ways to hold the secrets:

**Vault mode** (recommended) — a persistent vault directory owns the secrets,
the registered statistics and the ownership claims, so every command works
from a cold process::

    python -m repro vault init V --tenant owner --k 20 --eta 75
    python -m repro protect raw.csv protected.csv --vault V
    python -m repro detect suspect.csv --vault V --dataset raw --workers 4
    python -m repro dispute suspect.csv --vault V --dataset raw

**Explicit-secret mode** (legacy) — the operator passes both secrets on every
invocation and retains the printed mark themselves::

    python -m repro protect raw.csv protected.csv \
        --k 20 --eta 75 --encryption-key E --watermark-secret W
    python -m repro detect protected.csv \
        --eta 75 --encryption-key E --watermark-secret W --expected-mark 1010...

**Remote mode** — a third way to hold the secrets: a server holds the vault
and the operator holds only a bearer token.  ``repro serve`` exposes a vault
over HTTP (see :mod:`repro.service.http`); protect/detect/dispute/status
then run against ``--url`` with ``--token``, streaming the CSVs both ways::

    python -m repro vault token V --tenant owner           # one-time
    python -m repro serve --vault V --port 8765 &
    python -m repro protect raw.csv protected.csv \
        --url http://127.0.0.1:8765 --token T
    python -m repro detect protected.csv --url http://127.0.0.1:8765 \
        --token T --dataset raw --runner process

Every subcommand accepts ``--json`` for a machine-readable report on stdout
(one JSON object; human text goes to stdout only in the default mode), which
is what the CI smoke job and the service frontends consume — failures too:
``--json`` failures print ``{"error": ...}``.  Exit codes are uniform across
modes: 0 success, 1 negative verdict (mark loss over threshold, dispute
lost), 2 operational error (missing vault, unknown tenant/dataset, bad CSV,
unreachable server).  The framework is deterministic, so the same secrets
always reproduce the same keys.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.binning.binner import BinnedTable
from repro.binning.kanonymity import EnforcementMode, KAnonymitySpec
from repro.framework.pipeline import ProtectionFramework
from repro.metrics.usage_metrics import UsageMetrics
from repro.ontology.registry import standard_ontology
from repro.relational.io import iter_csv_rows, write_csv_rows
from repro.relational.schema import medical_schema
from repro.relational.table import Table
from repro.service.api import DEFAULT_TENANT, ProtectionService, dataset_id_for, suspect_view
from repro.service.executor import ShardExecutor
from repro.service.http.app import ProtectionApp
from repro.service.http.client import HTTPServiceError, ServiceClient
from repro.service.http.prefork import (
    DEFAULT_HANDLER_THREADS,
    DEFAULT_KEEPALIVE_SECONDS,
    DEFAULT_MAX_REQUESTS_PER_CONNECTION,
    DEFAULT_QUEUE_LIMIT,
    PreForkServer,
    RateLimiter,
)
from repro.service.reports import DEFAULT_MAX_LOSS, detect_report, dispute_report, error_payload
from repro.service.runners import REMOTE_RUNNER_NAME, RUNNER_NAMES, FleetError, RemoteRunner
from repro.service.audit import AuditChainError
from repro.service.backends import BACKEND_NAMES
from repro.service.vault import KeyVault, VaultError, migrate_vault
from repro.telemetry.log import configure_json_logging
from repro.telemetry.trace import Tracer, activate as _trace_activate, format_span_tree
from repro.watermarking.ecc import resolve_code
from repro.watermarking.mark import Mark, mark_loss

__all__ = ["main", "build_parser"]

#: Exit statuses shared by every subcommand and both transports.
EXIT_OK = 0
EXIT_VERDICT = 1
EXIT_ERROR = 2

#: Embedding parameters shared by protect/detect (explicit-secret mode) and
#: ``vault init``.  In vault mode the tenant record owns them, so passing any
#: of these flags alongside ``--vault`` is rejected rather than ignored.
PARAM_DEFAULTS = {
    "k": 20,
    "epsilon": 5,
    "eta": 75,
    "mark_length": 20,
    "copies": 4,
    "metrics_depth": 1,
}


def _framework(args: argparse.Namespace) -> ProtectionFramework:
    trees = dict(standard_ontology().items())
    return ProtectionFramework(
        trees,
        UsageMetrics.uniform_depth(trees, args.metrics_depth),
        KAnonymitySpec(k=args.k, mode=EnforcementMode.MONO, epsilon=args.epsilon),
        encryption_key=args.encryption_key,
        watermark_secret=args.watermark_secret,
        eta=args.eta,
        mark_length=args.mark_length,
        copies=args.copies,
        code=getattr(args, "code", None),
    )


def _load_raw_table(path: str) -> Table:
    return Table.from_csv(path, medical_schema())


def _load_protected_table(path: str, k: int, metrics_depth: int = 1) -> BinnedTable:
    """Rebuild a :class:`BinnedTable` view of an outsourced CSV for detection.

    Parsing (including the ``[lower,upper)`` interval round trip) lives in
    :mod:`repro.relational.io`; the frontier stand-ins for a table found in
    the wild live in :func:`repro.service.api.suspect_view`.
    """
    schema = medical_schema()
    table = Table(schema, iter_csv_rows(path, schema))
    return suspect_view(
        table, dict(standard_ontology().items()), schema, k=k, metrics_depth=metrics_depth
    )


def _emit(args: argparse.Namespace, payload: dict, human_lines: list[str]) -> None:
    """One JSON object in ``--json`` mode, the human report otherwise.

    Under ``--trace`` the report additionally carries the assembled span
    tree: a ``"trace"`` key in JSON mode, an indented tree after the human
    lines otherwise.  By the time a command emits, all service work is done,
    so every span — including those ingested from pool workers and remote
    fleet members — is closed and present.
    """
    tracer = getattr(args, "_tracer", None)
    if tracer is not None:
        payload = dict(payload)
        payload["trace"] = tracer.to_json()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for line in human_lines:
            print(line)
        if tracer is not None:
            print(f"trace {tracer.trace_id}:")
            for line in format_span_tree(tracer.spans):
                print("  " + line)


def _service(args: argparse.Namespace) -> ProtectionService:
    return ProtectionService(KeyVault(args.vault))


def _client(args: argparse.Namespace) -> ServiceClient:
    return ServiceClient(args.url, getattr(args, "token", None))


def _runner_for(args: argparse.Namespace):
    """The runner to hand the service: a name, or a built :class:`RemoteRunner`.

    ``--runner remote`` needs the fleet configuration (``--worker-url``,
    ``--worker-token``) that a bare name cannot carry, so the instance is
    constructed here; an empty fleet raises :class:`ValueError`, which
    ``main`` turns into the uniform exit-2 ``{"error": ...}`` document.
    """
    if getattr(args, "runner", None) != REMOTE_RUNNER_NAME:
        return args.runner
    return RemoteRunner(
        args.worker_urls or [], token=args.worker_token, timeout=args.worker_timeout
    )


# ------------------------------------------------------------------- commands
def _cmd_vault_init(args: argparse.Namespace) -> int:
    vault = KeyVault.init(args.path, backend=args.backend)
    # Register through the service facade so the very first tenant lands on
    # the audit chain as record 0, like every later registration.
    record = ProtectionService(vault).register_tenant(
        args.tenant,
        encryption_key=args.encryption_key,
        watermark_secret=args.watermark_secret,
        eta=args.eta,
        k=args.k,
        epsilon=args.epsilon,
        mark_length=args.mark_length,
        copies=args.copies,
        metrics_depth=args.metrics_depth,
        code=args.code,
    )
    _emit(
        args,
        {
            "vault": vault.root,
            "backend": vault.backend,
            "tenant": record.tenant_id,
            "eta": record.eta,
            "k": record.k,
            "mark_length": record.mark_length,
            "copies": record.copies,
            "code": record.code,
        },
        [
            f"initialised vault {vault.root}",
            f"  backend    : {vault.backend}",
            f"  tenant     : {record.tenant_id}",
            f"  parameters : k={record.k} eta={record.eta} "
            f"mark_length={record.mark_length} copies={record.copies} code={record.code}",
            "  secrets    : stored in the vault (mode 0600); back the directory up securely",
        ],
    )
    return 0


def _cmd_vault_migrate(args: argparse.Namespace) -> int:
    source = KeyVault(args.source)
    destination = KeyVault.init(args.destination, backend=args.backend)
    summary = migrate_vault(source, destination)
    _emit(
        args,
        {
            "source": source.root,
            "destination": destination.root,
            "from_backend": source.backend,
            "to_backend": destination.backend,
            **summary,
        },
        [
            f"migrated vault {source.root} ({source.backend}) "
            f"-> {destination.root} ({destination.backend})",
            f"  tenants       : {summary['tenants']}",
            f"  claims        : {summary['claims']}",
            f"  audit records : {summary['audit_records']} (chain verified while copying)",
        ],
    )
    return EXIT_OK


def _cmd_audit_verify(args: argparse.Namespace) -> int:
    log = KeyVault(args.vault).audit_log()
    try:
        count = log.verify()
    except AuditChainError as error:
        payload = {"ok": False, "failed_index": error.index, "error": str(error)}
        _emit(args, payload, [f"audit chain BROKEN at record {error.index}: {error.reason}"])
        return EXIT_VERDICT
    head = None
    for record in log.entries():
        head = record["digest"]
    payload = {"ok": True, "records": count, "head": head}
    lines = [f"audit chain OK: {count} records"]
    if head is not None:
        lines.append(f"  head digest: {head}")
    _emit(args, payload, lines)
    return EXIT_OK


def _cmd_vault_status(args: argparse.Namespace) -> int:
    if args.url:
        status = _client(args).status(args.tenant)
    else:
        status = ProtectionService(KeyVault(args.path)).status()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return EXIT_OK
    backend = f" [{status['backend']}]" if status.get("backend") else ""
    print(f"vault {status.get('vault', args.url)}{backend}")
    for tenant, info in status["tenants"].items():
        print(f"  tenant {tenant}: k={info['k']} eta={info['eta']}")
        for dataset, details in info["datasets"].items():
            print(
                f"    dataset {dataset}: {details['rows']} rows, mark {details['mark']}, "
                f"claimants {', '.join(details['claimants']) or '-'}"
            )
    return EXIT_OK


def _cmd_vault_token(args: argparse.Namespace) -> int:
    vault = KeyVault(args.path)
    token = vault.issue_token(args.tenant)
    _emit(
        args,
        {"vault": vault.root, "tenant": args.tenant, "token": token},
        [
            f"issued bearer token for tenant {args.tenant}",
            f"  token: {token}",
            "  (only the SHA-256 digest is stored; re-run to rotate)",
        ],
    )
    return EXIT_OK


def _protect_lines(report: dict) -> list[str]:
    lines = [
        f"protected {report['rows']} rows -> {report['output']}",
        f"  tenant / dataset          : {report['tenant']} / {report['dataset']}",
        f"  binning information loss  : {report['information_loss']:.2%}",
        f"  cells changed by watermark: {report['cells_changed']}",
        f"  registered statistic v    : {report['registered_statistic']:.0f}",
        f"  mark F(v) (vaulted)       : {report['mark']}",
    ]
    if "runner" in report:
        lines.insert(
            2,
            f"  pass-2 runner / workers   : {report['runner']} / {report['workers']} "
            f"({report.get('chunks', 0)} chunks)",
        )
    return lines


def _cmd_protect(args: argparse.Namespace) -> int:
    if getattr(args, "runner", None) == REMOTE_RUNNER_NAME:
        # Raised (not parser.error'd) so --json callers get the uniform
        # exit-2 {"error": ...} document every other operational failure emits.
        raise ValueError(
            "protect: the remote runner is detect-only (protect ships rows, "
            "not votes); use --runner thread or --runner process"
        )
    if args.url:
        dataset = args.dataset or dataset_id_for(args.input)
        report = _client(args).protect(
            args.tenant,
            dataset,
            args.input,
            args.output,
            workers=args.workers,
            runner=args.runner,
        )
        _emit(args, report, _protect_lines(report))
        return EXIT_OK
    if args.vault:
        outcome = _service(args).protect(
            args.tenant,
            args.input,
            args.output,
            dataset_id=args.dataset,
            workers=args.workers,
            runner=args.runner,
        )
        _emit(args, outcome.to_json(), _protect_lines(outcome.to_json()))
        return EXIT_OK

    framework = _framework(args)
    table = _load_raw_table(args.input)
    protected = framework.protect(table)
    write_csv_rows(args.output, table.schema, protected.outsourced_table)

    result = protected.binning_result
    _emit(
        args,
        {
            "rows": len(table),
            "output": args.output,
            "information_loss": result.normalized_information_loss,
            "cells_changed": protected.embedding_report.cells_changed,
            "registered_statistic": protected.registered_statistic,
            "mark": str(protected.mark),
        },
        [
            f"protected {len(table)} rows -> {args.output}",
            f"  binning information loss : {result.normalized_information_loss:.2%}",
            f"  cells changed by watermark: {protected.embedding_report.cells_changed}",
            f"  registered statistic v    : {protected.registered_statistic:.0f}",
            f"  mark F(v) (retain this)   : {protected.mark}",
        ],
    )
    return 0


def _detect_lines(args: argparse.Namespace, payload: dict) -> list[str]:
    coverage = payload.get("coverage", 0.0)
    lines = [
        f"examined {payload['rows']} rows from {args.input}",
        f"  recovered mark : {payload['mark']}",
        f"  positions voted: {payload['positions_with_votes']} (coverage {coverage:.0%})",
    ]
    code = payload.get("code", "repetition")
    if code != "repetition":
        lines.append(f"  mark code      : {code} (corrected {payload.get('corrected_bits', 0)} bits)")
    if payload.get("expected_mark") is not None:
        lines += [
            f"  expected mark  : {payload['expected_mark']}",
            f"  mark loss      : {payload['mark_loss']:.0%}",
        ]
    return lines


def _detect_exit(payload: dict) -> int:
    # None = nothing to compare against (unregistered dataset), matching the
    # explicit-secret path; only an actual comparison yields a verdict.
    if payload.get("ok") is None:
        return EXIT_OK
    return EXIT_OK if payload["ok"] else EXIT_VERDICT


def _cmd_detect(args: argparse.Namespace) -> int:
    if args.url:
        payload = _client(args).detect(
            args.tenant,
            args.dataset or dataset_id_for(args.input),
            args.input,
            workers=args.workers,
            runner=args.runner,
            max_loss=args.max_loss,
            expected_mark=args.expected_mark,
            code=args.code,
        )
        _emit(args, payload, _detect_lines(args, payload))
        return _detect_exit(payload)
    if args.vault:
        outcome = _service(args).detect(
            args.tenant,
            args.input,
            dataset_id=args.dataset,
            workers=args.workers,
            runner=_runner_for(args),
            code=args.code,
        )
        payload = detect_report(
            outcome, expected_mark=args.expected_mark, max_loss=args.max_loss
        )
        _emit(args, payload, _detect_lines(args, payload))
        return _detect_exit(payload)

    framework = _framework(args)
    binned = _load_protected_table(args.input, args.k, args.metrics_depth)
    report = framework.detect(binned)
    payload: dict = {
        "rows": len(binned.table),
        "mark": str(report.mark),
        "coverage": report.coverage,
        "positions_with_votes": report.positions_with_votes,
        "code": report.code,
        "corrected_bits": report.corrected_bits,
        "bit_confidence": list(report.bit_confidence),
        "expected_mark": args.expected_mark or None,
        "mark_loss": None,
        "ok": None,
    }
    lines = [
        f"examined {len(binned.table)} rows from {args.input}",
        f"  recovered mark : {report.mark}",
        f"  positions voted: {report.positions_with_votes} (coverage {report.coverage:.0%})",
    ]
    if report.code != "repetition":
        lines.append(f"  mark code      : {report.code} (corrected {report.corrected_bits} bits)")
    exit_code = 0
    if args.expected_mark:
        expected = Mark.from_string(args.expected_mark)
        loss = mark_loss(expected, report.mark)
        payload["mark_loss"] = loss
        payload["ok"] = loss <= args.max_loss
        lines += [f"  expected mark  : {expected}", f"  mark loss      : {loss:.0%}"]
        exit_code = 0 if loss <= args.max_loss else 1
    _emit(args, payload, lines)
    return exit_code


def _cmd_dispute(args: argparse.Namespace) -> int:
    dataset = args.dataset or dataset_id_for(args.input)
    if args.url:
        payload = _client(args).dispute(args.tenant, dataset, args.input)
    else:
        verdict = _service(args).dispute(args.tenant, args.input, dataset_id=dataset)
        payload = dispute_report(dataset, verdict)
    lines = [f"dispute over {args.input}"]
    for assessment in payload["assessments"]:
        state = "VALID" if assessment["valid"] else "rejected"
        lines.append(
            f"  claim by {assessment['claimant']:<12}: {state} "
            f"(decrypt={assessment['decryption_ok']} statistic={assessment['statistic_ok']} "
            f"mark={assessment['mark_matches']})"
        )
    lines.append(f"  winner: {payload['winner'] or 'none (zero or several valid claims)'}")
    _emit(args, payload, lines)
    return EXIT_OK if payload["winner"] == args.tenant else EXIT_VERDICT


def _cmd_serve(args: argparse.Namespace) -> int:
    runner = _runner_for(args)
    executor = ShardExecutor(args.workers, runner=runner)
    service = ProtectionService(KeyVault(args.vault), executor=executor)
    app = ProtectionApp(
        service,
        admin_token=args.admin_token,
        max_upload_bytes=args.max_upload_mb * 1024 * 1024 if args.max_upload_mb else None,
        logger=configure_json_logging() if args.log_json else None,
    )
    rate_limiter = (
        RateLimiter(args.rate_limit, args.rate_burst) if args.rate_limit else None
    )
    # The pre-fork server is the serving layer even at --processes 1: the
    # single worker still gets keep-alive, the bounded admission queue and
    # graceful SIGTERM drain (docs/http.md, "Production serving").
    server = PreForkServer(
        app,
        args.host,
        args.port,
        processes=args.processes,
        keepalive_seconds=args.keepalive,
        max_requests_per_connection=args.max_requests_per_conn,
        queue_limit=args.queue_limit,
        handler_threads=args.handler_threads,
        rate_limiter=rate_limiter,
        metrics=app.metrics,
        verbose=args.verbose,
    )
    host, port = server.address
    url = f"http://{host}:{port}"
    fleet = list(getattr(runner, "worker_urls", ()))
    payload = {
        "url": url,
        "vault": service.vault.root,
        "runner": executor.runner_name,
        "workers": executor.max_workers,
        "registration": "admin-token" if args.admin_token else "open",
        "processes": server.processes,
        "reuseport": server.reuseport,
        "keepalive_seconds": args.keepalive,
        "queue_limit": args.queue_limit,
        "rate_limit": args.rate_limit,
    }
    lines = [
        f"serving vault {service.vault.root} at {url}",
        f"  runner / workers : {executor.runner_name} / {executor.max_workers}",
        f"  registration     : {'admin-token gated' if args.admin_token else 'open'}",
        f"  processes        : {server.processes} "
        f"({'SO_REUSEPORT' if server.reuseport else 'inherited socket'})",
        f"  keep-alive       : {args.keepalive:g}s idle, "
        f"{args.max_requests_per_conn} requests/connection, queue {args.queue_limit}",
    ]
    if args.rate_limit:
        lines.append(
            f"  rate limit       : {args.rate_limit:g} req/s per token "
            f"(burst {args.rate_burst or 'auto'}) per worker"
        )
    if fleet:
        payload["fleet"] = fleet
        lines.append(f"  worker fleet     : {', '.join(fleet)}")
    lines.append("  stop with Ctrl-C (SIGTERM drains gracefully)")
    # Workers are forked (and listening) before the URL is announced, so a
    # supervisor may connect the moment it parses this payload.
    server.start()
    _emit(args, payload, lines)
    sys.stdout.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return EXIT_OK


# --------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_params(sub: argparse.ArgumentParser, *, vault_aware: bool = False) -> None:
        # Vault-aware subcommands take their parameters from the tenant record;
        # explicit values there are a conflict (caught in main()), so the
        # parser-level default must be "not given" rather than the constant.
        def default_for(name: str):
            return None if vault_aware else PARAM_DEFAULTS[name]

        sub.add_argument("--k", type=int, default=default_for("k"), help="k-anonymity parameter (default 20)")
        sub.add_argument("--epsilon", type=int, default=default_for("epsilon"), help="k + epsilon margin of Section 6")
        sub.add_argument("--eta", type=int, default=default_for("eta"), help="selection modulus (default 75)")
        sub.add_argument("--mark-length", type=int, default=default_for("mark_length"), help="mark length in bits")
        sub.add_argument("--copies", type=int, default=default_for("copies"), help="mark replication factor")
        sub.add_argument("--metrics-depth", type=int, default=default_for("metrics_depth"), help="usage-metric frontier depth")

    def add_secrets(sub: argparse.ArgumentParser, *, required_without_vault: bool) -> None:
        help_suffix = " (required unless --vault is given)" if required_without_vault else ""
        sub.add_argument("--encryption-key", help="identifier encryption secret" + help_suffix)
        sub.add_argument("--watermark-secret", help="watermarking master secret" + help_suffix)

    def add_vault(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--vault", help="vault directory holding secrets and ownership records")
        sub.add_argument("--tenant", default=DEFAULT_TENANT, help="tenant id within the vault")
        sub.add_argument("--dataset", help="dataset id within the vault (default: input file stem)")

    def add_url(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--url", help="protection server base URL (client mode; see 'repro serve')")
        sub.add_argument("--token", help="bearer token for --url (see 'repro vault token')")

    def add_json(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--json", action="store_true", help="emit a machine-readable JSON report")

    def add_trace(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--trace",
            action="store_true",
            help="collect a cross-process span tree for this command; printed after "
            'the report (or embedded as the "trace" key in --json mode)',
        )

    def add_fleet(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--worker-url",
            action="append",
            dest="worker_urls",
            metavar="URL",
            help="remote worker base URL for --runner remote (repeat per worker)",
        )
        sub.add_argument(
            "--worker-token",
            help="bearer token presented to the --worker-url fleet (the workers' admin token)",
        )
        sub.add_argument(
            "--worker-timeout",
            type=float,
            help="per-chunk POST timeout in seconds (default 30; hung workers fail over)",
        )

    vault = subparsers.add_parser("vault", help="manage persistent protection vaults")
    vault_sub = vault.add_subparsers(dest="vault_command", required=True)
    vault_init = vault_sub.add_parser("init", help="create a vault and register its first tenant")
    vault_init.add_argument("path", help="vault directory to create")
    vault_init.add_argument("--tenant", default=DEFAULT_TENANT, help="tenant id to register")
    vault_init.add_argument(
        "--code",
        default="repetition",
        help='mark code used to encode/decode the mark (e.g. "repetition", "soft", "interleaved")',
    )
    vault_init.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        help="registry storage backend: file (zero-dep JSON, default) or sqlite "
        "(WAL registry.db, per-row mutations); also settable via a path scheme "
        "like sqlite:DIR or $REPRO_VAULT_BACKEND",
    )
    add_params(vault_init)
    add_secrets(vault_init, required_without_vault=False)
    add_json(vault_init)
    vault_init.set_defaults(func=_cmd_vault_init)
    vault_migrate = vault_sub.add_parser(
        "migrate",
        help="copy a vault's registry and audit chain into a fresh vault on another backend",
    )
    vault_migrate.add_argument("source", help="existing vault directory to copy from")
    vault_migrate.add_argument("destination", help="vault directory to create")
    vault_migrate.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        help="backend of the destination vault (default: file, or the path scheme)",
    )
    add_json(vault_migrate)
    vault_migrate.set_defaults(func=_cmd_vault_migrate)
    vault_status = vault_sub.add_parser("status", help="list a vault's tenants and datasets")
    vault_status.add_argument("path", nargs="?", help="vault directory to inspect")
    vault_status.add_argument(
        "--tenant", default=None, help="restrict to one tenant (required scope in --url mode)"
    )
    add_url(vault_status)
    add_json(vault_status)
    vault_status.set_defaults(func=_cmd_vault_status)
    vault_token = vault_sub.add_parser(
        "token", help="issue (or rotate) a tenant's bearer token for the HTTP frontend"
    )
    vault_token.add_argument("path", help="vault directory holding the tenant")
    vault_token.add_argument("--tenant", default=DEFAULT_TENANT, help="tenant id within the vault")
    add_json(vault_token)
    vault_token.set_defaults(func=_cmd_vault_token)

    audit = subparsers.add_parser(
        "audit", help="inspect and verify a vault's hash-chained audit log"
    )
    audit_sub = audit.add_subparsers(dest="audit_command", required=True)
    audit_verify = audit_sub.add_parser(
        "verify",
        help="walk the chain, recomputing every digest; exit 1 with the exact "
        "failing index when any record was edited, deleted or reordered",
    )
    audit_verify.add_argument("--vault", required=True, help="vault directory holding the chain")
    add_json(audit_verify)
    audit_verify.set_defaults(func=_cmd_audit_verify)

    protect = subparsers.add_parser("protect", help="bin + watermark a raw CSV table")
    protect.add_argument("input", help="raw CSV with columns ssn,age,zip_code,doctor,symptom,prescription")
    protect.add_argument("output", help="path of the outsourced CSV to write")
    protect.add_argument("--workers", type=int, help="parallel pass-2 (rewrite+embed) workers")
    protect.add_argument(
        "--runner",
        choices=(*RUNNER_NAMES, REMOTE_RUNNER_NAME),
        help="where pass 2 runs: thread (default) or process "
        "(remote is detect-only and is rejected)",
    )
    protect.add_argument(
        "--code",
        help="mark code for embedding (explicit-secret mode only; vault tenants fix it at registration)",
    )
    add_params(protect, vault_aware=True)
    add_secrets(protect, required_without_vault=True)
    add_vault(protect)
    add_url(protect)
    add_json(protect)
    add_trace(protect)
    protect.set_defaults(func=_cmd_protect)

    detect = subparsers.add_parser("detect", help="recover the mark from an outsourced CSV table")
    detect.add_argument("input", help="outsourced CSV to examine")
    detect.add_argument("--expected-mark", help="bit string to compare the recovered mark against")
    detect.add_argument(
        "--max-loss", type=float, default=DEFAULT_MAX_LOSS, help="mark-loss threshold for exit status"
    )
    detect.add_argument("--workers", type=int, help="shard-parallel detection workers")
    detect.add_argument(
        "--runner",
        choices=(*RUNNER_NAMES, REMOTE_RUNNER_NAME),
        help="where shard votes are collected: thread (default), process, "
        "or remote — a --worker-url fleet (vault mode)",
    )
    detect.add_argument(
        "--code",
        help='decode with this mark code (e.g. "soft") instead of the registered one; '
        "only codes sharing the repetition encoder can be swapped at detect time",
    )
    add_fleet(detect)
    add_params(detect, vault_aware=True)
    add_secrets(detect, required_without_vault=True)
    add_vault(detect)
    add_url(detect)
    add_json(detect)
    add_trace(detect)
    detect.set_defaults(func=_cmd_detect)

    dispute = subparsers.add_parser(
        "dispute", help="resolve ownership of a disputed CSV from vaulted claims"
    )
    dispute.add_argument("input", help="disputed CSV to assess")
    dispute.add_argument("--vault", help="vault directory holding the claims")
    dispute.add_argument("--tenant", default=DEFAULT_TENANT, help="tenant expected to prevail")
    dispute.add_argument("--dataset", help="dataset id of the claims (default: input file stem)")
    add_url(dispute)
    add_json(dispute)
    dispute.set_defaults(func=_cmd_dispute)

    serve = subparsers.add_parser(
        "serve", help="expose a vault's protection service over HTTP (pre-fork keep-alive server)"
    )
    serve.add_argument("--vault", required=True, help="vault directory to serve")
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765, help="bind port (0 = ephemeral, printed)")
    serve.add_argument(
        "--runner",
        choices=(*RUNNER_NAMES, REMOTE_RUNNER_NAME),
        default="thread",
        help="default shard runner for detects (remote = coordinate a --worker-url fleet)",
    )
    serve.add_argument("--workers", type=int, help="shard workers per detect (default: cpu-bound)")
    serve.add_argument(
        "--processes",
        type=int,
        default=1,
        help="pre-fork this many worker processes sharing the port via "
        "SO_REUSEPORT (size to CPU cores; default 1)",
    )
    serve.add_argument(
        "--keepalive",
        type=float,
        default=DEFAULT_KEEPALIVE_SECONDS,
        metavar="SECONDS",
        help=f"idle seconds before a kept-alive connection closes "
        f"(default {DEFAULT_KEEPALIVE_SECONDS:g})",
    )
    serve.add_argument(
        "--max-requests-per-conn",
        type=int,
        default=DEFAULT_MAX_REQUESTS_PER_CONNECTION,
        help=f"requests served per connection before it is recycled "
        f"(default {DEFAULT_MAX_REQUESTS_PER_CONNECTION})",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=DEFAULT_QUEUE_LIMIT,
        help=f"connections queued per worker before new arrivals shed with "
        f"503 + Retry-After (default {DEFAULT_QUEUE_LIMIT})",
    )
    serve.add_argument(
        "--handler-threads",
        type=int,
        default=DEFAULT_HANDLER_THREADS,
        help=f"concurrent connections handled per worker process "
        f"(default {DEFAULT_HANDLER_THREADS})",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        metavar="REQ_PER_SEC",
        help="per-tenant token-bucket rate limit keyed on the bearer token, "
        "applied per worker process (429 beyond it; default: unlimited)",
    )
    serve.add_argument(
        "--rate-burst",
        type=int,
        help="token-bucket burst capacity (default: 2x the rate)",
    )
    add_fleet(serve)
    serve.add_argument(
        "--admin-token",
        help="gate tenant registration and vault-wide status behind this token (default: open)",
    )
    serve.add_argument(
        "--max-upload-mb", type=int, help="reject uploads larger than this many MiB (413)"
    )
    serve.add_argument("--verbose", action="store_true", help="log one line per request to stderr")
    serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON logs to stderr (one object per request, "
        "trace-stamped, redacted — see docs/observability.md)",
    )
    add_json(serve)
    serve.set_defaults(func=_cmd_serve)

    return parser


def _validate(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    if args.command == "serve":
        if args.processes < 1:
            parser.error("serve: --processes must be at least 1")
        if args.rate_burst is not None and not args.rate_limit:
            parser.error("serve: --rate-burst requires --rate-limit")
        if args.rate_limit is not None and args.rate_limit <= 0:
            parser.error("serve: --rate-limit must be positive (requests/second)")
    if getattr(args, "runner", None) != REMOTE_RUNNER_NAME:
        # Reject, never silently drop, fleet flags outside remote mode.
        for flag in ("worker_urls", "worker_token", "worker_timeout"):
            if getattr(args, flag, None) is not None:
                name = "--worker-url" if flag == "worker_urls" else "--" + flag.replace("_", "-")
                parser.error(f"{args.command}: {name} requires --runner remote")
    if args.command == "detect" and args.url and args.runner == REMOTE_RUNNER_NAME:
        # The ?runner= query parameter cannot carry a fleet; start the server
        # itself with --runner remote --worker-url ... instead.
        parser.error(
            "detect: --runner remote requires --vault (a --url client cannot "
            "ship worker urls; configure the fleet on the server's 'repro serve')"
        )
    if args.command in ("protect", "detect"):
        if args.code is not None:
            try:
                resolve_code(args.code)
            except ValueError as error:
                parser.error(f"{args.command}: {error}")
        if args.url and args.vault:
            parser.error(f"{args.command}: --url (client mode) conflicts with --vault")
        if args.command == "protect" and (args.url or args.vault) and args.code is not None:
            # Embedding parameters are write-once on the tenant record; only
            # detect may swap the decoder.
            owner = "--vault" if args.vault else "--url"
            parser.error(
                f"protect: --code conflicts with {owner} "
                "(the mark code is fixed at tenant registration; use 'vault init --code')"
            )
        if args.url or args.vault:
            # The vault's tenant record — local or behind the server — owns
            # parameters and secrets; silently ignoring explicit flags would
            # misattribute the result.
            owner = "--vault" if args.vault else "--url"
            conflicting = [name for name in PARAM_DEFAULTS if getattr(args, name) is not None]
            conflicting += [
                name for name in ("encryption_key", "watermark_secret") if getattr(args, name)
            ]
            if conflicting:
                flags = ", ".join("--" + name.replace("_", "-") for name in conflicting)
                parser.error(
                    f"{args.command}: {flags} conflict with {owner} "
                    "(the tenant record in the vault owns these settings)"
                )
        else:
            if not args.encryption_key or not args.watermark_secret:
                parser.error(
                    f"{args.command}: --encryption-key and --watermark-secret are required "
                    "when no --vault or --url is given"
                )
            if args.workers is not None or args.runner:
                # The explicit-secret path runs serially in-process (protect
                # and detect alike); silently dropping these flags would
                # misattribute a benchmark, exactly like the parameter
                # conflicts above.
                parser.error(
                    f"{args.command}: --workers/--runner require --vault or --url "
                    "(the explicit-secret path is serial in-process)"
                )
            for name, value in PARAM_DEFAULTS.items():
                if getattr(args, name) is None:
                    setattr(args, name, value)
    if args.command == "dispute" and bool(args.vault) == bool(args.url):
        parser.error("dispute: exactly one of --vault or --url is required")
    if args.command == "vault" and args.vault_command == "status":
        if bool(args.path) == bool(args.url):
            parser.error("vault status: exactly one of PATH or --url is required")
        if args.url and not args.tenant:
            parser.error("vault status: --url mode needs --tenant (tenant-scoped token auth)")


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _validate(parser, args)
    tracer = Tracer() if getattr(args, "trace", False) else None
    args._tracer = tracer
    try:
        if tracer is None:
            return args.func(args)
        # --trace: the whole command runs under one ambient trace — local
        # stages record directly, pool workers and fleet members ship their
        # spans back, and _emit prints the assembled tree.
        with _trace_activate(tracer):
            return args.func(args)
    except (VaultError, HTTPServiceError, FleetError, OSError, ValueError) as error:
        # Operational failures — missing vault, unknown tenant/dataset, a CSV
        # that does not parse, an unreachable or refusing server, an empty or
        # dead worker fleet — exit 2 with the uniform {"error": ...} document
        # in --json mode.
        if getattr(args, "json", False):
            print(json.dumps(error_payload(str(error)), indent=2, sort_keys=True))
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
