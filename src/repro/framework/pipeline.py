"""The unified protection framework (Figure 2 of the paper).

``ProtectionFramework`` wires the two agents together: the table to be
outsourced is first binned to the k-anonymity specification (within the usage
metrics), then watermarked with a mark derived from the clear-text identifying
column, and the result — along with everything the owner must retain to later
prove ownership — is returned as :class:`ProtectedData`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.binning.binner import BinnedTable, BinningAgent, BinningResult
from repro.binning.kanonymity import KAnonymitySpec
from repro.dht.tree import DomainHierarchyTree
from repro.metrics.usage_metrics import UsageMetrics
from repro.relational.table import Table
from repro.watermarking.hierarchical import DetectionReport, EmbeddingReport, HierarchicalWatermarker
from repro.watermarking.keys import WatermarkKey
from repro.watermarking.mark import Mark, mark_loss
from repro.watermarking.ownership import OwnershipClaim, OwnershipRegistry

from typing import Mapping, Sequence

__all__ = ["ProtectedData", "ProtectionFramework"]


@dataclass(frozen=True)
class ProtectedData:
    """Everything the protection pipeline produces.

    ``watermarked`` is what gets outsourced; the rest stays with the owner —
    the un-watermarked binned table (useful for forensics), the registered
    statistic and mark (needed in court) and the embedding/binning reports
    used by the experiments.
    """

    watermarked: BinnedTable
    binned: BinnedTable
    binning_result: BinningResult
    embedding_report: EmbeddingReport
    mark: Mark
    registered_statistic: float

    @property
    def outsourced_table(self) -> Table:
        """The relational table actually handed to the third party."""
        return self.watermarked.table


class ProtectionFramework:
    """Bin, watermark and (later) verify ownership of an outsourced table."""

    def __init__(
        self,
        trees: Mapping[str, DomainHierarchyTree],
        usage_metrics: UsageMetrics,
        k_spec: KAnonymitySpec,
        *,
        encryption_key: bytes | str,
        watermark_secret: bytes | str,
        eta: int = 100,
        mark_length: int = 20,
        copies: int = 4,
        watermark_columns: Sequence[str] | None = None,
        level_weighting: bool = False,
        ownership_tau: float = 1e7,
        max_mark_bit_errors: int = 2,
        code: str | None = None,
    ) -> None:
        self._trees = dict(trees)
        self._binning_agent = BinningAgent(trees, usage_metrics, k_spec, encryption_key)
        self._encryption_key = encryption_key
        self._watermark_key = WatermarkKey.from_secret(watermark_secret, eta)
        self._mark_length = mark_length
        self._copies = copies
        self._watermark_columns = tuple(watermark_columns) if watermark_columns is not None else None
        self._level_weighting = level_weighting
        self._code = code
        self._registry = OwnershipRegistry(
            mark_length=mark_length, tau=ownership_tau, max_bit_errors=max_mark_bit_errors
        )
        self._owner_statistic: float | None = None
        self._owner_mark: Mark | None = None
        self._watermarker: HierarchicalWatermarker | None = None

    # ------------------------------------------------------------- properties
    @property
    def watermark_key(self) -> WatermarkKey:
        return self._watermark_key

    @property
    def mark_length(self) -> int:
        return self._mark_length

    @property
    def registry(self) -> OwnershipRegistry:
        return self._registry

    @property
    def binning_agent(self) -> BinningAgent:
        """The binning half of the pipeline (the service streams through it)."""
        return self._binning_agent

    @property
    def encryption_key(self) -> bytes | str:
        return self._encryption_key

    @property
    def copies(self) -> int:
        return self._copies

    @property
    def watermark_columns(self) -> tuple[str, ...] | None:
        return self._watermark_columns

    @property
    def registered_statistic(self) -> float | None:
        """The owner statistic ``v`` of the last/restored registration."""
        return self._owner_statistic

    @property
    def registered_mark(self) -> Mark | None:
        """The owner mark ``F(v)`` of the last/restored registration."""
        return self._owner_mark

    def watermarker(self) -> HierarchicalWatermarker:
        """The configured hierarchical watermarker (shared by protect/verify).

        One instance is kept for the framework's lifetime so the batched hash
        engine's digest caches carry over from embedding to every later
        detection pass — a detect on the table just protected (or on an
        attacked variant with mostly unchanged idents) reuses the cached
        per-tuple digests instead of recomputing them.
        """
        if self._watermarker is None:
            self._watermarker = HierarchicalWatermarker(
                self._watermark_key,
                columns=self._watermark_columns,
                copies=self._copies,
                level_weighting=self._level_weighting,
                code=self._code,
            )
        return self._watermarker

    # -------------------------------------------------------------------- API
    def protect(self, table: Table) -> ProtectedData:
        """Run the full pipeline of Figure 2 on *table*."""
        identifying = [column.name for column in table.schema.identifying_columns]
        if not identifying:
            raise ValueError("the table must have at least one identifying column")
        statistic, mark = self._registry.derive_mark(
            [row[column] for row in table for column in identifying]
        )
        self._owner_statistic, self._owner_mark = statistic, mark

        binning_result = self._binning_agent.bin(table)
        embedding = self.watermarker().embed(binning_result.binned, mark)
        return ProtectedData(
            watermarked=embedding.watermarked,
            binned=binning_result.binned,
            binning_result=binning_result,
            embedding_report=embedding,
            mark=mark,
            registered_statistic=statistic,
        )

    def register_statistic(self, statistic: float) -> Mark:
        """Register ownership from an already-computed identifier statistic.

        The streaming ingest accumulates the statistic in its first pass
        (identical, float for float, to what :meth:`protect` computes over a
        materialised table) and registers it here before embedding.
        """
        mark = self._registry.mark_for_statistic(statistic)
        self._owner_statistic, self._owner_mark = statistic, mark
        return mark

    def restore_registration(self, statistic: float, mark: Mark | None = None) -> Mark:
        """Re-hydrate the court-critical owner state from persistent storage.

        A fresh process holding only the vault record (statistic + secrets)
        calls this so :meth:`owner_claim` and mark comparisons work without a
        prior :meth:`protect`.  When *mark* is given it must equal ``F(v)``
        for the stored statistic — a mismatch means the vault record was
        corrupted or belongs to different registry parameters.
        """
        expected = self._registry.mark_for_statistic(statistic)
        if mark is not None and mark.bits != expected.bits:
            raise ValueError(
                "stored mark does not match F(statistic) under the registry parameters; "
                "the vault record is corrupt or was written with different settings"
            )
        self._owner_statistic, self._owner_mark = statistic, expected
        return expected

    def detect(self, suspect: BinnedTable) -> DetectionReport:
        """Run mark detection on a (possibly attacked) table."""
        return self.watermarker().detect(suspect, self._mark_length)

    def mark_loss(self, suspect: BinnedTable, original_mark: Mark) -> float:
        """Fraction of mark bits lost in *suspect* relative to *original_mark*."""
        return mark_loss(original_mark, self.detect(suspect).mark)

    def owner_claim(self, claimant: str = "owner") -> OwnershipClaim:
        """The claim the owner brings to a dispute (requires a prior ``protect``)."""
        if self._owner_statistic is None or self._owner_mark is None:
            raise RuntimeError("protect() must be called before building the owner's claim")
        return OwnershipClaim(
            claimant=claimant,
            registered_statistic=self._owner_statistic,
            mark=self._owner_mark,
            watermark_key=self._watermark_key,
            encryption_key=self._encryption_key,
            copies=self._copies,
            columns=self._watermark_columns,
            code=self.watermarker().code_name,
        )

    def resolve_dispute(self, disputed: BinnedTable, claims: Sequence[OwnershipClaim]):
        """Delegate dispute resolution to the ownership registry."""
        return self._registry.resolve_dispute(disputed, claims)
