"""The unified protection framework (Figure 2) and its seamlessness analysis."""

from repro.framework.pipeline import ProtectedData, ProtectionFramework
from repro.framework.analysis import (
    SeamlessnessColumnReport,
    SeamlessnessReport,
    pr_minus,
    pr_plus,
    seamlessness_report,
    suggest_epsilon,
    watermarking_information_loss,
)

__all__ = [
    "ProtectionFramework",
    "ProtectedData",
    "pr_minus",
    "pr_plus",
    "suggest_epsilon",
    "seamlessness_report",
    "SeamlessnessReport",
    "SeamlessnessColumnReport",
    "watermarking_information_loss",
]
