"""Seamlessness analysis: does watermarking undo the binning? (Section 6).

Watermarking permutes some tuples into other bins, so a bin could in principle
shrink below ``k`` and break the k-anonymity binning established.  The paper
shows, under two idealised assumptions, that the probability of a
bit-embedding shrinking a given bin equals the probability of it growing the
bin (Lemmas 1 and 2), so on average watermarking does not interfere.  It also
gives a conservative safety margin ``ε`` to add to ``k`` during binning.

This module provides the closed-form probabilities, the ``ε`` rule, the
empirical bin-change measurement behind Figure 14 and the incremental
information loss caused by watermarking (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.binning.binner import BinnedTable
from repro.dht.node import DHTNode, Interval

__all__ = [
    "pr_minus",
    "pr_plus",
    "suggest_epsilon",
    "SeamlessnessColumnReport",
    "SeamlessnessReport",
    "seamlessness_report",
    "watermarking_information_loss",
]


def pr_minus(n_k: int, group_sizes: Sequence[int]) -> float:
    """Lemma 1: probability that one bit-embedding shrinks a given bin by one.

    ``n_k`` is the number of ultimate generalization nodes under the bin's
    maximal generalization node and ``group_sizes`` the list ``n_1 .. n_m`` of
    ultimate-node counts under every maximal generalization node of the
    column.  ``Pr- = (n_k - 1) / (n_k * sum_i n_i)``.
    """
    if n_k < 1:
        raise ValueError("n_k must be at least 1")
    total = sum(group_sizes)
    if total < n_k or n_k not in group_sizes:
        raise ValueError("group_sizes must contain n_k and cover all maximal nodes")
    return (n_k - 1) / (n_k * total)


def pr_plus(n_k: int, group_sizes: Sequence[int]) -> float:
    """Lemma 2: probability that one bit-embedding grows a given bin by one.

    Identical to :func:`pr_minus` — that equality is the seamlessness result.
    """
    return pr_minus(n_k, group_sizes)


def suggest_epsilon(bin_sizes: Sequence[int], wmd_length: int) -> int:
    """The conservative ``ε`` of Section 6: ``ε = (s / S) * |wmd|``.

    ``s`` is the largest bin size, ``S`` the sum of all bin sizes and
    ``|wmd|`` the length of the replicated mark.  Binning with ``k + ε``
    guarantees that even if every embedding drained the same bin it would not
    drop below ``k``.
    """
    if wmd_length < 0:
        raise ValueError("wmd_length must be non-negative")
    sizes = [size for size in bin_sizes if size > 0]
    if not sizes:
        return 0
    largest = max(sizes)
    total = sum(sizes)
    return int(round(largest / total * wmd_length + 0.5))


@dataclass(frozen=True)
class SeamlessnessColumnReport:
    """One column of Figure 14."""

    column: str
    total_bins: int
    bins_changed: int
    bins_below_k: int


@dataclass(frozen=True)
class SeamlessnessReport:
    """The full Figure 14 measurement for one value of k."""

    k: int
    columns: tuple[SeamlessnessColumnReport, ...]

    @property
    def any_bin_below_k(self) -> bool:
        return any(column.bins_below_k > 0 for column in self.columns)

    def as_rows(self) -> list[tuple[str, int, int, int]]:
        """Rows ``(column, total bins, bins changed, bins below k)``."""
        return [
            (column.column, column.total_bins, column.bins_changed, column.bins_below_k)
            for column in self.columns
        ]


def seamlessness_report(before: BinnedTable, after: BinnedTable, k: int | None = None) -> SeamlessnessReport:
    """Measure how watermarking changed the per-attribute bins (Figure 14).

    For every binned column: the number of bins, the number of bins whose size
    changed between the binned table (*before*) and the watermarked table
    (*after*), and the number of bins that dropped below ``k``.
    """
    threshold = k if k is not None else before.k
    columns: list[SeamlessnessColumnReport] = []
    for column in before.quasi_columns:
        sizes_before = before.bin_sizes(column)
        sizes_after = after.bin_sizes(column)
        all_bins = set(sizes_before) | set(sizes_after)
        changed = sum(
            1 for value in all_bins if sizes_before.get(value, 0) != sizes_after.get(value, 0)
        )
        below = sum(1 for value in all_bins if 0 < sizes_after.get(value, 0) < threshold)
        columns.append(
            SeamlessnessColumnReport(
                column=column,
                total_bins=len(sizes_before),
                bins_changed=changed,
                bins_below_k=below,
            )
        )
    return SeamlessnessReport(k=threshold, columns=tuple(columns))


def _node_loss_fraction(tree_leaf_count: int, node: DHTNode, domain: Interval | None) -> float:
    """Loss contribution of generalising one entry up to *node*."""
    if domain is not None and isinstance(node.value, Interval):
        return node.value.width / domain.width
    return (len(node.leaves()) - 1) / tree_leaf_count


def watermarking_information_loss(before: BinnedTable, after: BinnedTable) -> dict[str, float]:
    """Incremental information loss caused by watermarking (Figure 13).

    A permuted cell is, from the consumer's point of view, only trustworthy up
    to the maximal generalization node it was permuted under (Section 5.1
    argues the permutation is equivalent to that generalization).  The
    incremental loss of a column is therefore the average, over rows, of the
    maximal node's loss fraction for rows whose value changed and zero for
    untouched rows.  Returns per-column losses plus the normalised average
    under the key ``"__normalized__"``.
    """
    if len(before.table) != len(after.table):
        raise ValueError("tables must have the same number of rows to compare")
    losses: dict[str, float] = {}
    for column in before.quasi_columns:
        tree = before.tree(column)
        maximal = before.maximal_node_objects(column)
        maximal_set = set(maximal)
        n_leaves = len(tree.leaves())
        domain = tree.root.value if tree.is_numeric else None
        total = 0.0
        for row_before, row_after in zip(before.table, after.table):
            if row_before[column] == row_after[column]:
                continue
            try:
                node = tree.value_to_node(row_before[column])
            except ValueError:
                continue
            top = next(
                (step for step in node.ancestors(include_self=True) if step in maximal_set), tree.root
            )
            total += _node_loss_fraction(n_leaves, top, domain)  # type: ignore[arg-type]
        losses[column] = total / len(before.table) if len(before.table) else 0.0
    if losses:
        losses["__normalized__"] = sum(losses.values()) / len(losses)
    return losses
