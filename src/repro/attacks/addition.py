"""Subset Addition attack (Section 7.2, Figure 12b).

The attacker mixes bogus tuples into the watermarked table.  No existing bit
is erased, but some of the new tuples satisfy the keyed selection criterion of
Equation (5) by chance and therefore cast spurious votes during detection,
hoping to outvote the genuine bits.  The paper notes that if the added data
outnumber the original, the bogus bits would eventually dominate the majority
vote — the benchmark sweeps the addition ratio to expose exactly that trend.
"""

from __future__ import annotations

from repro.attacks.base import AttackResult
from repro.binning.binner import BinnedTable
from repro.crypto.prng import DeterministicPRNG

__all__ = ["SubsetAdditionAttack"]


class SubsetAdditionAttack:
    """Add a fraction of bogus tuples to the table."""

    def __init__(self, fraction: float, *, seed: object = 0) -> None:
        """
        Parameters
        ----------
        fraction:
            Number of bogus tuples to add, as a fraction of the current table
            size (the x-axis of Figure 12b).
        seed:
            Seed of the attacker's randomness.
        """
        if fraction < 0.0:
            raise ValueError("fraction must be non-negative")
        self.fraction = fraction
        self.seed = seed

    def _bogus_identifier(self, rng: DeterministicPRNG, template: str) -> str:
        """A bogus encrypted-identifier token shaped like the existing ones."""
        return "".join(rng.choice("0123456789abcdef") for _ in range(max(16, len(template))))

    def run(self, binned: BinnedTable) -> AttackResult:
        rng = DeterministicPRNG(("subset-addition", self.seed, self.fraction))
        # Addition never touches existing rows, so sharing them is free.
        attacked = binned.lazy_copy()
        n_new = int(round(len(attacked.table) * self.fraction))
        if len(attacked.table) == 0:
            return AttackResult(attacked, 0, "subset addition on an empty table")

        columns = attacked.quasi_columns
        candidate_values = {
            column: [node.value for node in attacked.ultimate_node_objects(column)] for column in columns
        }
        template_row = attacked.table[0]
        ident_columns = attacked.identifying_columns
        other_columns = [
            name
            for name in attacked.table.schema.column_names
            if name not in columns and name not in ident_columns
        ]
        # Generate the bogus rows first (keeping the PRNG draw order), then
        # bulk-insert: one copy-on-write check and straight appends on the
        # columnar substrate, per-row inserts on the row store as before.
        template = {column: template_row[column] for column in other_columns}
        bogus_rows: list[dict[str, object]] = []
        for _ in range(n_new):
            row: dict[str, object] = {}
            for column in ident_columns:
                row[column] = self._bogus_identifier(rng, str(template_row[column]))
            for column in columns:
                row[column] = rng.choice(candidate_values[column])
            row.update(template)
            bogus_rows.append(row)
        attacked.table.insert_many(bogus_rows)
        return AttackResult(
            attacked=attacked,
            rows_touched=n_new,
            description=f"subset addition of {self.fraction:.0%} bogus tuples",
            details={"added": n_new},
        )
