"""Attack simulators used in the robustness evaluation (Sections 5 and 7.2).

Every attacker operates on a *copy* of the outsourced (binned and
watermarked) table, does not know the secret watermarking key, and tries
either to destroy the embedded mark while keeping the data useful or to
confuse the ownership resolution:

* :class:`SubsetAlterationAttack` — alter a random fraction of the tuples
  arbitrarily (Figure 12a),
* :class:`SubsetAdditionAttack` — add bogus tuples (Figure 12b),
* :class:`SubsetDeletionAttack` — delete tuples, by identifier ranges as in
  the paper's SQL clause or at random (Figure 12c),
* :class:`GeneralizationAttack` — generalise every value one or more levels
  up the hierarchy, the attack specific to binned data (Section 5.2),
* :mod:`repro.attacks.ownership_attacks` — the additive (Attack 1) and
  subtractive (Attack 2) rightful-ownership attacks (Section 5.4).
"""

from repro.attacks.base import AttackResult
from repro.attacks.alteration import SubsetAlterationAttack
from repro.attacks.addition import SubsetAdditionAttack
from repro.attacks.deletion import SubsetDeletionAttack
from repro.attacks.generalization_attack import GeneralizationAttack
from repro.attacks.ownership_attacks import (
    AdditiveMarkAttack,
    SubtractiveMarkAttack,
)

__all__ = [
    "AttackResult",
    "SubsetAlterationAttack",
    "SubsetAdditionAttack",
    "SubsetDeletionAttack",
    "GeneralizationAttack",
    "AdditiveMarkAttack",
    "SubtractiveMarkAttack",
]
