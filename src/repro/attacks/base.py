"""Shared plumbing for attack simulators."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.binning.binner import BinnedTable

__all__ = ["AttackResult"]


@dataclass(frozen=True)
class AttackResult:
    """A mutated copy of the attacked table plus attack bookkeeping.

    Attributes
    ----------
    attacked:
        The table after the attack (the input table is never modified).
    rows_touched:
        Number of rows the attack altered, added or removed.
    description:
        Human-readable summary used in experiment logs.
    details:
        Attack-specific extras (e.g. the deleted identifier ranges).
    """

    attacked: BinnedTable
    rows_touched: int
    description: str
    details: dict[str, object] = field(default_factory=dict)
