"""Rightful-ownership attacks (Section 5.4, Figure 10).

These attacks do not try to remove the owner's mark; they try to make the
attacker's ownership claim look as good as the owner's.

* **Attack 1 (additive)** — the attacker embeds their *own* bogus mark, under
  their own key, into the owner's watermarked table.  Both marks are now
  detectable, so both parties can point at "their" mark.  The dispute is
  resolved by the statistic check: the attacker cannot decrypt the identifying
  columns and therefore cannot present a statistic ``v`` that the
  recomputation from the disputed table confirms.

* **Attack 2 (subtractive)** — the attacker fabricates a bogus "original"
  ``Da`` such that embedding a bogus mark into it yields the disputed table.
  With marks restricted to ``F(v)`` of the clear-text identifier statistic,
  the attacker would have to find data whose statistic maps through the
  one-way function onto bits already present in the table — which they cannot.

Both classes produce the attacker-side artefacts (attacked table where
relevant, and the :class:`~repro.watermarking.ownership.OwnershipClaim` the
attacker would bring to court) so that examples and tests can run a full
dispute and check that the registry rules for the true owner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.base import AttackResult
from repro.binning.binner import BinnedTable
from repro.crypto.prng import DeterministicPRNG
from repro.watermarking.hierarchical import HierarchicalWatermarker
from repro.watermarking.keys import WatermarkKey
from repro.watermarking.mark import Mark
from repro.watermarking.ownership import OwnershipClaim

__all__ = ["AdditiveMarkAttack", "SubtractiveMarkAttack", "OwnershipAttackResult"]


@dataclass(frozen=True)
class OwnershipAttackResult:
    """The attacked table (if any) plus the attacker's courtroom claim."""

    attack: AttackResult
    attacker_claim: OwnershipClaim
    attacker_mark: Mark
    attacker_key: WatermarkKey


class AdditiveMarkAttack:
    """Attack 1: embed a bogus mark on top of the owner's watermarked table."""

    def __init__(self, *, attacker: str = "attacker", seed: object = 0, eta: int = 50, copies: int = 4) -> None:
        self.attacker = attacker
        self.seed = seed
        self.eta = eta
        self.copies = copies

    def run(self, watermarked: BinnedTable, mark_length: int = 20) -> OwnershipAttackResult:
        rng = DeterministicPRNG(("additive-mark-attack", self.seed))
        attacker_key = WatermarkKey.from_secret(f"attacker-secret-{rng.randint(0, 2**32)}", self.eta)
        # The attacker cannot decrypt the identifiers, so the best they can do
        # is invent a statistic and derive "their" mark from it, mimicking the
        # owner's procedure.
        fake_statistic = float(rng.randint(10_000_000, 999_999_999))
        attacker_mark = Mark.from_statistic(fake_statistic, mark_length, precision=1e6)
        embedder = HierarchicalWatermarker(attacker_key, copies=self.copies)
        report = embedder.embed(watermarked, attacker_mark)
        claim = OwnershipClaim(
            claimant=self.attacker,
            registered_statistic=fake_statistic,
            mark=attacker_mark,
            watermark_key=attacker_key,
            encryption_key=f"attacker-guess-{self.seed}",
            copies=self.copies,
        )
        attack = AttackResult(
            attacked=report.watermarked,
            rows_touched=report.tuples_selected,
            description="additive bogus-mark attack (Attack 1)",
            details={"cells_changed": report.cells_changed},
        )
        return OwnershipAttackResult(attack, claim, attacker_mark, attacker_key)


class SubtractiveMarkAttack:
    """Attack 2: fabricate a bogus "original" from the owner's watermarked table."""

    def __init__(self, *, attacker: str = "attacker", seed: object = 0, eta: int = 50, copies: int = 4) -> None:
        self.attacker = attacker
        self.seed = seed
        self.eta = eta
        self.copies = copies

    def run(self, watermarked: BinnedTable, mark_length: int = 20) -> OwnershipAttackResult:
        rng = DeterministicPRNG(("subtractive-mark-attack", self.seed))
        attacker_key = WatermarkKey.from_secret(f"attacker-secret-{rng.randint(0, 2**32)}", self.eta)
        # The attacker "extracts" a mark of their choosing: they embed the
        # complement of what they intend to claim, producing a bogus original
        # Da such that Da (+)_ka Wa reproduces (approximately) the disputed
        # table.  They still have to tie Wa to a statistic they cannot verify.
        fake_statistic = float(rng.randint(10_000_000, 999_999_999))
        attacker_mark = Mark.from_statistic(fake_statistic, mark_length, precision=1e6)
        complement = Mark.from_bits(1 - bit for bit in attacker_mark)
        embedder = HierarchicalWatermarker(attacker_key, copies=self.copies)
        bogus_original_report = embedder.embed(watermarked, complement)
        claim = OwnershipClaim(
            claimant=self.attacker,
            registered_statistic=fake_statistic,
            mark=attacker_mark,
            watermark_key=attacker_key,
            encryption_key=f"attacker-guess-{self.seed}",
            copies=self.copies,
        )
        attack = AttackResult(
            attacked=bogus_original_report.watermarked,
            rows_touched=bogus_original_report.tuples_selected,
            description="subtractive bogus-original attack (Attack 2)",
            details={"cells_changed": bogus_original_report.cells_changed},
        )
        return OwnershipAttackResult(attack, claim, attacker_mark, attacker_key)
