"""Subset Alteration attack (Section 7.2, Figure 12a).

The attacker picks a random subset of the tuples and modifies their
quasi-identifying values arbitrarily, hoping to overwrite enough embedded bits
to destroy the mark, while leaving the rest of the table untouched (so it
stays sellable).  Altered cells are set to arbitrary values drawn from the
column's generalized domain — the most damaging choice available to an
attacker who wants the table to keep looking like a legitimately binned one.
"""

from __future__ import annotations

from typing import Sequence

from repro.attacks.base import AttackResult
from repro.binning.binner import BinnedTable
from repro.crypto.prng import DeterministicPRNG

__all__ = ["SubsetAlterationAttack"]


class SubsetAlterationAttack:
    """Randomly alter a fraction of the tuples."""

    def __init__(
        self,
        fraction: float,
        *,
        seed: object = 0,
        columns: Sequence[str] | None = None,
    ) -> None:
        """
        Parameters
        ----------
        fraction:
            Fraction of the tuples to alter (the x-axis of Figure 12a).
        seed:
            Seed of the attacker's randomness (experiments are reproducible).
        columns:
            Columns to alter; defaults to every binned quasi-identifier.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must lie in [0, 1]")
        self.fraction = fraction
        self.seed = seed
        self.columns = tuple(columns) if columns is not None else None

    def run(self, binned: BinnedTable) -> AttackResult:
        """Attack a copy of *binned*."""
        rng = DeterministicPRNG(("subset-alteration", self.seed, self.fraction))
        attacked = binned.lazy_copy()
        columns = self.columns if self.columns is not None else attacked.quasi_columns
        # The attacker replaces values with other plausible generalized values
        # of the same column (anything else would be spotted immediately).
        candidate_values: dict[str, list[object]] = {
            column: [node.value for node in attacked.ultimate_node_objects(column)] for column in columns
        }
        indices = rng.subset_indices(len(attacked.table), self.fraction)
        # Draw the replacement values row-major (the draw order fixes the PRNG
        # stream, so it must not change), then apply them column by column —
        # one bulk write per column on the columnar substrate.
        picks: dict[str, list[object]] = {column: [] for column in columns}
        for index in indices:
            for column in columns:
                picks[column].append(rng.choice(candidate_values[column]))
        for column in columns:
            attacked.table.set_cells(column, indices, picks[column])
        return AttackResult(
            attacked=attacked,
            rows_touched=len(indices),
            description=f"subset alteration of {self.fraction:.0%} of the tuples",
            details={"altered_indices": indices, "columns": list(columns)},
        )
