"""Subset Deletion attack (Section 7.2, Figure 12c).

The attacker drops a share of the tuples to remove the mark bits they carry.
The paper deletes by identifier ranges::

    DELETE FROM R WHERE SSN > lval AND SSN < uval

and repeats the clause until the intended share is gone; because the stored
identifiers are encrypted, a lexicographic range over them is effectively a
pseudo-random subset of the original records.  Both that range mode and a
plain random-subset mode are provided.
"""

from __future__ import annotations

import enum

from repro.attacks.base import AttackResult
from repro.binning.binner import BinnedTable
from repro.crypto.prng import DeterministicPRNG
from repro.relational.query import in_range

__all__ = ["DeletionMode", "SubsetDeletionAttack"]


class DeletionMode(enum.Enum):
    """How the deleted subset is chosen."""

    IDENT_RANGES = "ident_ranges"
    RANDOM = "random"


class SubsetDeletionAttack:
    """Delete a fraction of the tuples."""

    def __init__(
        self,
        fraction: float,
        *,
        seed: object = 0,
        mode: DeletionMode = DeletionMode.IDENT_RANGES,
        n_ranges: int = 8,
    ) -> None:
        """
        Parameters
        ----------
        fraction:
            Fraction of the tuples to delete (the x-axis of Figure 12c).
        seed:
            Seed of the attacker's randomness.
        mode:
            ``IDENT_RANGES`` reproduces the paper's SQL range deletes over the
            identifying column; ``RANDOM`` deletes a uniform random subset.
        n_ranges:
            Number of successive range deletes used in ``IDENT_RANGES`` mode.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must lie in [0, 1]")
        if n_ranges < 1:
            raise ValueError("n_ranges must be at least 1")
        self.fraction = fraction
        self.seed = seed
        self.mode = mode
        self.n_ranges = n_ranges

    def run(self, binned: BinnedTable) -> AttackResult:
        # Deletion only rebuilds the row list; surviving rows stay shared.
        attacked = binned.lazy_copy()
        n_rows = len(attacked.table)
        target = int(round(n_rows * self.fraction))
        if target == 0 or n_rows == 0:
            return AttackResult(attacked, 0, "subset deletion of 0% of the tuples")

        if self.mode is DeletionMode.RANDOM:
            rng = DeterministicPRNG(("subset-deletion-random", self.seed, self.fraction))
            indices = rng.sample(range(n_rows), target)
            deleted = attacked.table.delete_indices(indices)
            return AttackResult(
                attacked=attacked,
                rows_touched=deleted,
                description=f"random deletion of {self.fraction:.0%} of the tuples",
                details={"deleted": deleted},
            )

        # Identifier-range mode: delete n_ranges consecutive slices of the
        # identifier order, totalling the requested share.
        ident_column = attacked.identifying_columns[0]
        rng = DeterministicPRNG(("subset-deletion-ranges", self.seed, self.fraction))
        per_range = max(1, target // self.n_ranges)
        ranges: list[tuple[str, str]] = []
        deleted_total = 0
        attempts = 0
        while deleted_total < target and attempts < self.n_ranges * 4:
            attempts += 1
            remaining = [str(value) for value in attacked.table.column_values(ident_column)]
            if len(remaining) <= per_range:
                break
            remaining.sort()
            start = rng.randint(0, len(remaining) - per_range - 1)
            lval, uval = remaining[start], remaining[min(start + per_range + 1, len(remaining) - 1)]
            ranges.append((lval, uval))
            deleted_total += attacked.table.delete_where(in_range(ident_column, lval, uval))
        return AttackResult(
            attacked=attacked,
            rows_touched=deleted_total,
            description=(
                f"range deletion of {deleted_total} tuples (~{self.fraction:.0%}) over "
                f"{len(ranges)} identifier ranges"
            ),
            details={"ranges": ranges, "deleted": deleted_total},
        )
