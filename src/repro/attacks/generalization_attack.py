"""The generalization attack (Section 5.2) — specific to binned data.

Because the usage metrics leave a gap between the ultimate generalization
nodes and the maximal generalization nodes, an attacker can push every value
one (or more) levels up the domain hierarchy tree *without* the watermarking
key and *without* breaking the data usage the metrics guarantee.  Against a
single-level scheme this erases every embedded bit; against the hierarchical
scheme it only strips the lowest level of redundancy, leaving the copies at
the remaining levels intact.  The ablation benchmark pits the two schemes
against exactly this attack.
"""

from __future__ import annotations

from typing import Sequence

from repro.attacks.base import AttackResult
from repro.binning.binner import BinnedTable
from repro.dht.node import DHTNode
from repro.dht.tree import DomainHierarchyTree

__all__ = ["GeneralizationAttack"]


class GeneralizationAttack:
    """Generalise every value *levels* steps up, capped at the maximal frontier."""

    def __init__(self, levels: int = 1, *, columns: Sequence[str] | None = None) -> None:
        """
        Parameters
        ----------
        levels:
            How many levels up each value is pushed.  The attacker never goes
            above the maximal generalization nodes: beyond them the table
            would no longer sustain the intended data usage and would be
            worthless to resell.
        columns:
            Columns to attack; defaults to every binned quasi-identifier.
        """
        if levels < 1:
            raise ValueError("levels must be at least 1")
        self.levels = levels
        self.columns = tuple(columns) if columns is not None else None

    def _lift(
        self,
        tree: DomainHierarchyTree,
        node: DHTNode,
        maximal: set[DHTNode],
    ) -> DHTNode:
        current = node
        for _ in range(self.levels):
            if current in maximal or current.parent is None:
                break
            current = current.parent
        return current

    def run(self, binned: BinnedTable) -> AttackResult:
        attacked = binned.lazy_copy()
        columns = self.columns if self.columns is not None else attacked.quasi_columns
        # Trees and frontiers are per-column constants; resolve them once
        # instead of once per row.
        trees = {column: attacked.tree(column) for column in columns}
        maximal_sets = {column: set(attacked.maximal_node_objects(column)) for column in columns}
        table = attacked.table
        changed = 0
        touched: set[int] = set()
        # Column-at-a-time sweep: a binned column holds one value per ultimate
        # node, so the lift of each *distinct* value is resolved once and the
        # changed cells are written back in one bulk update per column.  The
        # per-cell results (and both counters) are identical to the former
        # row-major loop.
        for column in columns:
            tree = trees[column]
            maximal = maximal_sets[column]
            value_to_node = tree.value_to_node
            # value -> lifted value, or None when the cell stays unchanged
            # (unparseable or already at its lift target).
            memo: dict[object, object] = {}
            indices: list[int] = []
            lifted_values: list[object] = []
            for index, value in enumerate(table.column_values(column)):
                try:
                    target = memo[value]
                except KeyError:
                    try:
                        node = value_to_node(value)
                    except ValueError:
                        target = None
                    else:
                        lifted = self._lift(tree, node, maximal)
                        target = lifted.value if lifted is not node else None
                    memo[value] = target
                except TypeError:  # unhashable cell: resolve without caching
                    try:
                        node = value_to_node(value)
                    except ValueError:
                        continue
                    lifted = self._lift(tree, node, maximal)
                    target = lifted.value if lifted is not node else None
                if target is not None:
                    indices.append(index)
                    lifted_values.append(target)
            if indices:
                table.set_cells(column, indices, lifted_values)
                changed += len(indices)
                touched.update(indices)
        rows_touched = len(touched)
        return AttackResult(
            attacked=attacked,
            rows_touched=rows_touched,
            description=f"generalization attack lifting values {self.levels} level(s)",
            details={"cells_changed": changed, "columns": list(columns)},
        )
