"""Reusable distributions for the synthetic data generator."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.crypto.prng import DeterministicPRNG

__all__ = ["SkewedCategorical", "GroupedSkewedCategorical", "AgeMixture"]


class SkewedCategorical:
    """A Zipf-skewed categorical distribution over a fixed list of values.

    Real clinical columns are heavily skewed: a handful of diagnoses account
    for most visits while most codes are rare.  A Zipf law with a mild
    exponent reproduces that shape; the value-to-rank assignment is itself
    shuffled deterministically from the seed so that different columns do not
    share the same "popular" leaves.
    """

    def __init__(self, values: Sequence[str], *, exponent: float = 1.1, seed: object = 0) -> None:
        if not values:
            raise ValueError("values must be non-empty")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        ordered = list(values)
        DeterministicPRNG(("skewed-categorical-order", seed)).shuffle(ordered)
        self._values = ordered
        self._weights = [1.0 / (rank + 1) ** exponent for rank in range(len(ordered))]

    @property
    def values(self) -> list[str]:
        return list(self._values)

    def sample(self, rng: DeterministicPRNG) -> str:
        """Draw one value."""
        return rng.weighted_choice(self._values, self._weights)

    def probability(self, value: str) -> float:
        """Exact probability of *value* under the distribution."""
        total = sum(self._weights)
        try:
            index = self._values.index(value)
        except ValueError:
            return 0.0
        return self._weights[index] / total


class GroupedSkewedCategorical:
    """Two-stage categorical distribution: pick a group, then a leaf within it.

    Real clinical columns are skewed, but no top-level category (ICD chapter,
    hospital division, drug class, census region) is vanishingly rare in a
    20 000-record extract.  Sampling the group first with a guaranteed minimum
    share and the leaf within the group with a Zipf skew reproduces both
    facts, and — importantly for the experiments — keeps every depth-1 node of
    the corresponding DHT populated well enough that binning stays feasible up
    to the largest ``k`` the paper sweeps.
    """

    def __init__(
        self,
        groups: Mapping[str, Sequence[str]],
        *,
        min_group_share: float = 0.03,
        group_exponent: float = 0.8,
        leaf_exponent: float = 1.0,
        seed: object = 0,
    ) -> None:
        if not groups:
            raise ValueError("groups must be non-empty")
        if not 0.0 <= min_group_share * len(groups) <= 1.0:
            raise ValueError("min_group_share * number of groups must not exceed 1")
        group_names = list(groups)
        DeterministicPRNG(("grouped-skew-order", seed)).shuffle(group_names)
        raw = [1.0 / (rank + 1) ** group_exponent for rank in range(len(group_names))]
        raw_total = sum(raw)
        slack = 1.0 - min_group_share * len(group_names)
        self._group_names = group_names
        self._group_weights = [min_group_share + slack * weight / raw_total for weight in raw]
        self._leaf_dists = {
            name: SkewedCategorical(groups[name], exponent=leaf_exponent, seed=(seed, name))
            for name in group_names
        }

    @property
    def groups(self) -> list[str]:
        return list(self._group_names)

    def group_share(self, group: str) -> float:
        """Exact probability of *group* being chosen."""
        index = self._group_names.index(group)
        return self._group_weights[index] / sum(self._group_weights)

    def sample(self, rng: DeterministicPRNG) -> str:
        group = rng.weighted_choice(self._group_names, self._group_weights)
        return self._leaf_dists[group].sample(rng)


class AgeMixture:
    """Age distribution as a mixture of patient populations.

    Three truncated-normal components — paediatric, adult and elderly — with
    weights that over-represent the adult and elderly groups, as hospital
    admission data do.  Samples are clamped to the DHT domain ``[0, 150)`` and
    rounded to whole years.
    """

    _COMPONENTS: tuple[tuple[float, float, float], ...] = (
        # (weight, mean, standard deviation)
        (0.15, 8.0, 5.0),
        (0.55, 42.0, 14.0),
        (0.30, 74.0, 9.0),
    )

    def __init__(self, *, lower: float = 0.0, upper: float = 150.0) -> None:
        if upper <= lower:
            raise ValueError("upper must exceed lower")
        self._lower = lower
        self._upper = upper

    def sample(self, rng: DeterministicPRNG) -> int:
        """Draw one integer age inside ``[lower, upper)``."""
        weights = [component[0] for component in self._COMPONENTS]
        component = rng.weighted_choice(list(range(len(self._COMPONENTS))), weights)
        _, mean, std = self._COMPONENTS[component]
        while True:
            value = rng.gauss(mean, std)
            if self._lower <= value < self._upper:
                return int(value)
