"""Synthetic medical data generation.

The paper's evaluation runs on a real clinical extract of roughly 20 000
tuples with schema ``R(ssn, age, zip_code, doctor, symptom, prescription)``
that is not publicly available.  This package generates a synthetic table with
the same schema, the same size, value domains drawn from the ontologies of
:mod:`repro.ontology`, skewed marginals (a few frequent diagnoses, a long tail
of rare ones) and a clinically plausible symptom→prescription correlation.

Binning and watermarking only consume the schema, the value→leaf mapping and
the empirical counts, so any non-degenerate table over the same domains
exercises exactly the code paths the paper measures.
"""

from repro.datagen.distributions import AgeMixture, SkewedCategorical
from repro.datagen.finance import FinancialDataGenerator, generate_financial_table
from repro.datagen.medical import MedicalDataGenerator, generate_medical_table

__all__ = [
    "MedicalDataGenerator",
    "generate_medical_table",
    "FinancialDataGenerator",
    "generate_financial_table",
    "SkewedCategorical",
    "AgeMixture",
]
