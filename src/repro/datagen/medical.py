"""Generator for the synthetic clinical table used by every experiment.

The generated table matches the paper's schema
``R(ssn, age, zip_code, doctor, symptom, prescription)`` and default size
(20 000 tuples).  Columns are drawn from the ontologies in
:mod:`repro.ontology`:

* ``ssn`` — unique nine-digit strings (the identifying column),
* ``age`` — an adult-skewed mixture over ``[0, 150)``,
* ``zip_code``, ``doctor`` — Zipf-skewed draws over the ontology leaves,
* ``symptom`` — Zipf-skewed draw over the ICD-9-style leaves,
* ``prescription`` — drawn from a drug class that is plausible for the
  symptom's chapter, which induces the cross-column correlation that makes
  multi-attribute binning strictly harder than mono-attribute binning
  (the effect Figure 11 measures).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.prng import DeterministicPRNG
from repro.datagen.distributions import AgeMixture, GroupedSkewedCategorical
from repro.ontology.drugs import PRESCRIPTION_SPEC
from repro.ontology.geography import ZIP_REGION_SPEC, zip_leaves
from repro.ontology.icd9 import SYMPTOM_SPEC
from repro.ontology.practitioners import DOCTOR_SPEC
from repro.relational.schema import medical_schema
from repro.relational.table import Table

__all__ = ["MedicalDataGenerator", "generate_medical_table"]

# Symptom chapter -> therapeutic classes a prescription is likely drawn from.
_CHAPTER_TO_DRUG_CLASSES: dict[str, list[str]] = {
    "Infectious diseases": ["Anti-infective agents"],
    "Neoplasms": ["Central nervous system agents", "Gastrointestinal agents"],
    "Endocrine and metabolic": ["Endocrine agents", "Cardiovascular agents"],
    "Mental disorders": ["Central nervous system agents"],
    "Nervous system": ["Central nervous system agents"],
    "Circulatory system": ["Cardiovascular agents"],
    "Respiratory system": ["Respiratory agents", "Anti-infective agents"],
    "Digestive system": ["Gastrointestinal agents", "Anti-infective agents"],
    "Genitourinary system": ["Anti-infective agents", "Cardiovascular agents"],
    "Skin and musculoskeletal": ["Musculoskeletal agents", "Central nervous system agents"],
    "Injury and poisoning": ["Central nervous system agents", "Musculoskeletal agents"],
    "Pregnancy and perinatal": ["Endocrine agents", "Gastrointestinal agents"],
}

DEFAULT_SIZE = 20_000


def _symptom_to_chapter() -> dict[str, str]:
    mapping: dict[str, str] = {}
    for chapter, categories in SYMPTOM_SPEC.items():
        for conditions in categories.values():
            for condition in conditions:
                mapping[condition] = chapter
    return mapping


def _doctors_by_division() -> dict[str, list[str]]:
    return {
        division: [doctor for doctors in services.values() for doctor in doctors]
        for division, services in DOCTOR_SPEC.items()
    }


def _symptoms_by_chapter() -> dict[str, list[str]]:
    return {
        chapter: [condition for conditions in categories.values() for condition in conditions]
        for chapter, categories in SYMPTOM_SPEC.items()
    }


def _zips_by_region() -> dict[str, list[str]]:
    all_leaves = zip_leaves()
    by_region: dict[str, list[str]] = {}
    for region, states in ZIP_REGION_SPEC.items():
        prefixes = [prefix for state_prefixes in states.values() for prefix in state_prefixes]
        by_region[region] = [leaf for leaf in all_leaves if leaf[:3] in prefixes]
    return by_region


def _drugs_by_class() -> dict[str, list[str]]:
    return {
        drug_class: [drug for drugs in subclasses.values() for drug in drugs]
        for drug_class, subclasses in PRESCRIPTION_SPEC.items()
    }


@dataclass(frozen=True)
class _GeneratorConfig:
    size: int = DEFAULT_SIZE
    seed: object = 2005
    # Probability that a prescription ignores the symptom's chapter and is
    # drawn uniformly over drug classes instead; keeps every class populated.
    unrelated_prescription_rate: float = 0.15
    # Guaranteed minimum share of every top-level category (chapter, division,
    # region); keeps every depth-1 DHT node populated enough for binning to be
    # feasible at the largest k the paper sweeps.
    min_group_share: float = 0.03


class MedicalDataGenerator:
    """Deterministic generator for the synthetic clinical table."""

    def __init__(self, *, size: int = DEFAULT_SIZE, seed: object = 2005) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self._config = _GeneratorConfig(size=size, seed=seed)
        self._schema = medical_schema()
        share = self._config.min_group_share
        self._zip_dist = GroupedSkewedCategorical(
            _zips_by_region(), min_group_share=share, leaf_exponent=0.9, seed=(seed, "zip")
        )
        self._doctor_dist = GroupedSkewedCategorical(
            _doctors_by_division(), min_group_share=share, leaf_exponent=0.6, seed=(seed, "doctor")
        )
        self._symptom_dist = GroupedSkewedCategorical(
            _symptoms_by_chapter(), min_group_share=share, leaf_exponent=1.0, seed=(seed, "symptom")
        )
        self._age_dist = AgeMixture()
        self._chapter_of = _symptom_to_chapter()
        self._drugs_by_class = _drugs_by_class()

    @property
    def size(self) -> int:
        return self._config.size

    def _generate_ssns(self, rng: DeterministicPRNG) -> list[str]:
        """Unique, zero-padded nine-digit identifiers."""
        seen: set[str] = set()
        ssns: list[str] = []
        while len(ssns) < self._config.size:
            candidate = f"{rng.randint(10_000_000, 999_999_999):09d}"
            if candidate not in seen:
                seen.add(candidate)
                ssns.append(candidate)
        return ssns

    def _prescription_for(self, symptom: str, rng: DeterministicPRNG) -> str:
        chapter = self._chapter_of[symptom]
        candidate_classes = _CHAPTER_TO_DRUG_CLASSES[chapter]
        # A fraction of "unrelated" prescriptions keeps the correlation
        # realistic rather than deterministic and every drug class populated.
        if rng.random() < self._config.unrelated_prescription_rate:
            drug_class = rng.choice(sorted(self._drugs_by_class))
        else:
            drug_class = rng.choice(candidate_classes)
        return rng.choice(self._drugs_by_class[drug_class])

    def generate(self) -> Table:
        """Generate the full table."""
        rng = DeterministicPRNG(("medical-data", self._config.seed))
        table = Table(self._schema)
        ssns = self._generate_ssns(rng.spawn("ssn"))
        age_rng = rng.spawn("age")
        zip_rng = rng.spawn("zip")
        doctor_rng = rng.spawn("doctor")
        symptom_rng = rng.spawn("symptom")
        prescription_rng = rng.spawn("prescription")
        for index in range(self._config.size):
            symptom = self._symptom_dist.sample(symptom_rng)
            table.insert(
                {
                    "ssn": ssns[index],
                    "age": self._age_dist.sample(age_rng),
                    "zip_code": self._zip_dist.sample(zip_rng),
                    "doctor": self._doctor_dist.sample(doctor_rng),
                    "symptom": symptom,
                    "prescription": self._prescription_for(symptom, prescription_rng),
                }
            )
        return table


def generate_medical_table(size: int = DEFAULT_SIZE, seed: object = 2005) -> Table:
    """Convenience wrapper: build and run a :class:`MedicalDataGenerator`."""
    return MedicalDataGenerator(size=size, seed=seed).generate()
