"""Deterministic generator for the synthetic financial-transactions table.

A second dataset fixture over :func:`repro.ontology.finance.financial_schema`:
ten-digit numeric account identifiers (so the registration statistic of
Section 4.2 is well defined), skewed regional and merchant marginals with
every top-level group guaranteed a minimum share, and a weak
channel→amount-band correlation (transfers skew large, card-present skews
small) so multi-attribute binning has structure to chew on.
"""

from __future__ import annotations

from repro.crypto.prng import DeterministicPRNG
from repro.datagen.distributions import GroupedSkewedCategorical
from repro.ontology.finance import (
    AMOUNT_SPEC,
    CHANNEL_SPEC,
    MERCHANT_SPEC,
    REGION_SPEC,
    financial_schema,
)
from repro.relational.table import Table

__all__ = ["FinancialDataGenerator", "generate_financial_table"]

DEFAULT_SIZE = 5_000

# Channel group -> amount groups the transaction is likely drawn from.
_CHANNEL_TO_AMOUNT_GROUPS: dict[str, list[str]] = {
    "Card present": ["Micro", "Mid"],
    "Card absent": ["Micro", "Mid"],
    "Account transfer": ["Mid", "Large"],
}


def _flatten(spec: dict[str, dict[str, list[str]]]) -> dict[str, list[str]]:
    return {
        group: [leaf for leaves in subgroups.values() for leaf in leaves]
        for group, subgroups in spec.items()
    }


class FinancialDataGenerator:
    """Deterministic generator for the synthetic transactions table."""

    def __init__(self, *, size: int = DEFAULT_SIZE, seed: object = 2005) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self._size = size
        self._seed = seed
        self._schema = financial_schema()
        self._region_dist = GroupedSkewedCategorical(
            _flatten(REGION_SPEC), min_group_share=0.1, leaf_exponent=0.8, seed=(seed, "region")
        )
        self._merchant_dist = GroupedSkewedCategorical(
            _flatten(MERCHANT_SPEC), min_group_share=0.1, leaf_exponent=0.9, seed=(seed, "merchant")
        )
        self._channel_dist = GroupedSkewedCategorical(
            {group: list(leaves) for group, leaves in CHANNEL_SPEC.items()},
            min_group_share=0.15,
            leaf_exponent=0.6,
            seed=(seed, "channel"),
        )

    @property
    def size(self) -> int:
        return self._size

    def _generate_account_ids(self, rng: DeterministicPRNG) -> list[str]:
        """Unique, zero-padded ten-digit account numbers."""
        seen: set[str] = set()
        accounts: list[str] = []
        while len(accounts) < self._size:
            candidate = f"{rng.randint(100_000_000, 9_999_999_999):010d}"
            if candidate not in seen:
                seen.add(candidate)
                accounts.append(candidate)
        return accounts

    def _amount_band_for(self, channel: str, rng: DeterministicPRNG) -> str:
        channel_group = next(
            group for group, leaves in CHANNEL_SPEC.items() if channel in leaves
        )
        # One in five transactions ignores the channel's typical range, so
        # every amount band stays populated under every channel.
        if rng.random() < 0.2:
            group = rng.choice(sorted(AMOUNT_SPEC))
        else:
            group = rng.choice(_CHANNEL_TO_AMOUNT_GROUPS[channel_group])
        return rng.choice(AMOUNT_SPEC[group])

    def generate(self) -> Table:
        rng = DeterministicPRNG(("financial-data", self._seed))
        table = Table(self._schema)
        accounts = self._generate_account_ids(rng.spawn("account"))
        region_rng = rng.spawn("region")
        merchant_rng = rng.spawn("merchant")
        channel_rng = rng.spawn("channel")
        amount_rng = rng.spawn("amount")
        for index in range(self._size):
            channel = self._channel_dist.sample(channel_rng)
            table.insert(
                {
                    "account_id": accounts[index],
                    "region": self._region_dist.sample(region_rng),
                    "merchant_category": self._merchant_dist.sample(merchant_rng),
                    "channel": channel,
                    "amount_band": self._amount_band_for(channel, amount_rng),
                }
            )
        return table


def generate_financial_table(size: int = DEFAULT_SIZE, seed: object = 2005) -> Table:
    """Convenience wrapper: build and run a :class:`FinancialDataGenerator`."""
    return FinancialDataGenerator(size=size, seed=seed).generate()
