"""Practitioner hierarchy for the ``doctor`` column.

The hierarchy mirrors the role DHT of Figure 1 of the paper, extended to the
granularity of individual (synthetic) practitioners: the hospital sits at the
root, below it the clinical divisions, then the specialty services, and the
named doctors are the leaves.  Figure 14 of the paper reports around 20 bins
for the ``doctor`` attribute; this ontology has a comparable number of
services and roughly 60 individual practitioners.
"""

from __future__ import annotations

from repro.dht import DomainHierarchyTree, from_nested_mapping

__all__ = ["doctor_tree", "DOCTOR_SPEC"]

DOCTOR_SPEC: dict[str, dict[str, list[str]]] = {
    "Medicine division": {
        "Cardiology service": ["Dr. Alvarez", "Dr. Bennett", "Dr. Cho", "Dr. Das"],
        "Endocrinology service": ["Dr. Eriksen", "Dr. Farouk", "Dr. Geller"],
        "Gastroenterology service": ["Dr. Huang", "Dr. Ibrahim", "Dr. Jensen"],
        "Pulmonology service": ["Dr. Kim", "Dr. Laurent", "Dr. Mbeki"],
        "Nephrology service": ["Dr. Novak", "Dr. Okafor", "Dr. Petrov"],
        "Infectious disease service": ["Dr. Quinn", "Dr. Rossi", "Dr. Sato"],
    },
    "Surgery division": {
        "General surgery service": ["Dr. Tanaka", "Dr. Ulrich", "Dr. Vargas", "Dr. Weiss"],
        "Orthopedic service": ["Dr. Xu", "Dr. Yamada", "Dr. Zhou"],
        "Cardiothoracic service": ["Dr. Adler", "Dr. Banerjee", "Dr. Castillo"],
        "Neurosurgery service": ["Dr. Dvorak", "Dr. Eze", "Dr. Fontaine"],
    },
    "Women and children division": {
        "Obstetrics service": ["Dr. Garcia", "Dr. Haddad", "Dr. Ivanova"],
        "Gynecology service": ["Dr. Jara", "Dr. Kowalski", "Dr. Lindgren"],
        "Pediatrics service": ["Dr. Moreau", "Dr. Nakamura", "Dr. Olsen", "Dr. Park"],
        "Neonatology service": ["Dr. Qureshi", "Dr. Ramirez", "Dr. Schmidt"],
    },
    "Mental health division": {
        "Psychiatry service": ["Dr. Thompson", "Dr. Ueda", "Dr. Villanueva"],
        "Psychology service": ["Dr. Weber", "Dr. Xiong", "Dr. Yilmaz"],
        "Addiction medicine service": ["Dr. Zimmermann", "Dr. Abbasi", "Dr. Brooks"],
    },
    "Emergency and diagnostics division": {
        "Emergency service": ["Dr. Costa", "Dr. Dimitrov", "Dr. Ellis", "Dr. Ferreira"],
        "Radiology service": ["Dr. Gupta", "Dr. Horvat", "Dr. Ito"],
        "Pathology service": ["Dr. Johansson", "Dr. Khan", "Dr. Larsen"],
        "Anesthesiology service": ["Dr. Martins", "Dr. Nguyen", "Dr. Ortega"],
    },
}


def doctor_tree() -> DomainHierarchyTree:
    """Three-level practitioner DHT for the ``doctor`` column."""
    return from_nested_mapping("doctor", "Any practitioner", DOCTOR_SPEC)
