"""ICD-9-style symptom / diagnosis hierarchy for the ``symptom`` column.

The paper bases the DHT for ``symptom`` on the International Classification of
Diseases (ICD-9).  The full ICD-9 codebook is proprietaryly formatted and not
available offline, so this module defines an ICD-9-*style* hierarchy —
chapters, three-digit-style categories and specific conditions — whose shape
(depth 3, a dozen-plus chapters, ~150 leaf conditions) is comparable to the
slice of ICD-9 a 20 000-tuple clinical extract would cover.  Binning and
watermarking only see the tree structure, never the clinical semantics.
"""

from __future__ import annotations

from repro.dht import DomainHierarchyTree, from_nested_mapping

__all__ = ["symptom_tree", "SYMPTOM_SPEC"]

# Chapter -> category -> list of specific conditions (the leaves).
SYMPTOM_SPEC: dict[str, dict[str, list[str]]] = {
    "Infectious diseases": {
        "Intestinal infections": ["Cholera", "Salmonellosis", "Shigellosis", "E.coli enteritis"],
        "Tuberculosis": ["Pulmonary TB", "Miliary TB", "TB of meninges"],
        "Viral infections": ["Measles", "Rubella", "Viral hepatitis", "Herpes zoster", "Infectious mononucleosis"],
        "Mycoses": ["Candidiasis", "Dermatophytosis", "Aspergillosis"],
    },
    "Neoplasms": {
        "Digestive neoplasms": ["Gastric carcinoma", "Colon carcinoma", "Pancreatic carcinoma", "Hepatic carcinoma"],
        "Respiratory neoplasms": ["Lung carcinoma", "Laryngeal carcinoma", "Pleural mesothelioma"],
        "Breast and skin neoplasms": ["Breast carcinoma", "Melanoma", "Basal cell carcinoma"],
        "Hematologic neoplasms": ["Lymphoma", "Acute leukemia", "Chronic leukemia", "Multiple myeloma"],
    },
    "Endocrine and metabolic": {
        "Diabetes": ["Type 1 diabetes", "Type 2 diabetes", "Gestational diabetes"],
        "Thyroid disorders": ["Hypothyroidism", "Hyperthyroidism", "Goiter", "Thyroiditis"],
        "Lipid and nutrition": ["Hyperlipidemia", "Obesity", "Vitamin D deficiency", "Malnutrition"],
        "Other endocrine": ["Gout", "Cushing syndrome", "Addison disease"],
    },
    "Mental disorders": {
        "Mood disorders": ["Major depression", "Bipolar disorder", "Dysthymia"],
        "Anxiety disorders": ["Generalized anxiety", "Panic disorder", "Obsessive-compulsive disorder", "PTSD"],
        "Psychotic disorders": ["Schizophrenia", "Delusional disorder"],
        "Substance disorders": ["Alcohol dependence", "Opioid dependence", "Nicotine dependence"],
    },
    "Nervous system": {
        "Episodic disorders": ["Migraine", "Tension headache", "Cluster headache", "Epilepsy"],
        "Degenerative disorders": ["Parkinson disease", "Alzheimer disease", "Multiple sclerosis", "ALS"],
        "Peripheral disorders": ["Carpal tunnel syndrome", "Peripheral neuropathy", "Bell palsy"],
        "Sense organ disorders": ["Cataract", "Glaucoma", "Otitis media", "Sensorineural hearing loss"],
    },
    "Circulatory system": {
        "Hypertensive disease": ["Essential hypertension", "Secondary hypertension", "Hypertensive heart disease"],
        "Ischemic heart disease": ["Angina pectoris", "Acute myocardial infarction", "Chronic ischemic heart disease"],
        "Arrhythmias and failure": ["Atrial fibrillation", "Ventricular tachycardia", "Congestive heart failure"],
        "Cerebrovascular disease": ["Ischemic stroke", "Hemorrhagic stroke", "Transient ischemic attack"],
        "Vascular disease": ["Peripheral artery disease", "Deep vein thrombosis", "Varicose veins", "Aortic aneurysm"],
    },
    "Respiratory system": {
        "Upper respiratory": ["Acute sinusitis", "Acute pharyngitis", "Allergic rhinitis", "Chronic tonsillitis"],
        "Lower respiratory": ["Acute bronchitis", "Bacterial pneumonia", "Viral pneumonia", "Influenza"],
        "Chronic airway disease": ["Asthma", "COPD", "Bronchiectasis", "Emphysema"],
        "Pleural and other": ["Pleural effusion", "Pneumothorax", "Pulmonary fibrosis"],
    },
    "Digestive system": {
        "Upper GI disorders": ["Gastroesophageal reflux", "Gastric ulcer", "Duodenal ulcer", "Gastritis"],
        "Intestinal disorders": ["Irritable bowel syndrome", "Crohn disease", "Ulcerative colitis", "Diverticulitis", "Appendicitis"],
        "Liver and pancreas": ["Cirrhosis", "Fatty liver disease", "Cholelithiasis", "Acute pancreatitis"],
        "Oral and other": ["Dental caries", "Periodontitis", "Celiac disease"],
    },
    "Genitourinary system": {
        "Kidney disease": ["Chronic kidney disease", "Acute kidney injury", "Nephrolithiasis", "Glomerulonephritis"],
        "Urinary tract": ["Cystitis", "Pyelonephritis", "Urinary incontinence"],
        "Reproductive system": ["Benign prostatic hyperplasia", "Endometriosis", "Polycystic ovary syndrome", "Uterine fibroids"],
    },
    "Skin and musculoskeletal": {
        "Dermatologic": ["Atopic dermatitis", "Psoriasis", "Acne vulgaris", "Cellulitis", "Urticaria"],
        "Arthropathies": ["Osteoarthritis", "Rheumatoid arthritis", "Septic arthritis"],
        "Spine and bone": ["Low back pain", "Lumbar disc herniation", "Osteoporosis", "Scoliosis"],
        "Soft tissue": ["Fibromyalgia", "Rotator cuff syndrome", "Plantar fasciitis"],
    },
    "Injury and poisoning": {
        "Fractures": ["Wrist fracture", "Hip fracture", "Ankle fracture", "Rib fracture"],
        "Wounds and burns": ["Laceration", "Second-degree burn", "Concussion", "Contusion"],
        "Poisoning": ["Drug overdose", "Carbon monoxide poisoning", "Food poisoning"],
    },
    "Pregnancy and perinatal": {
        "Pregnancy complications": ["Preeclampsia", "Gestational hypertension", "Hyperemesis gravidarum"],
        "Perinatal conditions": ["Preterm birth", "Neonatal jaundice", "Low birth weight"],
    },
}


def symptom_tree() -> DomainHierarchyTree:
    """Three-level ICD-9-style DHT for the ``symptom`` column."""
    return from_nested_mapping("symptom", "Any diagnosis", SYMPTOM_SPEC)
