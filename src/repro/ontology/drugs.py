"""Drug / prescription hierarchy for the ``prescription`` column.

A three-level ontology: therapeutic class -> pharmacological subclass ->
individual drug (leaf).  The shape is modelled after ATC-style drug
classifications; the protection algorithms only use the tree structure.
"""

from __future__ import annotations

from repro.dht import DomainHierarchyTree, from_nested_mapping

__all__ = ["prescription_tree", "PRESCRIPTION_SPEC"]

PRESCRIPTION_SPEC: dict[str, dict[str, list[str]]] = {
    "Cardiovascular agents": {
        "Beta blockers": ["Metoprolol", "Atenolol", "Propranolol", "Carvedilol"],
        "ACE inhibitors": ["Lisinopril", "Enalapril", "Ramipril"],
        "Angiotensin receptor blockers": ["Losartan", "Valsartan", "Irbesartan"],
        "Calcium channel blockers": ["Amlodipine", "Diltiazem", "Verapamil"],
        "Diuretics": ["Hydrochlorothiazide", "Furosemide", "Spironolactone"],
        "Statins": ["Atorvastatin", "Simvastatin", "Rosuvastatin", "Pravastatin"],
        "Anticoagulants": ["Warfarin", "Apixaban", "Rivaroxaban", "Heparin"],
    },
    "Anti-infective agents": {
        "Penicillins": ["Amoxicillin", "Ampicillin", "Piperacillin"],
        "Cephalosporins": ["Cephalexin", "Ceftriaxone", "Cefuroxime"],
        "Macrolides": ["Azithromycin", "Clarithromycin", "Erythromycin"],
        "Fluoroquinolones": ["Ciprofloxacin", "Levofloxacin", "Moxifloxacin"],
        "Antivirals": ["Oseltamivir", "Acyclovir", "Valacyclovir"],
        "Antifungals": ["Fluconazole", "Nystatin", "Terbinafine"],
    },
    "Central nervous system agents": {
        "Opioid analgesics": ["Morphine", "Oxycodone", "Tramadol", "Fentanyl"],
        "Non-opioid analgesics": ["Acetaminophen", "Ibuprofen", "Naproxen", "Celecoxib"],
        "Antidepressants": ["Sertraline", "Fluoxetine", "Escitalopram", "Venlafaxine", "Bupropion"],
        "Anxiolytics": ["Lorazepam", "Diazepam", "Alprazolam"],
        "Antipsychotics": ["Risperidone", "Olanzapine", "Quetiapine"],
        "Anticonvulsants": ["Levetiracetam", "Lamotrigine", "Valproate", "Carbamazepine"],
    },
    "Endocrine agents": {
        "Insulins": ["Insulin glargine", "Insulin lispro", "Insulin aspart"],
        "Oral antidiabetics": ["Metformin", "Glipizide", "Sitagliptin", "Empagliflozin"],
        "Thyroid agents": ["Levothyroxine", "Methimazole", "Propylthiouracil"],
        "Corticosteroids": ["Prednisone", "Dexamethasone", "Hydrocortisone"],
    },
    "Respiratory agents": {
        "Bronchodilators": ["Albuterol", "Salmeterol", "Tiotropium", "Ipratropium"],
        "Inhaled corticosteroids": ["Fluticasone", "Budesonide", "Beclomethasone"],
        "Antihistamines": ["Cetirizine", "Loratadine", "Diphenhydramine", "Fexofenadine"],
        "Cough and cold": ["Dextromethorphan", "Guaifenesin", "Pseudoephedrine"],
    },
    "Gastrointestinal agents": {
        "Proton pump inhibitors": ["Omeprazole", "Pantoprazole", "Esomeprazole"],
        "H2 antagonists": ["Famotidine", "Ranitidine"],
        "Antiemetics": ["Ondansetron", "Metoclopramide", "Promethazine"],
        "Laxatives and antidiarrheals": ["Polyethylene glycol", "Loperamide", "Docusate"],
    },
    "Musculoskeletal agents": {
        "Bone agents": ["Alendronate", "Risedronate", "Denosumab"],
        "Muscle relaxants": ["Cyclobenzaprine", "Baclofen", "Tizanidine"],
        "Antigout agents": ["Allopurinol", "Colchicine", "Febuxostat"],
        "DMARDs": ["Methotrexate", "Hydroxychloroquine", "Sulfasalazine"],
    },
}


def prescription_tree() -> DomainHierarchyTree:
    """Three-level drug-classification DHT for the ``prescription`` column."""
    return from_nested_mapping("prescription", "Any medication", PRESCRIPTION_SPEC)
