"""Concrete domain hierarchy trees for the medical schema of the paper.

The evaluation (Section 7) runs on a table with schema
``R(ssn, age, zip_code, doctor, symptom, prescription)``.  The paper builds a
DHT for every quasi-identifying column during a preprocessing step: an ICD-9
based hierarchy for ``symptom`` and self-defined ontologies for the others,
with a binary interval tree for ``age`` (Figure 3).

The clinical content of the original ontologies is not published, so this
package ships *ICD-9-style* and domain-plausible hierarchies of comparable
shape (fan-out, depth, leaf counts).  Only the shape matters to binning and
watermarking: both algorithms treat labels as opaque values.

:func:`standard_ontology` returns the full registry keyed by column name;
:func:`roles_tree` reproduces the illustrative Figure 1 hierarchy used in the
documentation and tests.
"""

from repro.ontology.age import age_tree
from repro.ontology.drugs import prescription_tree
from repro.ontology.finance import financial_ontology, financial_schema
from repro.ontology.geography import zip_code_tree
from repro.ontology.icd9 import symptom_tree
from repro.ontology.practitioners import doctor_tree
from repro.ontology.registry import OntologyRegistry, roles_tree, standard_ontology

__all__ = [
    "age_tree",
    "zip_code_tree",
    "doctor_tree",
    "symptom_tree",
    "prescription_tree",
    "roles_tree",
    "standard_ontology",
    "financial_ontology",
    "financial_schema",
    "OntologyRegistry",
]
