"""Numeric DHT for the ``age`` column.

Figure 3 of the paper constructs the age hierarchy by dividing the domain
``[0, 150)`` into disjoint intervals and pairwise combining them into a binary
tree.  The experiments use "narrower intervals" than the figure's 25-year
ones; we default to 5-year leaf intervals (30 leaves, tree height 5), with the
granularity configurable for sensitivity studies.
"""

from __future__ import annotations

from repro.dht import DomainHierarchyTree, binary_numeric_tree

__all__ = ["age_tree", "AGE_LOWER", "AGE_UPPER", "DEFAULT_LEAF_WIDTH"]

AGE_LOWER = 0.0
AGE_UPPER = 150.0
DEFAULT_LEAF_WIDTH = 5.0


def age_tree(leaf_width: float = DEFAULT_LEAF_WIDTH) -> DomainHierarchyTree:
    """Binary DHT over ``[0, 150)`` with equal-width leaf intervals.

    Parameters
    ----------
    leaf_width:
        Width (in years) of every leaf interval.  Must divide the domain
        width; the paper's Figure 3 corresponds to ``leaf_width=25``, the
        evaluation to a narrower setting such as the default 5.
    """
    if leaf_width <= 0:
        raise ValueError("leaf_width must be positive")
    span = AGE_UPPER - AGE_LOWER
    n_intervals = span / leaf_width
    if abs(n_intervals - round(n_intervals)) > 1e-9:
        raise ValueError(f"leaf_width {leaf_width} does not evenly divide the age domain [0, 150)")
    return binary_numeric_tree("age", AGE_LOWER, AGE_UPPER, n_intervals=int(round(n_intervals)))
