"""A financial-transactions schema with its domain hierarchy trees.

The paper's pipeline is schema-agnostic: binning and watermarking consume only
the column taxonomy, the per-column DHTs and the value→leaf mapping.  This
module provides a second, independent domain — card transactions instead of
clinical records — to exercise that claim end to end:

``T(account_id, region, merchant_category, channel, amount_band)``

with one identifying column (``account_id``, ten-digit numeric strings so the
registration statistic of Section 4.2 is defined) and four categorical
quasi-identifiers, each with a three-level DHT of its own.
"""

from __future__ import annotations

from repro.dht import DomainHierarchyTree, from_nested_mapping
from repro.ontology.registry import OntologyRegistry
from repro.relational.schema import Column, ColumnKind, ColumnType, TableSchema

__all__ = [
    "REGION_SPEC",
    "MERCHANT_SPEC",
    "CHANNEL_SPEC",
    "AMOUNT_SPEC",
    "region_tree",
    "merchant_category_tree",
    "channel_tree",
    "amount_band_tree",
    "financial_schema",
    "financial_ontology",
]

REGION_SPEC: dict[str, dict[str, list[str]]] = {
    "Americas": {
        "North America": ["US East", "US West", "US Central", "Canada"],
        "Latin America": ["Brazil", "Mexico", "Argentina"],
    },
    "EMEA": {
        "Europe": ["United Kingdom", "Germany", "France", "Nordics"],
        "Middle East and Africa": ["UAE", "South Africa", "Nigeria"],
    },
    "APAC": {
        "East Asia": ["Japan", "South Korea", "Greater China"],
        "South and Southeast Asia": ["India", "Singapore", "Indonesia"],
        "Oceania": ["Australia", "New Zealand"],
    },
}

MERCHANT_SPEC: dict[str, dict[str, list[str]]] = {
    "Retail": {
        "Groceries": ["Supermarket", "Convenience store", "Specialty food"],
        "General merchandise": ["Department store", "Discount store", "Online marketplace"],
    },
    "Services": {
        "Professional": ["Legal services", "Accounting", "Consulting"],
        "Personal": ["Hair and beauty", "Fitness", "Dry cleaning"],
    },
    "Travel": {
        "Transport": ["Airline", "Rail", "Ride hailing"],
        "Lodging": ["Hotel", "Vacation rental"],
    },
    "Digital": {
        "Media": ["Streaming", "Gaming", "News subscription"],
        "Software": ["SaaS subscription", "App store"],
    },
}

CHANNEL_SPEC: dict[str, list[str]] = {
    "Card present": ["POS terminal", "Contactless", "ATM"],
    "Card absent": ["E-commerce", "Phone order", "Recurring billing"],
    "Account transfer": ["Wire", "ACH", "Instant transfer"],
}

AMOUNT_SPEC: dict[str, list[str]] = {
    "Micro": ["Under 10", "10 to 50"],
    "Mid": ["50 to 200", "200 to 1000"],
    "Large": ["1000 to 5000", "Over 5000"],
}


def region_tree() -> DomainHierarchyTree:
    return from_nested_mapping("region", "World", REGION_SPEC)


def merchant_category_tree() -> DomainHierarchyTree:
    return from_nested_mapping("merchant_category", "Commerce", MERCHANT_SPEC)


def channel_tree() -> DomainHierarchyTree:
    return from_nested_mapping("channel", "Payments", CHANNEL_SPEC)


def amount_band_tree() -> DomainHierarchyTree:
    return from_nested_mapping("amount_band", "Any amount", AMOUNT_SPEC)


def financial_schema() -> TableSchema:
    """``T(account_id, region, merchant_category, channel, amount_band)``."""
    return TableSchema(
        (
            Column(
                "account_id",
                ColumnKind.IDENTIFYING,
                ColumnType.CATEGORICAL,
                "ten-digit account number",
            ),
            Column("region", ColumnKind.QUASI_IDENTIFYING, ColumnType.CATEGORICAL, "cardholder region"),
            Column(
                "merchant_category",
                ColumnKind.QUASI_IDENTIFYING,
                ColumnType.CATEGORICAL,
                "merchant category",
            ),
            Column("channel", ColumnKind.QUASI_IDENTIFYING, ColumnType.CATEGORICAL, "payment channel"),
            Column(
                "amount_band",
                ColumnKind.QUASI_IDENTIFYING,
                ColumnType.CATEGORICAL,
                "transaction amount band",
            ),
        )
    )


def financial_ontology() -> OntologyRegistry:
    """The DHT registry for the quasi-identifiers of :func:`financial_schema`."""
    return OntologyRegistry(
        {
            "region": region_tree(),
            "merchant_category": merchant_category_tree(),
            "channel": channel_tree(),
            "amount_band": amount_band_tree(),
        }
    )
