"""Registry bundling the per-column DHTs of the standard medical schema."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.dht import DomainHierarchyTree, from_nested_mapping
from repro.ontology.age import age_tree
from repro.ontology.drugs import prescription_tree
from repro.ontology.geography import zip_code_tree
from repro.ontology.icd9 import symptom_tree
from repro.ontology.practitioners import doctor_tree

__all__ = ["OntologyRegistry", "standard_ontology", "roles_tree"]


@dataclass(frozen=True)
class OntologyRegistry:
    """Immutable mapping from quasi-identifying column name to its DHT."""

    trees: Mapping[str, DomainHierarchyTree]

    def __post_init__(self) -> None:
        for name, tree in self.trees.items():
            if tree.attribute != name:
                raise ValueError(
                    f"tree registered under {name!r} describes attribute {tree.attribute!r}"
                )

    def __getitem__(self, column: str) -> DomainHierarchyTree:
        try:
            return self.trees[column]
        except KeyError:
            raise KeyError(f"no domain hierarchy tree registered for column {column!r}") from None

    def __contains__(self, column: object) -> bool:
        return column in self.trees

    def __iter__(self) -> Iterator[str]:
        return iter(self.trees)

    def __len__(self) -> int:
        return len(self.trees)

    @property
    def columns(self) -> list[str]:
        return list(self.trees)

    def items(self):
        return self.trees.items()


def standard_ontology(age_leaf_width: float = 5.0) -> OntologyRegistry:
    """The DHT registry for the paper's schema ``R(ssn, age, zip_code, doctor, symptom, prescription)``.

    The identifying column ``ssn`` has no DHT (it is encrypted, not
    generalised).
    """
    return OntologyRegistry(
        {
            "age": age_tree(leaf_width=age_leaf_width),
            "zip_code": zip_code_tree(),
            "doctor": doctor_tree(),
            "symptom": symptom_tree(),
            "prescription": prescription_tree(),
        }
    )


def roles_tree() -> DomainHierarchyTree:
    """The illustrative person-role DHT of Figure 1 of the paper.

    Used by documentation examples and tests; it is *not* part of the medical
    schema but reproduces the figure: Person -> Medical staff / Administrative
    staff -> Doctor / Paramedic / ... -> specific roles.
    """
    return from_nested_mapping(
        "role",
        "Person",
        {
            "Medical staff": {
                "Doctor": ["Surgeon", "Physician", "Radiologist"],
                "Paramedic": ["Pharmacist", "Nurse", "Consultant"],
            },
            "Administrative staff": {
                "Clerical": ["Clerk", "Receptionist"],
                "Management": ["Administrator", "Director"],
            },
        },
    )
