"""Geographic hierarchy for the ``zip_code`` column.

Zip codes generalise naturally along their prefixes: a five-digit code rolls
up to its three-digit sectional prefix, then to a state, then to a census
region.  The paper treats ``zip_code`` as a (categorical) quasi-identifier
with a self-defined ontology; this module builds a four-level DHT

    country -> region -> state -> 3-digit prefix -> 5-digit zip code

from a compact specification, generating a handful of concrete zip codes per
prefix.  The leaf count (~200) is in line with what a 20 000-tuple clinical
extract from a few states would contain.
"""

from __future__ import annotations

from repro.dht import DomainHierarchyTree, from_nested_mapping

__all__ = ["zip_code_tree", "ZIP_REGION_SPEC", "zip_leaves"]

# region -> state -> list of 3-digit prefixes.
ZIP_REGION_SPEC: dict[str, dict[str, list[str]]] = {
    "Northeast region": {
        "Massachusetts": ["021", "024"],
        "New York": ["100", "104", "112"],
        "Pennsylvania": ["151", "190"],
    },
    "Midwest region": {
        "Illinois": ["606", "616"],
        "Ohio": ["432", "441"],
        "Minnesota": ["554"],
    },
    "South region": {
        "Texas": ["750", "770", "787"],
        "Florida": ["331", "328"],
        "Georgia": ["303"],
    },
    "West region": {
        "California": ["900", "941", "958"],
        "Washington": ["980", "992"],
        "Colorado": ["802"],
    },
}

# Last-two-digit suffixes attached to every prefix to form the leaf zip codes.
_ZIP_SUFFIXES = ("01", "12", "27", "39", "45")


def zip_leaves() -> list[str]:
    """All five-digit zip codes present in the ontology."""
    leaves: list[str] = []
    for states in ZIP_REGION_SPEC.values():
        for prefixes in states.values():
            for prefix in prefixes:
                leaves.extend(prefix + suffix for suffix in _ZIP_SUFFIXES)
    return leaves


def zip_code_tree() -> DomainHierarchyTree:
    """Four-level geographic DHT for the ``zip_code`` column."""
    spec: dict[str, dict[str, dict[str, list[str]]]] = {}
    for region, states in ZIP_REGION_SPEC.items():
        spec[region] = {}
        for state, prefixes in states.items():
            spec[region][state] = {
                f"{prefix}xx": [prefix + suffix for suffix in _ZIP_SUFFIXES] for prefix in prefixes
            }
    return from_nested_mapping("zip_code", "United States", spec)
