"""Keyed hashing and the one-way mark-derivation function.

The watermarking algorithm (Figure 9 of the paper) uses a keyed cryptographic
hash ``H`` in three places:

* tuple selection: a tuple ``t`` is selected for embedding when
  ``H(t.ident, k1) mod eta == 0`` (Equation 5),
* the permutation index at each level: ``H(t.ident, k2) mod |S|``,
* the position of the bit inside the replicated mark:
  ``H(t.ident, k2) mod |wmd|``.

The paper suggests MD5 or SHA1; we use HMAC-SHA-256 which has the same
interface and strictly better properties.  All helpers return non-negative
integers so that ``mod`` arithmetic matches the pseudo-code directly.

The rightful-ownership solution (Section 5.4) additionally needs a one-way
function ``F`` mapping a statistic of the clear-text identifying column to the
mark bits; :func:`mark_from_statistic` provides it.
"""

from __future__ import annotations

import hashlib
import hmac
import math

__all__ = [
    "keyed_hash_bytes",
    "keyed_hash",
    "serialise_value",
    "derive_subkey",
    "one_way_bits",
    "mark_from_statistic",
]


def _to_bytes(value: object) -> bytes:
    """Canonically serialise *value* for hashing.

    Accepts the value kinds that appear in tables: ``bytes``, ``str``, ``int``,
    ``float`` and ``None``.  Tuples and lists are serialised element-wise with
    an unambiguous length-prefixed framing so that, e.g., ``("ab", "c")`` and
    ``("a", "bc")`` hash differently.
    """
    if isinstance(value, bytes):
        return b"B" + value
    if isinstance(value, str):
        return b"S" + value.encode("utf-8")
    if isinstance(value, bool):
        return b"L1" if value else b"L0"
    if isinstance(value, int):
        return b"I" + str(value).encode("ascii")
    if isinstance(value, float):
        # repr() keeps full precision and is stable across platforms for
        # the values we use.
        return b"F" + repr(value).encode("ascii")
    if value is None:
        return b"N"
    if isinstance(value, (tuple, list)):
        parts = [b"T", str(len(value)).encode("ascii")]
        for item in value:
            encoded = _to_bytes(item)
            parts.append(str(len(encoded)).encode("ascii"))
            parts.append(b":")
            parts.append(encoded)
        return b"".join(parts)
    raise TypeError(f"cannot hash value of type {type(value).__name__!r}")


#: Public alias: the batched engine (:mod:`repro.crypto.batch`) reuses this
#: serialisation so batched and scalar digests can never drift apart.
serialise_value = _to_bytes


def _key_bytes(key: object) -> bytes:
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, int):
        return str(key).encode("ascii")
    raise TypeError(f"unsupported key type {type(key).__name__!r}")


def keyed_hash_bytes(value: object, key: object) -> bytes:
    """Return the 32-byte HMAC-SHA-256 digest of *value* under *key*."""
    return hmac.new(_key_bytes(key), _to_bytes(value), hashlib.sha256).digest()


def keyed_hash(value: object, key: object) -> int:
    """Return ``H(value, key)`` as a non-negative integer.

    This is the ``H()`` of the paper: a keyed cryptographic hash whose output
    is used with modular arithmetic.  The digest is interpreted as a big-endian
    unsigned integer.
    """
    return int.from_bytes(keyed_hash_bytes(value, key), "big")


def derive_subkey(key: object, label: str) -> bytes:
    """Derive an independent sub-key from *key* for the given *label*.

    The paper stresses that distinct keys ``k1`` and ``k2`` must be used for
    the selection hash and the permutation hash so that the two computations
    are uncorrelated.  When a caller only supplies a single master secret this
    helper expands it into independent sub-keys.
    """
    return hmac.new(_key_bytes(key), b"subkey:" + label.encode("utf-8"), hashlib.sha256).digest()


def one_way_bits(value: object, n_bits: int, *, salt: bytes = b"repro-mark") -> list[int]:
    """One-way function ``F`` mapping *value* to ``n_bits`` mark bits.

    Used by the rightful-ownership protocol (Section 5.4): the owner's mark is
    ``F(v)`` where ``v`` is a statistic of the clear-text identifying column.
    The function must be one-way so that an attacker cannot fabricate a bogus
    "original" whose statistic maps to a mark already present in the data.
    """
    if n_bits <= 0:
        raise ValueError("n_bits must be positive")
    bits: list[int] = []
    counter = 0
    payload = b"|" + _to_bytes(value)
    while len(bits) < n_bits:
        digest = hashlib.sha256(salt + b"|" + str(counter).encode() + payload).digest()
        for byte in digest:
            for shift in range(8):
                bits.append((byte >> shift) & 1)
                if len(bits) == n_bits:
                    return bits
        counter += 1
    return bits


def mark_from_statistic(statistic: float, n_bits: int, *, precision: float = 1.0) -> list[int]:
    """Derive a mark from a numeric *statistic* of the clear-text identifiers.

    The statistic (e.g. the mean of the clear-text SSNs) is quantised to the
    given *precision* before hashing so that the owner, who recomputes it from
    a possibly attacked table, lands on the same mark as long as the
    recomputed value is within ``precision`` of the registered one (the
    ``|v - v'| < tau`` test of Section 5.4 is performed separately by
    :class:`repro.watermarking.ownership.OwnershipRegistry`).
    """
    if precision <= 0:
        raise ValueError("precision must be positive")
    if math.isnan(statistic) or math.isinf(statistic):
        raise ValueError("statistic must be a finite number")
    quantised = int(round(statistic / precision))
    return one_way_bits(("mark-statistic", quantised), n_bits)
