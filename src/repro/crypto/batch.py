"""Batched keyed-hash engine for the watermarking hot paths.

Every hot loop of the reproduction — tuple selection (Equation 5), the
position of a cell's bit inside the replicated mark and the keyed permutation
index at every hierarchy level (Figure 9) — reduces to HMAC-SHA-256 calls of
the form ``H(t.ident, k)`` or ``H((t.ident, column, label, ...), k)``.  The
scalar :func:`repro.crypto.hashing.keyed_hash` recomputes the HMAC key
schedule (the inner and outer pads) and re-serialises the hashed value on
every call; over a 100k-row table that dominates the embed/detect runtime.

This module removes that per-call overhead in three ways:

* :class:`KeyedHashStream` builds the HMAC pads **once per key** and clones
  the prepared state with ``hmac.HMAC.copy()`` for every digest, with an
  optional per-table digest cache so repeated idents (embed followed by
  detect, or detect after several attacks) cost one dictionary lookup;
* :class:`TupleHasher` precomputes the serialisation of the constant tail of
  ``(ident, column, "position")``-style tuples, so per tuple only the ident is
  serialised — once, and shared across every hash kind and column;
* :meth:`WatermarkHashEngine.tuple_coordinates` performs a **single streamed
  pass** over a table's idents and returns, for every tuple, either ``None``
  (not selected) or a :class:`TupleCoordinates` handle exposing the bit
  position per column and the keyed permutation index per level.

:class:`ScalarWatermarkEngine` implements the same interface with the seed's
per-call arithmetic; it is the reference the equivalence suite and the scaling
benchmark compare against.  Both engines are bit-identical by construction —
they compute the very same digests — which the golden tests assert end to end.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.crypto.hashing import _key_bytes, _to_bytes, keyed_hash

if TYPE_CHECKING:  # imported lazily to avoid a crypto <-> watermarking cycle
    from repro.watermarking.keys import WatermarkKey

__all__ = [
    "serialise_value",
    "KeyedHashStream",
    "TupleHasher",
    "TupleCoordinates",
    "WatermarkHashEngine",
    "ScalarWatermarkEngine",
    "make_engine",
]

#: Canonical serialisation shared with the scalar path (re-exported so batch
#: callers never drift from :func:`repro.crypto.hashing.keyed_hash`).
serialise_value = _to_bytes

#: Default capacity of the per-stream digest cache.  Entries are
#: (payload bytes -> int) pairs; at ~100 bytes each the default bounds the
#: cache to a few hundred MB even for adversarially long idents, and the
#: cache is simply cleared (not evicted entry-wise) when it fills up.
DEFAULT_CACHE_SIZE = 1 << 20


def _length_prefixed(encoded: bytes) -> bytes:
    """The ``<len>:<bytes>`` framing used inside tuple serialisations."""
    return str(len(encoded)).encode("ascii") + b":" + encoded


_SHA256_BLOCK = 64


def _hmac_pads(key: object) -> tuple["hashlib._Hash", "hashlib._Hash"]:
    """SHA-256 states pre-fed with the HMAC inner and outer padded keys.

    Implements the RFC 2104 key schedule once: keys longer than the block
    size are hashed first, then zero-padded and XORed with the ipad/opad
    constants.  Digests obtained by cloning these states are bit-identical
    to ``hmac.new(key, payload, hashlib.sha256)`` — asserted by the
    equivalence suite — while each clone is a single C-level ``copy()`` of a
    raw hash object instead of a pass through the ``hmac`` wrapper class.
    """
    material = _key_bytes(key)
    if len(material) > _SHA256_BLOCK:
        material = hashlib.sha256(material).digest()
    padded = material + b"\x00" * (_SHA256_BLOCK - len(material))
    inner = hashlib.sha256(bytes(byte ^ 0x36 for byte in padded))
    outer = hashlib.sha256(bytes(byte ^ 0x5C for byte in padded))
    return inner, outer


class KeyedHashStream:
    """HMAC-SHA-256 stream with a precomputed key schedule and digest cache.

    The inner/outer pads of HMAC are derived from the key once, in
    ``__init__``; every subsequent digest clones the two prepared SHA-256
    states instead of rebuilding the key schedule.  With ``cache_size > 0``
    integer digests are memoised by payload, which turns the second and later
    sweeps over the same table (detection after embedding, detection after an
    attack that preserves idents) into dictionary lookups.
    """

    __slots__ = ("_inner", "_outer", "_cache", "_cache_size")

    def __init__(self, key: object, *, cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        self._inner, self._outer = _hmac_pads(key)
        self._cache: dict[bytes, int] | None = {} if cache_size > 0 else None
        self._cache_size = cache_size

    # ----------------------------------------------------------- raw payloads
    def digest_payload(self, payload: bytes) -> bytes:
        """32-byte digest of an already-serialised *payload*."""
        inner = self._inner.copy()
        inner.update(payload)
        outer = self._outer.copy()
        outer.update(inner.digest())
        return outer.digest()

    def hash_payload(self, payload: bytes) -> int:
        """Integer digest of an already-serialised *payload* (cached)."""
        cache = self._cache
        if cache is not None:
            hit = cache.get(payload)
            if hit is not None:
                return hit
        inner = self._inner.copy()
        inner.update(payload)
        outer = self._outer.copy()
        outer.update(inner.digest())
        value = int.from_bytes(outer.digest(), "big")
        if cache is not None:
            if len(cache) >= self._cache_size:
                cache.clear()
            cache[payload] = value
        return value

    def clear_cache(self) -> None:
        """Drop every memoised digest (long-running processes, key rotation)."""
        if self._cache is not None:
            self._cache.clear()

    # --------------------------------------------------------- python values
    def digest(self, value: object) -> bytes:
        """Equivalent of :func:`repro.crypto.hashing.keyed_hash_bytes`."""
        return self.digest_payload(serialise_value(value))

    def hash_one(self, value: object) -> int:
        """Equivalent of :func:`repro.crypto.hashing.keyed_hash`."""
        return self.hash_payload(serialise_value(value))

    def hash_many(self, values: Iterable[object]) -> list[int]:
        """``[keyed_hash(v, key) for v in values]`` without the per-call setup."""
        serialise = serialise_value
        hash_payload = self.hash_payload
        return [hash_payload(serialise(value)) for value in values]

    def select_indices(self, idents: Iterable[object], eta: int) -> list[int]:
        """Indices where ``H(ident, key) mod eta == 0`` (Equation 5)."""
        if eta < 1:
            raise ValueError("eta must be at least 1")
        serialise = serialise_value
        hash_payload = self.hash_payload
        out: list[int] = []
        append = out.append
        for index, ident in enumerate(idents):
            if type(ident) is str:
                payload = b"S" + ident.encode("utf-8")
            else:
                payload = serialise(ident)
            if hash_payload(payload) % eta == 0:
                append(index)
        return out


class TupleHasher:
    """Hashes ``(head, *tail)`` tuples whose *tail* is fixed at construction.

    The serialisation of the constant tail — e.g. ``(column, "position")`` —
    is framed once; per call only the (typically pre-serialised) head is
    spliced in.  The produced payload is byte-identical to
    ``serialise_value((head, *tail))``, so digests agree with the scalar path.
    """

    __slots__ = ("_stream", "_prefix", "_tail")

    def __init__(self, stream: KeyedHashStream, tail: Sequence[object]) -> None:
        self._stream = stream
        self._prefix = b"T" + str(1 + len(tail)).encode("ascii")
        self._tail = b"".join(_length_prefixed(serialise_value(item)) for item in tail)

    def payload(self, head_payload: bytes) -> bytes:
        """The full tuple serialisation for a pre-serialised head."""
        return self._prefix + _length_prefixed(head_payload) + self._tail

    def hash_int(self, head_payload: bytes) -> int:
        """Integer digest of ``(head, *tail)`` for a pre-serialised head."""
        return self._stream.hash_payload(self.payload(head_payload))


class TupleCoordinates:
    """Per-tuple hash coordinates produced by a single engine sweep.

    ``position(column)`` is the index of the tuple's bit inside the replicated
    mark ``wmd`` and ``base_index(column, level, size)`` the keyed permutation
    index ``H(t.ident, k2) mod size`` at a hierarchy *level*.  Positions are
    precomputed during the sweep; permutation indices are derived lazily from
    the tuple's cached ident serialisation because the number of levels walked
    depends on the tree branch being embedded into.
    """

    __slots__ = ("_engine", "_payload", "_positions")

    def __init__(self, engine: "WatermarkHashEngine", payload: bytes, positions: dict[str, int]) -> None:
        self._engine = engine
        self._payload = payload
        self._positions = positions

    def position(self, column: str) -> int:
        """Position of this tuple's bit within ``wmd`` for *column*."""
        return self._positions[column]

    def base_index(self, column: str, level: int, size: int) -> int:
        """Keyed permutation index ``H(t.ident, k2) mod size`` at *level*."""
        return self._engine._index_hasher(column, level).hash_int(self._payload) % size


class WatermarkHashEngine:
    """The batched keyed-hash engine behind embed and detect.

    Owns one :class:`KeyedHashStream` per sub-key — ``k1`` for tuple selection
    and ``k2`` for positions and permutation indices — plus the per-column
    :class:`TupleHasher` instances that keep tuple framing off the hot path.
    One engine instance per watermarker is the intended granularity: its
    digest caches then make a detect pass following an embed pass (or several
    detect passes over attacked variants of one table) almost free.
    """

    def __init__(self, key: WatermarkKey, *, cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        self._key = key
        self._selection = KeyedHashStream(key.k1, cache_size=cache_size)
        self._permutation = KeyedHashStream(key.k2, cache_size=cache_size)
        self._position_hashers: dict[str, TupleHasher] = {}
        self._index_hashers: dict[tuple[str, int], TupleHasher] = {}

    @property
    def key(self) -> WatermarkKey:
        return self._key

    def clear_caches(self) -> None:
        """Drop the selection and permutation digest caches."""
        self._selection.clear_cache()
        self._permutation.clear_cache()

    # ---------------------------------------------------------------- hashers
    def _position_hasher(self, column: str) -> TupleHasher:
        hasher = self._position_hashers.get(column)
        if hasher is None:
            hasher = TupleHasher(self._permutation, (column, "position"))
            self._position_hashers[column] = hasher
        return hasher

    def _index_hasher(self, column: str, level: int) -> TupleHasher:
        hasher = self._index_hashers.get((column, level))
        if hasher is None:
            hasher = TupleHasher(self._permutation, (column, "index", level))
            self._index_hashers[(column, level)] = hasher
        return hasher

    # ------------------------------------------------------------ scalar API
    def is_selected(self, ident: object) -> bool:
        """Equation 5 for a single tuple."""
        return self._selection.hash_one(ident) % self._key.eta == 0

    def selected_indices(self, idents: Iterable[object]) -> list[int]:
        return self._selection.select_indices(idents, self._key.eta)

    def position(self, ident: object, column: str, wmd_length: int) -> int:
        return self._position_hasher(column).hash_int(serialise_value(ident)) % wmd_length

    def base_index(self, ident: object, column: str, level: int, size: int) -> int:
        return self._index_hasher(column, level).hash_int(serialise_value(ident)) % size

    # ------------------------------------------------------------- batch API
    def tuple_coordinates(
        self,
        idents: Iterable[object],
        columns: Sequence[str],
        wmd_length: int,
        level_sizes: Mapping[str, int] | None = None,
    ) -> list["TupleCoordinates | None"]:
        """Selection, positions and permutation handles in one table sweep.

        Returns one entry per ident: ``None`` when the tuple is not selected
        (the overwhelmingly common case — one in ``η``), or a
        :class:`TupleCoordinates` whose positions for every column of
        *columns* are already computed.  Each ident is serialised exactly
        once and its bytes reused for the selection hash, every position hash
        and any later permutation-index hash.

        *level_sizes* optionally maps a column to the number of hierarchy
        levels expected to be walked during embedding; the corresponding
        permutation hashes are then computed eagerly inside the sweep (they
        remain available, lazily, beyond that depth either way).
        """
        if wmd_length < 1:
            raise ValueError("wmd_length must be at least 1")
        eta = self._key.eta
        serialise = serialise_value
        position_hashers = [(column, self._position_hasher(column)) for column in columns]
        eager: list[tuple[str, TupleHasher]] = []
        if level_sizes:
            for column, depth in level_sizes.items():
                eager.extend((column, self._index_hasher(column, level)) for level in range(depth))

        # The selection stream's internals are deliberately inlined here: this
        # loop runs once per table row, and at 100k rows even one avoided
        # method call per row is measurable.  ``str`` idents (the encrypted
        # identifier tokens) additionally skip the generic serialiser.
        cache = self._selection._cache
        cache_size = self._selection._cache_size
        inner_copy = self._selection._inner.copy
        outer_copy = self._selection._outer.copy
        from_bytes = int.from_bytes

        out: list[TupleCoordinates | None] = []
        append = out.append
        for ident in idents:
            if type(ident) is str:
                payload = b"S" + ident.encode("utf-8")
            else:
                payload = serialise(ident)
            digest = cache.get(payload) if cache is not None else None
            if digest is None:
                inner = inner_copy()
                inner.update(payload)
                outer = outer_copy()
                outer.update(inner.digest())
                digest = from_bytes(outer.digest(), "big")
                if cache is not None:
                    if len(cache) >= cache_size:
                        cache.clear()
                    cache[payload] = digest
            if digest % eta != 0:
                append(None)
                continue
            positions = {
                column: hasher.hash_int(payload) % wmd_length for column, hasher in position_hashers
            }
            for _column, hasher in eager:
                hasher.hash_int(payload)  # warms the permutation digest cache
            append(TupleCoordinates(self, payload, positions))
        return out


class _ScalarCoordinates:
    """Per-call coordinates mirroring the seed's scalar arithmetic."""

    __slots__ = ("_engine", "_ident", "_wmd_length")

    def __init__(self, engine: "ScalarWatermarkEngine", ident: object, wmd_length: int) -> None:
        self._engine = engine
        self._ident = ident
        self._wmd_length = wmd_length

    def position(self, column: str) -> int:
        return self._engine.position(self._ident, column, self._wmd_length)

    def base_index(self, column: str, level: int, size: int) -> int:
        return self._engine.base_index(self._ident, column, level, size)


class ScalarWatermarkEngine:
    """Reference engine: one fresh HMAC per call, exactly like the seed.

    Kept as the ground truth for the equivalence suite and as the baseline
    the scaling benchmark measures the batched engine against.
    """

    def __init__(self, key: WatermarkKey) -> None:
        self._key = key

    @property
    def key(self) -> WatermarkKey:
        return self._key

    def is_selected(self, ident: object) -> bool:
        return keyed_hash(ident, self._key.k1) % self._key.eta == 0

    def selected_indices(self, idents: Iterable[object]) -> list[int]:
        return [index for index, ident in enumerate(idents) if self.is_selected(ident)]

    def position(self, ident: object, column: str, wmd_length: int) -> int:
        return keyed_hash((ident, column, "position"), self._key.k2) % wmd_length

    def base_index(self, ident: object, column: str, level: int, size: int) -> int:
        return keyed_hash((ident, column, "index", level), self._key.k2) % size

    def tuple_coordinates(
        self,
        idents: Iterable[object],
        columns: Sequence[str],
        wmd_length: int,
        level_sizes: Mapping[str, int] | None = None,
    ) -> list["_ScalarCoordinates | None"]:
        if wmd_length < 1:
            raise ValueError("wmd_length must be at least 1")
        return [
            _ScalarCoordinates(self, ident, wmd_length) if self.is_selected(ident) else None
            for ident in idents
        ]


def make_engine(key: WatermarkKey, *, batch: bool = True) -> "WatermarkHashEngine | ScalarWatermarkEngine":
    """The engine for *key*: batched by default, scalar for the seed path."""
    return WatermarkHashEngine(key) if batch else ScalarWatermarkEngine(key)
