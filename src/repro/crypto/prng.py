"""Deterministic, key-seeded pseudo-random number generator.

Data generation (:mod:`repro.datagen`) and the attack simulators
(:mod:`repro.attacks`) need reproducible randomness: the same seed must
produce the same synthetic table and the same attacked table on every run so
that experiments are repeatable bit-for-bit.  ``random.Random`` would satisfy
that, but its Mersenne-Twister state is not derivable from small structured
seeds such as ``("fig12a", eta, trial)``; this wrapper hashes an arbitrary
seed object into the stream and offers the handful of distributions the
library needs.

The generator is a simple counter-mode SHA-256 stream, which is plenty fast
for the table sizes used here and, unlike ``random.Random``, never changes
behaviour across Python versions.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Sequence, TypeVar

__all__ = ["DeterministicPRNG"]

T = TypeVar("T")


class DeterministicPRNG:
    """A small deterministic PRNG keyed by an arbitrary seed object."""

    def __init__(self, seed: object) -> None:
        self._seed_bytes = repr(seed).encode("utf-8")
        self._counter = 0
        self._buffer = b""
        self._gauss_spare: float | None = None

    # ------------------------------------------------------------------ bytes
    def _refill(self) -> None:
        block = hashlib.sha256(self._seed_bytes + b"|" + str(self._counter).encode()).digest()
        self._counter += 1
        self._buffer += block

    def random_bytes(self, n: int) -> bytes:
        """Return *n* pseudo-random bytes."""
        if n < 0:
            raise ValueError("n must be non-negative")
        while len(self._buffer) < n:
            self._refill()
        out, self._buffer = self._buffer[:n], self._buffer[n:]
        return out

    # --------------------------------------------------------------- numbers
    def random(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 bits of precision."""
        value = int.from_bytes(self.random_bytes(7), "big") >> 3
        return value / (1 << 53)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        if high < low:
            raise ValueError("high must be >= low")
        span = high - low + 1
        # Rejection sampling to avoid modulo bias.
        n_bytes = max(1, (span.bit_length() + 7) // 8)
        limit = (1 << (8 * n_bytes)) // span * span
        while True:
            value = int.from_bytes(self.random_bytes(n_bytes), "big")
            if value < limit:
                return low + (value % span)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high)``."""
        return low + (high - low) * self.random()

    def gauss(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """Normally distributed float (Box–Muller)."""
        if self._gauss_spare is not None:
            spare, self._gauss_spare = self._gauss_spare, None
            return mu + sigma * spare
        while True:
            u1 = self.random()
            if u1 > 0.0:
                break
        u2 = self.random()
        radius = math.sqrt(-2.0 * math.log(u1))
        self._gauss_spare = radius * math.sin(2.0 * math.pi * u2)
        return mu + sigma * radius * math.cos(2.0 * math.pi * u2)

    # ------------------------------------------------------------ collections
    def choice(self, items: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        if not items:
            raise IndexError("cannot choose from an empty sequence")
        return items[self.randint(0, len(items) - 1)]

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one element with probability proportional to its weight."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        if not items:
            raise IndexError("cannot choose from an empty sequence")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive number")
        target = self.random() * total
        cumulative = 0.0
        for item, weight in zip(items, weights):
            if weight < 0:
                raise ValueError("weights must be non-negative")
            cumulative += weight
            if target < cumulative:
                return item
        return items[-1]

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Return *k* distinct elements chosen without replacement."""
        if k < 0:
            raise ValueError("k must be non-negative")
        if k > len(items):
            raise ValueError("sample size larger than population")
        pool = list(items)
        out: list[T] = []
        for _ in range(k):
            index = self.randint(0, len(pool) - 1)
            out.append(pool.pop(index))
        return out

    def shuffle(self, items: list[T]) -> None:
        """Shuffle *items* in place (Fisher–Yates)."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def subset_indices(self, n: int, fraction: float) -> list[int]:
        """Return sorted indices of a random subset of ``range(n)``.

        The subset size is ``round(n * fraction)``; used by the attack
        simulators that operate on "a fraction of the tuples".
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        size = int(round(n * fraction))
        return sorted(self.sample(range(n), size))

    def spawn(self, label: object) -> "DeterministicPRNG":
        """Create an independent child generator identified by *label*."""
        return DeterministicPRNG((repr(self._seed_bytes), label))

    def zipf_index(self, n: int, exponent: float = 1.1) -> int:
        """Return an index in ``[0, n)`` following a Zipf-like distribution.

        Used by the data generator to produce realistically skewed categorical
        marginals (a few very common symptoms, a long tail of rare ones).
        """
        if n <= 0:
            raise ValueError("n must be positive")
        weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
        return self.weighted_choice(list(range(n)), weights)

    def iter_random(self) -> Iterable[float]:
        """Infinite iterator of uniform floats (convenience for tests)."""
        while True:
            yield self.random()
