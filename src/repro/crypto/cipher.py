"""A keyed, invertible pseudorandom permutation for identifying columns.

Section 4.2.3 of the paper replaces every value of an identifying column
(e.g. the SSN) by its encryption under a block cipher such as DES or AES.
The encrypted values keep the column unique and traceable by the data holder,
and they feed the tuple-selection hash of the watermarking algorithm.

Offline we have no third-party cryptography package, so the cipher is a
balanced Feistel network over 64-bit blocks whose round function is
HMAC-SHA-256.  A Feistel network with a pseudorandom round function is a
pseudorandom permutation (Luby–Rackoff), which is exactly the property the
framework needs: deterministic, invertible, and unpredictable without the key.

:class:`FieldEncryptor` wraps the block cipher with a simple string codec so
that arbitrary identifier strings (not just 8-byte blocks) can be encrypted to
printable hexadecimal tokens and decrypted back.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Iterable

__all__ = ["FeistelCipher", "FieldEncryptor"]

_BLOCK_BITS = 64
_HALF_BITS = _BLOCK_BITS // 2
_HALF_MASK = (1 << _HALF_BITS) - 1


class FeistelCipher:
    """Balanced Feistel network over 64-bit blocks.

    Parameters
    ----------
    key:
        Secret key (``bytes`` or ``str``).
    rounds:
        Number of Feistel rounds.  Ten rounds is far beyond the four needed
        for the Luby–Rackoff security argument.
    """

    def __init__(self, key: bytes | str, rounds: int = 10) -> None:
        if rounds < 4:
            raise ValueError("a Feistel network needs at least 4 rounds to be a strong PRP")
        if isinstance(key, str):
            key = key.encode("utf-8")
        if not key:
            raise ValueError("key must be non-empty")
        self._rounds = rounds
        self._round_keys = [
            hmac.new(key, b"feistel-round-%d" % i, hashlib.sha256).digest() for i in range(rounds)
        ]

    @property
    def rounds(self) -> int:
        """Number of Feistel rounds."""
        return self._rounds

    def _round_function(self, half: int, round_index: int) -> int:
        digest = hmac.new(
            self._round_keys[round_index],
            half.to_bytes(4, "big"),
            hashlib.sha256,
        ).digest()
        return int.from_bytes(digest[:4], "big")

    def encrypt_block(self, block: int) -> int:
        """Encrypt a 64-bit integer block."""
        if not 0 <= block < (1 << _BLOCK_BITS):
            raise ValueError("block must be a 64-bit unsigned integer")
        left = (block >> _HALF_BITS) & _HALF_MASK
        right = block & _HALF_MASK
        for i in range(self._rounds):
            left, right = right, left ^ self._round_function(right, i)
        return (left << _HALF_BITS) | right

    def decrypt_block(self, block: int) -> int:
        """Invert :meth:`encrypt_block`."""
        if not 0 <= block < (1 << _BLOCK_BITS):
            raise ValueError("block must be a 64-bit unsigned integer")
        left = (block >> _HALF_BITS) & _HALF_MASK
        right = block & _HALF_MASK
        for i in reversed(range(self._rounds)):
            left, right = right ^ self._round_function(left, i), left
        return (left << _HALF_BITS) | right


@dataclass(frozen=True)
class _Codec:
    """How identifier strings are packed into 64-bit blocks."""

    encoding: str = "utf-8"

    def to_blocks(self, text: str) -> list[int]:
        raw = text.encode(self.encoding)
        # Length-prefix so that trailing padding zeros are unambiguous.
        framed = len(raw).to_bytes(2, "big") + raw
        padded_len = -(-len(framed) // 8) * 8
        framed = framed.ljust(padded_len, b"\x00")
        return [int.from_bytes(framed[i : i + 8], "big") for i in range(0, len(framed), 8)]

    def from_blocks(self, blocks: list[int]) -> str:
        raw = b"".join(block.to_bytes(8, "big") for block in blocks)
        length = int.from_bytes(raw[:2], "big")
        return raw[2 : 2 + length].decode(self.encoding)


class FieldEncryptor:
    """Deterministic encryption of identifier fields to printable tokens.

    This is the ``E()`` used by the binning algorithm (Figure 8): each value of
    an identifying column is replaced, one-to-one, by its encryption.  The
    encryption is deterministic so that equal identifiers map to equal tokens
    (preserving keys and joins on the holder's side) and invertible so that the
    owner can decrypt the column when resolving an ownership dispute.

    Tokens are hexadecimal strings; CBC-style chaining with a key-derived
    initialisation block hides repeated 8-byte patterns inside long values.
    """

    def __init__(self, key: bytes | str, rounds: int = 10) -> None:
        self._cipher = FeistelCipher(key, rounds=rounds)
        if isinstance(key, str):
            key = key.encode("utf-8")
        iv_digest = hmac.new(key, b"field-encryptor-iv", hashlib.sha256).digest()
        self._iv = int.from_bytes(iv_digest[:8], "big")
        self._codec = _Codec()

    def encrypt(self, value: object) -> str:
        """Encrypt *value* (coerced to ``str``) to a hexadecimal token."""
        text = value if isinstance(value, str) else str(value)
        blocks = self._codec.to_blocks(text)
        previous = self._iv
        out: list[int] = []
        for block in blocks:
            cipher_block = self._cipher.encrypt_block(block ^ previous)
            out.append(cipher_block)
            previous = cipher_block
        return "".join(block.to_bytes(8, "big").hex() for block in out)

    def encrypt_many(self, values: Iterable[object]) -> list[str]:
        """Encrypt a whole column of values; one token per input value.

        Bit-identical to ``[self.encrypt(v) for v in values]`` — same codec,
        CBC chaining and Feistel arithmetic — but the HMAC key schedule of
        every round key is computed **once per call** (RFC 2104 inner/outer
        pads, cloned per block, the same technique as
        :class:`repro.crypto.batch.KeyedHashStream`) and repeated values are
        memoised.  This is the batched path the columnar binning rewrite
        uses; the scalar :meth:`encrypt` remains the reference the
        equivalence suite compares against.
        """
        from repro.crypto.batch import _hmac_pads  # deferred: keeps crypto deps acyclic

        rounds = [
            (inner.copy, outer.copy)
            for inner, outer in (_hmac_pads(key) for key in self._cipher._round_keys)
        ]
        iv = self._iv
        encoding = self._codec.encoding
        memo: dict[str, str] = {}
        tokens: list[str] = []
        append = tokens.append
        for value in values:
            text = value if isinstance(value, str) else str(value)
            token = memo.get(text)
            if token is None:
                raw = text.encode(encoding)
                framed = len(raw).to_bytes(2, "big") + raw
                padded_len = -(-len(framed) // 8) * 8
                framed = framed.ljust(padded_len, b"\x00")
                previous = iv
                parts: list[str] = []
                for offset in range(0, len(framed), 8):
                    block = int.from_bytes(framed[offset : offset + 8], "big") ^ previous
                    left = (block >> _HALF_BITS) & _HALF_MASK
                    right = block & _HALF_MASK
                    for inner_copy, outer_copy in rounds:
                        digest = inner_copy()
                        digest.update(right.to_bytes(4, "big"))
                        outer = outer_copy()
                        outer.update(digest.digest())
                        left, right = right, left ^ int.from_bytes(outer.digest()[:4], "big")
                    previous = (left << _HALF_BITS) | right
                    parts.append(previous.to_bytes(8, "big").hex())
                token = memo[text] = "".join(parts)
            append(token)
        return tokens

    def decrypt(self, token: str) -> str:
        """Invert :meth:`encrypt`."""
        if len(token) % 16 != 0 or not token:
            raise ValueError("token length must be a positive multiple of 16 hex digits")
        try:
            blocks = [int(token[i : i + 16], 16) for i in range(0, len(token), 16)]
        except ValueError as exc:
            raise ValueError("token is not valid hexadecimal") from exc
        previous = self._iv
        plain: list[int] = []
        for block in blocks:
            plain.append(self._cipher.decrypt_block(block) ^ previous)
            previous = block
        return self._codec.from_blocks(plain)
