"""Cryptographic substrate used by the protection framework.

The paper relies on three primitives:

* a keyed cryptographic hash ``H(data, key)`` (MD5/SHA1 in the paper) used to
  select tuples for mark embedding and to derive permutation indices,
* a one-way function ``F`` that turns a statistic of the clear-text
  identifying column into the watermark (Section 5.4),
* a block cipher ``E`` (DES/AES in the paper) used for the one-to-one
  encryption of identifying columns during binning (Section 4.2.3).

No third-party cryptography package is available offline, so the block cipher
is implemented as a balanced Feistel network whose round function is
HMAC-SHA-256 (:class:`~repro.crypto.cipher.FeistelCipher`).  The framework only
requires the cipher to be a deterministic, invertible, keyed pseudorandom
permutation, which the Feistel construction provides.
"""

from repro.crypto.batch import (
    KeyedHashStream,
    ScalarWatermarkEngine,
    TupleCoordinates,
    TupleHasher,
    WatermarkHashEngine,
    make_engine,
)
from repro.crypto.cipher import FeistelCipher, FieldEncryptor
from repro.crypto.hashing import (
    derive_subkey,
    keyed_hash,
    keyed_hash_bytes,
    mark_from_statistic,
    one_way_bits,
    serialise_value,
)
from repro.crypto.prng import DeterministicPRNG

__all__ = [
    "FeistelCipher",
    "FieldEncryptor",
    "DeterministicPRNG",
    "keyed_hash",
    "keyed_hash_bytes",
    "serialise_value",
    "derive_subkey",
    "one_way_bits",
    "mark_from_statistic",
    "KeyedHashStream",
    "TupleHasher",
    "TupleCoordinates",
    "WatermarkHashEngine",
    "ScalarWatermarkEngine",
    "make_engine",
]
