"""Marks, mark replication, majority voting and mark loss.

The mark ``wm`` is a short bit string (the paper's experiments use 20 bits).
Because the available bandwidth — roughly one embedding position per selected
tuple and watermarked column — usually exceeds ``|wm|``, the mark is
replicated ``l`` times into ``wmd`` (``Duplicate`` in Table 1) and the
detector recovers it with two rounds of majority voting: per ``wmd`` position
over all the votes cast for it, then per ``wm`` bit over its ``l`` replicated
copies.

The evaluation's *mark loss* (Figures 12a–c) is the fraction of mark bits the
detector gets wrong after an attack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from operator import xor
from typing import Iterable, Sequence

from repro.crypto.hashing import mark_from_statistic, one_way_bits
from repro.crypto.prng import DeterministicPRNG

__all__ = [
    "Mark",
    "random_mark",
    "replicate_mark",
    "majority_vote",
    "vote_margin",
    "mark_loss",
    "bits_to_string",
    "string_to_bits",
]

DEFAULT_MARK_LENGTH = 20


@dataclass(frozen=True)
class Mark:
    """An immutable mark bit string."""

    bits: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.bits:
            raise ValueError("a mark must contain at least one bit")
        if any(bit not in (0, 1) for bit in self.bits):
            raise ValueError("mark bits must be 0 or 1")

    def __len__(self) -> int:
        return len(self.bits)

    def __iter__(self):
        return iter(self.bits)

    def __getitem__(self, index: int) -> int:
        return self.bits[index]

    def __str__(self) -> str:
        return bits_to_string(self.bits)

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "Mark":
        return cls(tuple(int(bit) for bit in bits))

    @classmethod
    def from_string(cls, text: str) -> "Mark":
        return cls(tuple(string_to_bits(text)))

    @classmethod
    def from_statistic(cls, statistic: float, length: int = DEFAULT_MARK_LENGTH, *, precision: float = 1.0) -> "Mark":
        """Owner mark ``F(v)`` derived from a clear-text identifier statistic (Section 5.4)."""
        return cls(tuple(mark_from_statistic(statistic, length, precision=precision)))

    @classmethod
    def from_label(cls, label: object, length: int = DEFAULT_MARK_LENGTH) -> "Mark":
        """A deterministic mark derived from an arbitrary label (tests, attackers)."""
        return cls(tuple(one_way_bits(("mark-label", repr(label)), length)))

    # ----------------------------------------------------------------- helpers
    def hamming_distance(self, other: "Mark") -> int:
        if len(self) != len(other):
            raise ValueError("marks must have the same length")
        return sum(map(xor, self.bits, other.bits))

    def loss_against(self, other: "Mark") -> float:
        """Fraction of bits differing from *other* (the evaluation's mark loss)."""
        return self.hamming_distance(other) / len(self)


def random_mark(length: int = DEFAULT_MARK_LENGTH, seed: object = 0) -> Mark:
    """A reproducible pseudo-random mark (used by tests and benchmarks)."""
    rng = DeterministicPRNG(("random-mark", seed))
    return Mark.from_bits(rng.randint(0, 1) for _ in range(length))


def replicate_mark(mark: Mark | Sequence[int], copies: int) -> list[int]:
    """``Duplicate(wm)``: concatenate *copies* copies of the mark into ``wmd``."""
    if copies < 1:
        raise ValueError("copies must be at least 1")
    bits = list(mark.bits if isinstance(mark, Mark) else mark)
    return bits * copies


def majority_vote(votes: Sequence[int], *, weights: Sequence[float] | None = None, tie_value: int = 0) -> int:
    """``MajorVot``: weighted majority of 0/1 votes; ties resolve to *tie_value*.

    The hierarchical detector can weight votes by the level they were read
    from (Section 5.3 notes that copies from higher levels may be considered
    more reliable); unweighted voting is the default.
    """
    score = vote_margin(votes, weights=weights)
    if score > 0:
        return 1
    if score < 0:
        return 0
    return tie_value


def vote_margin(votes: Sequence[int], *, weights: Sequence[float] | None = None) -> float:
    """Signed (weighted) margin of 1-votes over 0-votes; 0.0 is an exact tie.

    The weighted margin must be a pure function of the two weight *multisets*
    — the thread- and process-parallel detectors merge shard votes in shard
    order, and a naive left-to-right float accumulation can turn an exact tie
    into a spurious majority when the ordering differs.  Summing each side in
    sorted order with :func:`math.fsum` (exactly rounded) makes the result
    permutation-invariant, and identical multisets on both sides always cancel
    to exactly 0.0.
    """
    # Validate once, up front, so the accumulation below stays free of
    # per-vote branching (this function sits inside the detector's per-cell
    # voting loops).
    if any(vote not in (0, 1) for vote in votes):
        raise ValueError("votes must be 0 or 1")
    if weights is None:
        ones = sum(votes)
        return float(2 * ones - len(votes))
    if len(weights) != len(votes):
        raise ValueError("votes and weights must have the same length")
    if any(weight < 0 for weight in weights):
        raise ValueError("weights must be non-negative")
    positive = math.fsum(sorted(weight for vote, weight in zip(votes, weights) if vote))
    negative = math.fsum(sorted(weight for vote, weight in zip(votes, weights) if not vote))
    return positive - negative


def mark_loss(original: Mark, detected: Mark) -> float:
    """Fraction of mark bits recovered incorrectly (the y-axis of Figure 12)."""
    return detected.loss_against(original)


def bits_to_string(bits: Iterable[int]) -> str:
    return "".join(str(int(bit)) for bit in bits)


def string_to_bits(text: str) -> list[int]:
    if any(char not in "01" for char in text):
        raise ValueError("mark strings may only contain 0 and 1")
    if not text:
        raise ValueError("mark string must be non-empty")
    return [int(char) for char in text]
