"""Keyed tuple selection (Equation 5 of the paper).

To keep the alteration small and its location secret, only tuples satisfying

    H(t.ident, k1) mod eta == 0

are used for embedding, where ``t.ident`` is the (encrypted) identifying
value of the tuple.  On average one tuple in ``η`` is selected; because the
hash is keyed, an attacker cannot tell which tuples carry mark bits.
"""

from __future__ import annotations

from typing import Iterable

from repro.crypto.hashing import keyed_hash
from repro.watermarking.keys import WatermarkKey

__all__ = ["is_selected", "selected_row_indices", "expected_selection_count"]


def is_selected(ident_value: object, key: WatermarkKey) -> bool:
    """Whether the tuple with (encrypted) identifier *ident_value* is selected."""
    return keyed_hash(ident_value, key.k1) % key.eta == 0


def selected_row_indices(ident_values: Iterable[object], key: WatermarkKey) -> list[int]:
    """Indices of the selected tuples among *ident_values* (in order)."""
    return [index for index, ident in enumerate(ident_values) if is_selected(ident, key)]


def expected_selection_count(n_rows: int, key: WatermarkKey) -> float:
    """Expected number of selected tuples (``n / η``), used to size the replication."""
    if n_rows < 0:
        raise ValueError("n_rows must be non-negative")
    return n_rows / key.eta
