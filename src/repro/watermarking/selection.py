"""Keyed tuple selection (Equation 5 of the paper).

To keep the alteration small and its location secret, only tuples satisfying

    H(t.ident, k1) mod eta == 0

are used for embedding, where ``t.ident`` is the (encrypted) identifying
value of the tuple.  On average one tuple in ``η`` is selected; because the
hash is keyed, an attacker cannot tell which tuples carry mark bits.

Both helpers are backed by the batched :class:`~repro.crypto.batch.KeyedHashStream`
(one per ``k1``, memoised): the HMAC key schedule is computed once per key
instead of once per call, and digests are cached so repeated sweeps over the
same identifiers cost a dictionary lookup.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable

from repro.crypto.batch import KeyedHashStream
from repro.watermarking.keys import WatermarkKey

__all__ = ["is_selected", "selected_row_indices", "expected_selection_count"]


# These module-level streams live for the process lifetime, so their digest
# caches are kept small (a few MB per key); the embed/detect hot paths use a
# per-watermarker WatermarkHashEngine with the full-size cache instead.
_MODULE_CACHE_SIZE = 1 << 16


@lru_cache(maxsize=64)
def _selection_stream(k1: bytes) -> KeyedHashStream:
    """The shared selection stream for *k1* (pads built once, digests cached)."""
    return KeyedHashStream(k1, cache_size=_MODULE_CACHE_SIZE)


def is_selected(ident_value: object, key: WatermarkKey) -> bool:
    """Whether the tuple with (encrypted) identifier *ident_value* is selected."""
    return _selection_stream(key.k1).hash_one(ident_value) % key.eta == 0


def selected_row_indices(ident_values: Iterable[object], key: WatermarkKey) -> list[int]:
    """Indices of the selected tuples among *ident_values* (in order)."""
    return _selection_stream(key.k1).select_indices(ident_values, key.eta)


def expected_selection_count(n_rows: int, key: WatermarkKey) -> float:
    """Expected number of selected tuples (``n / η``), used to size the replication."""
    if n_rows < 0:
        raise ValueError("n_rows must be non-negative")
    return n_rows / key.eta
