"""The secret watermarking key.

Table 1 of the paper lists three secret elements: ``k1`` (drives the tuple
selection of Equation 5), ``k2`` (drives the permutation index and the
position within the replicated mark) and ``η`` (the selection modulus — on
average one tuple in ``η`` is selected for embedding).

The paper stresses that k1 and k2 must be distinct so the selection and the
permutation computations are uncorrelated; :meth:`WatermarkKey.from_secret`
derives both from a single master secret with domain-separated sub-keys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import derive_subkey

__all__ = ["WatermarkKey"]


@dataclass(frozen=True)
class WatermarkKey:
    """The secret key material ``(k1, k2, η)`` of the watermarking algorithm."""

    k1: bytes
    k2: bytes
    eta: int

    def __post_init__(self) -> None:
        if not self.k1 or not self.k2:
            raise ValueError("k1 and k2 must be non-empty")
        if self.k1 == self.k2:
            raise ValueError("k1 and k2 must be distinct (uncorrelated computations)")
        if self.eta < 1:
            raise ValueError("eta must be at least 1")

    @classmethod
    def from_secret(cls, secret: bytes | str, eta: int) -> "WatermarkKey":
        """Derive ``k1`` and ``k2`` from a single master *secret*."""
        return cls(
            k1=derive_subkey(secret, "selection"),
            k2=derive_subkey(secret, "permutation"),
            eta=eta,
        )

    def with_eta(self, eta: int) -> "WatermarkKey":
        """The same key material with a different selection modulus."""
        return WatermarkKey(self.k1, self.k2, eta)
