"""The hierarchical watermarking scheme (Section 5.3, Figure 9).

Embedding
---------

For every selected tuple (Equation 5) and every watermarked column, the
embedder

1. resolves the tuple's current value to its ultimate generalization node,
2. climbs to the corresponding **maximal generalization node**, then
3. walks back *down* the tree, one level at a time: at each level the child
   whose index (within the sorted sibling set) has the mark bit as its least
   significant bit is chosen, until an ultimate generalization node is reached
   again.  That node's value is written back into the cell.

Because the same bit steers the choice at *every* level between the maximal
and the ultimate frontier, each embedding position carries several redundant
copies of its bit — one per level.  This per-level redundancy is exactly what
defeats the generalization attack: generalising the table one level up erases
the lowest level but leaves the copies at all higher levels intact, whereas the
single-level scheme of Section 5.2 loses everything.

Detection
---------

The detector selects the same tuples (it owns k1, k2 and η), resolves each
cell to a node of the tree — wherever an attacker may have moved it — and
walks *up* from that node to the maximal generalization frontier, reading the
parity of the node's index among its siblings at every level.  Per-position
votes are combined by (optionally level-weighted) majority voting, first
within a tuple, then across tuples that map to the same position of the
replicated mark, and finally across the replicated copies of each mark bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.binning.binner import BinnedTable
from repro.crypto.batch import ScalarWatermarkEngine, WatermarkHashEngine, make_engine
from repro.dht.node import DHTNode
from repro.dht.tree import DomainHierarchyTree
from repro.telemetry.trace import span as _stage_span
from repro.watermarking.ecc import MarkCode, resolve_code
from repro.watermarking.keys import WatermarkKey
from repro.watermarking.mark import Mark, majority_vote

__all__ = ["EmbeddingReport", "DetectionReport", "DetectionVotes", "HierarchicalWatermarker"]

DEFAULT_COPIES = 4


@dataclass(frozen=True)
class EmbeddingReport:
    """What :meth:`HierarchicalWatermarker.embed` did."""

    watermarked: BinnedTable
    mark: Mark
    copies: int
    columns: tuple[str, ...]
    tuples_selected: int
    cells_embedded: int
    cells_changed: int
    cells_skipped_no_bandwidth: int

    @property
    def wmd_length(self) -> int:
        return len(self.mark) * self.copies


@dataclass(frozen=True)
class DetectionReport:
    """What :meth:`HierarchicalWatermarker.detect` recovered.

    ``code`` is the wire form of the mark code that produced the decision;
    ``corrected_bits`` counts mark bits where that code overruled the plain
    hard-majority decision (always 0 for ``"repetition"``), and
    ``bit_confidence`` is the decoder's per-bit normalized margin in
    ``[0, 1]`` (0.0 for bits with no votes at all).
    """

    mark: Mark
    wmd_bits: tuple[int, ...]
    positions_with_votes: int
    tuples_selected: int
    cells_read: int
    votes_cast: int
    code: str = "repetition"
    corrected_bits: int = 0
    bit_confidence: tuple[float, ...] = ()

    @property
    def coverage(self) -> float:
        """Fraction of replicated-mark positions that received at least one vote."""
        if not self.wmd_bits:
            return 0.0
        return self.positions_with_votes / len(self.wmd_bits)


@dataclass
class DetectionVotes:
    """Partial detection state: per-position tuple votes before majority voting.

    This is the mergeable half of :meth:`HierarchicalWatermarker.detect`.  The
    serial detector collects one ``DetectionVotes`` over the whole table; the
    shard-parallel executor and the streaming ingest collect one per row shard
    (or CSV chunk) and :meth:`merge` them.  Because per-position vote lists
    are appended in row order and the position-level majority vote is a plain
    sum, merging shard votes in shard order reproduces the serial vote lists
    exactly — finalising a merged object is bit-identical to the serial path.
    """

    wmd_length: int
    votes: dict[int, list[int]] = field(default_factory=dict)
    tuples_selected: int = 0
    cells_read: int = 0
    votes_cast: int = 0

    def merge(self, other: "DetectionVotes") -> "DetectionVotes":
        """Fold *other*'s votes into this object (in place; returns self).

        *other* must cover rows that come after this object's rows in table
        order for the merged vote lists to equal the serial ones — the
        position-level vote is order-independent, so this only matters for
        exact list equality in the golden tests.
        """
        if other.wmd_length != self.wmd_length:
            raise ValueError("cannot merge votes collected for different wmd lengths")
        for position, tuple_votes in other.votes.items():
            self.votes.setdefault(position, []).extend(tuple_votes)
        self.tuples_selected += other.tuples_selected
        self.cells_read += other.cells_read
        self.votes_cast += other.votes_cast
        return self


_MISSING = object()


@dataclass
class _Frontiers:
    """Per-column node sets resolved once per embed/detect call.

    Also memoises the pure per-value and per-node lookups of the inner loops
    — value-to-node resolution, the maximal generalization node covering a
    node, sorted sibling/children sets, parity reads — because a table has
    only a handful of distinct generalized values per column while the loops
    visit one selected tuple in ``η`` over up to 100k rows.
    """

    tree: DomainHierarchyTree
    ultimate: list[DHTNode]
    maximal: list[DHTNode]
    ultimate_set: set[DHTNode] = field(init=False)
    maximal_set: set[DHTNode] = field(init=False)
    _ultimate_by_value: dict[object, object] = field(init=False, default_factory=dict)
    _node_by_value: dict[object, DHTNode | None] = field(init=False, default_factory=dict)
    _maximal_by_node: dict[DHTNode, DHTNode | None] = field(init=False, default_factory=dict)
    _children_by_node: dict[DHTNode, list[DHTNode]] = field(init=False, default_factory=dict)
    _siblings_by_node: dict[DHTNode, list[DHTNode]] = field(init=False, default_factory=dict)
    _levels_by_node: dict[DHTNode, tuple[list[int], list[float]]] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        self.ultimate_set = set(self.ultimate)
        self.maximal_set = set(self.maximal)

    def resolve_ultimate(self, value: object) -> DHTNode:
        """``Val2Nd`` against the ultimate frontier, memoised per value."""
        try:
            hit = self._ultimate_by_value.get(value, _MISSING)
        except TypeError:  # unhashable cell value: fall through uncached
            return self.tree.value_to_node(value, self.ultimate)
        if hit is _MISSING:
            try:
                hit = self.tree.value_to_node(value, self.ultimate)
            except ValueError as error:
                self._ultimate_by_value[value] = error
                raise
            self._ultimate_by_value[value] = hit
        if isinstance(hit, ValueError):
            raise hit
        return hit  # type: ignore[return-value]

    def resolve_cell(self, value: object) -> DHTNode | None:
        """Best-effort value resolution (``None`` for foreign values), memoised."""
        try:
            hit = self._node_by_value.get(value, _MISSING)
        except TypeError:
            return _resolve_value(self.tree, value)
        if hit is _MISSING:
            hit = _resolve_value(self.tree, value)
            self._node_by_value[value] = hit
        return hit

    def maximal_for(self, node: DHTNode) -> DHTNode | None:
        """``MaxGNd``: the maximal generalization node covering *node*."""
        hit = self._maximal_by_node.get(node, _MISSING)
        if hit is _MISSING:
            hit = next(
                (step for step in node.ancestors(include_self=True) if step in self.maximal_set),
                None,
            )
            self._maximal_by_node[node] = hit
        return hit  # type: ignore[return-value]

    def children(self, node: DHTNode) -> list[DHTNode]:
        """Sorted children of *node* (the tree re-sorts on every call)."""
        hit = self._children_by_node.get(node)
        if hit is None:
            hit = self.tree.children(node)
            self._children_by_node[node] = hit
        return hit

    def siblings(self, node: DHTNode) -> list[DHTNode]:
        """Sorted sibling set of *node* (including the node itself)."""
        hit = self._siblings_by_node.get(node)
        if hit is None:
            hit = self.tree.siblings(node)
            self._siblings_by_node[node] = hit
        return hit

    def read_levels(self, node: DHTNode) -> tuple[list[int], list[float]]:
        """Parity bits from *node* up to the maximal frontier, memoised per node.

        Values already at or above the maximal frontier yield nothing (the
        loop of Figure 9 never starts); lower levels are read bottom-up, with
        weights growing toward the top when level weighting is enabled.
        Callers must not mutate the returned lists.
        """
        hit = self._levels_by_node.get(node)
        if hit is not None:
            return hit
        bits: list[int] = []
        current: DHTNode | None = node
        while current is not None and current not in self.maximal_set and current.parent is not None:
            siblings = self.siblings(current)
            bits.append(siblings.index(current) & 1)
            current = current.parent
        if current is None or current not in self.maximal_set:
            # The walk ran past the root without meeting the maximal frontier:
            # the value lies outside the watermarked region (e.g. replaced by
            # an attacker with something above the frontier).
            result: tuple[list[int], list[float]] = ([], [])
        else:
            result = (bits, [float(level + 1) for level in range(len(bits))])
        self._levels_by_node[node] = result
        return result


def _resolve_value(tree: DomainHierarchyTree, value: object) -> DHTNode | None:
    """Map a (possibly attacked) cell value to a tree node, or ``None``."""
    try:
        return tree.value_to_node(value)
    except (ValueError, TypeError):
        return None


class HierarchicalWatermarker:
    """Embeds and detects marks with the hierarchical scheme of Figure 9."""

    def __init__(
        self,
        key: WatermarkKey,
        *,
        columns: Sequence[str] | None = None,
        copies: int = DEFAULT_COPIES,
        level_weighting: bool = False,
        batch: bool = True,
        engine: "WatermarkHashEngine | ScalarWatermarkEngine | None" = None,
        code: "MarkCode | str | None" = None,
    ) -> None:
        """
        Parameters
        ----------
        key:
            The secret watermarking key ``(k1, k2, η)``.
        columns:
            Quasi-identifying columns to embed into.  ``None`` means every
            binned column that offers bandwidth (a gap between its ultimate
            and maximal generalization nodes).
        copies:
            Replication factor ``l``: the mark is duplicated ``l`` times into
            ``wmd`` before embedding (Section 5.3).  The detector must use the
            same value.
        level_weighting:
            When true, votes read from higher tree levels get proportionally
            larger weights in the per-tuple majority vote, implementing the
            "copies from a higher level are more reliable" policy of
            Section 5.3.
        batch:
            When true (the default) all keyed-hash arithmetic goes through the
            batched :class:`~repro.crypto.batch.WatermarkHashEngine` — HMAC
            pads built once, idents serialised once per tuple, digests cached
            across embed/detect — and :meth:`embed` writes into a
            copy-on-write table.  ``False`` reproduces the seed's scalar
            per-call path (the baseline of the scaling benchmark); both paths
            are bit-identical.
        engine:
            Explicit hash engine, overriding the one *batch* would build.
            Must be keyed with the same ``(k1, k2, η)``.
        code:
            Mark code (a :class:`~repro.watermarking.ecc.MarkCode`, its wire
            string, or ``None`` for the default ``"repetition"``) used to
            encode the mark into ``wmd`` and decode the collected votes.
            ``"repetition"`` reproduces the seed detector bit-identically.
        """
        if copies < 1:
            raise ValueError("copies must be at least 1")
        self._key = key
        self._columns = tuple(columns) if columns is not None else None
        self._copies = copies
        self._level_weighting = level_weighting
        self._batch = batch
        self._engine = engine if engine is not None else make_engine(key, batch=batch)
        self._code = resolve_code(code)

    @property
    def key(self) -> WatermarkKey:
        return self._key

    @property
    def copies(self) -> int:
        return self._copies

    @property
    def columns(self) -> tuple[str, ...] | None:
        """The configured embedding columns (``None`` = every binned column)."""
        return self._columns

    @property
    def level_weighting(self) -> bool:
        return self._level_weighting

    @property
    def batched(self) -> bool:
        """Whether the batched hash engine drives this watermarker."""
        return self._batch

    @property
    def engine(self) -> "WatermarkHashEngine | ScalarWatermarkEngine":
        """The keyed-hash engine driving selection, positions and permutations."""
        return self._engine

    @property
    def code(self) -> MarkCode:
        """The mark code encoding/decoding the replicated-mark channel."""
        return self._code

    @property
    def code_name(self) -> str:
        """Canonical wire string of the configured mark code."""
        return self._code.wire()

    def with_code(self, code: "MarkCode | str | None") -> "HierarchicalWatermarker":
        """A clone decoding with *code*, sharing the (expensive) hash engine.

        Safe at detect time for codes sharing the repetition encoder
        (``repetition`` <-> ``soft``); codes that change the encoding
        (``interleaved``) must match what the data was protected with.
        """
        return type(self)(
            self._key,
            columns=self._columns,
            copies=self._copies,
            level_weighting=self._level_weighting,
            batch=self._batch,
            engine=self._engine,
            code=code,
        )

    # ---------------------------------------------------------------- helpers
    def _resolve_columns(self, binned: BinnedTable) -> tuple[str, ...]:
        if self._columns is not None:
            for column in self._columns:
                if column not in binned.quasi_columns:
                    raise KeyError(f"column {column!r} is not a binned quasi-identifying column")
            return self._columns
        return tuple(binned.quasi_columns)

    def _frontiers(self, binned: BinnedTable, columns: Sequence[str]) -> dict[str, _Frontiers]:
        return {
            column: _Frontiers(
                tree=binned.tree(column),
                ultimate=binned.ultimate_node_objects(column),
                maximal=binned.maximal_node_objects(column),
            )
            for column in columns
        }

    def _encode_mark(self, mark: Mark) -> list[int]:
        """Encode *mark* into the ``wmd`` channel, enforcing the bandwidth contract."""
        wmd = self._code.encode(list(mark.bits), self._copies)
        expected = len(mark) * self._copies
        if len(wmd) != expected:
            raise ValueError(
                f"mark code {self._code.wire()!r} encoded {len(wmd)} channel bits, "
                f"expected {expected} (= {len(mark)} bits x {self._copies} copies)"
            )
        return wmd

    def _position(self, ident: object, column: str, wmd_length: int) -> int:
        """Position of this cell's bit within the replicated mark ``wmd``."""
        return self._engine.position(ident, column, wmd_length)

    def _base_index(self, ident: object, column: str, level: int, size: int) -> int:
        """The keyed base index ``H(t.ident, k2) mod |S|`` of the permutation."""
        return self._engine.base_index(ident, column, level, size)

    def _copy_for_embedding(self, binned: BinnedTable) -> BinnedTable:
        """Copy-on-write on the batched path, deep copy on the seed path."""
        return binned.lazy_copy() if self._batch else binned.copy()

    @staticmethod
    def _encode_parity(base_index: int, bit: int, size: int) -> int:
        """``SetµBit``: force the index parity to *bit*, staying inside the set.

        With an odd sibling-set size the parity-adjusted index can fall one
        past the end; stepping back by two preserves the parity.  A singleton
        set cannot encode anything — index 0 is returned and the level simply
        carries no information (the per-level and per-copy redundancy absorbs
        it).
        """
        if size == 1:
            return 0
        desired = (base_index & ~1) | bit
        if desired >= size:
            desired -= 2
        if desired < 0:  # pragma: no cover - unreachable for size >= 2
            desired = base_index
        return desired

    # -------------------------------------------------------------- embedding
    def embed(self, binned: BinnedTable, mark: Mark) -> EmbeddingReport:
        """Embed *mark* into a copy of *binned* (the original is left untouched)."""
        with _stage_span("protect.embed", rows=len(binned.table)):
            return self._embed(binned, mark)

    def _embed(self, binned: BinnedTable, mark: Mark) -> EmbeddingReport:
        columns = self._resolve_columns(binned)
        frontiers = self._frontiers(binned, columns)
        watermarked = self._copy_for_embedding(binned)
        wmd = self._encode_mark(mark)

        tuples_selected = 0
        cells_embedded = 0
        cells_changed = 0
        cells_skipped = 0

        table = watermarked.table
        idents = watermarked.ident_values()
        for index, coords in enumerate(self._engine.tuple_coordinates(idents, columns, len(wmd))):
            if coords is None:
                continue
            tuples_selected += 1
            row = table[index]
            for column in columns:
                front = frontiers[column]
                try:
                    current = front.resolve_ultimate(row[column])
                except ValueError:
                    # The cell does not carry an ultimate-generalization value
                    # (should not happen right after binning); leave it alone.
                    cells_skipped += 1
                    continue
                maximal = front.maximal_for(current)
                if maximal is None or maximal is current:
                    # No gap between the ultimate and maximal frontier for
                    # this branch: no bandwidth, nothing to embed.
                    cells_skipped += 1
                    continue
                bit = wmd[coords.position(column)]
                target = maximal
                level = 0
                while target not in front.ultimate_set:
                    siblings = front.children(target)
                    if not siblings:
                        # Reached a leaf that is not an ultimate node; should
                        # not happen for valid frontiers, but never loop.
                        break
                    base = coords.base_index(column, level, len(siblings))
                    target = siblings[self._encode_parity(base, bit, len(siblings))]
                    level += 1
                if target in front.ultimate_set:
                    cells_embedded += 1
                    if row[column] != target.value:
                        cells_changed += 1
                        row = table.mutable_row(index)
                        row[column] = target.value
                else:  # pragma: no cover - defensive, see break above
                    cells_skipped += 1

        return EmbeddingReport(
            watermarked=watermarked,
            mark=mark,
            copies=self._copies,
            columns=columns,
            tuples_selected=tuples_selected,
            cells_embedded=cells_embedded,
            cells_changed=cells_changed,
            cells_skipped_no_bandwidth=cells_skipped,
        )

    # -------------------------------------------------------------- detection
    def detect(self, binned: BinnedTable, mark_length: int) -> DetectionReport:
        """Recover a mark of *mark_length* bits from a (possibly attacked) table."""
        return self.finalize_votes(self.collect_votes(binned, mark_length), mark_length)

    def collect_votes(self, binned: BinnedTable, mark_length: int) -> DetectionVotes:
        """The vote-collection half of :meth:`detect`, over *binned*'s rows only.

        Returns the per-position tuple votes without running the final
        majority votes, so callers holding several row shards (or streamed
        chunks) of one table can :meth:`DetectionVotes.merge` them and
        :meth:`finalize_votes` once — bit-identically to a serial
        :meth:`detect` over the whole table.
        """
        with _stage_span("detect.collect", rows=len(binned.table)):
            return self._collect_votes(binned, mark_length)

    def _collect_votes(self, binned: BinnedTable, mark_length: int) -> DetectionVotes:
        if mark_length < 1:
            raise ValueError("mark_length must be at least 1")
        columns = self._resolve_columns(binned)
        frontiers = self._frontiers(binned, columns)
        wmd_length = mark_length * self._copies
        collected = DetectionVotes(wmd_length=wmd_length)
        votes = collected.votes

        tuples_selected = 0
        cells_read = 0
        votes_cast = 0

        table = binned.table
        idents = binned.ident_values()
        # On the columnar substrate read the cells straight from the column
        # buffers; the row store keeps its row-dict path.  The values read are
        # identical either way, so the votes stay bit-identical.
        buffers = table.column_sequences(columns)
        for index, coords in enumerate(self._engine.tuple_coordinates(idents, columns, wmd_length)):
            if coords is None:
                continue
            tuples_selected += 1
            row = table[index] if buffers is None else None
            for column in columns:
                front = frontiers[column]
                cell = buffers[column][index] if buffers is not None else row[column]
                node = front.resolve_cell(cell)
                if node is None:
                    continue
                bits, weights = front.read_levels(node)
                if not bits:
                    continue
                cells_read += 1
                position = coords.position(column)
                # Ties among levels are broken in favour of the highest level
                # read (the copy "from a higher level is more reliable",
                # Section 5.3); bits are collected bottom-up, so that is the
                # last entry.
                tuple_vote = majority_vote(
                    bits,
                    weights=weights if self._level_weighting else None,
                    tie_value=bits[-1],
                )
                votes.setdefault(position, []).append(tuple_vote)
                votes_cast += len(bits)

        collected.tuples_selected = tuples_selected
        collected.cells_read = cells_read
        collected.votes_cast = votes_cast
        return collected

    def finalize_votes(self, collected: DetectionVotes, mark_length: int) -> DetectionReport:
        """The majority-voting half of :meth:`detect`: votes -> report."""
        with _stage_span("detect.finalize", positions=len(collected.votes)):
            return self._finalize_votes(collected, mark_length)

    def _finalize_votes(self, collected: DetectionVotes, mark_length: int) -> DetectionReport:
        wmd_length = mark_length * self._copies
        if collected.wmd_length != wmd_length:
            raise ValueError(
                f"votes were collected for wmd length {collected.wmd_length}, "
                f"expected {wmd_length} (= {mark_length} bits x {self._copies} copies)"
            )
        votes = collected.votes
        decoded = self._code.decode(votes, mark_length, self._copies)

        return DetectionReport(
            mark=Mark.from_bits(decoded.mark_bits),
            wmd_bits=decoded.wmd_bits,
            positions_with_votes=len(votes),
            tuples_selected=collected.tuples_selected,
            cells_read=collected.cells_read,
            votes_cast=collected.votes_cast,
            code=self._code.wire(),
            corrected_bits=decoded.corrected_bits,
            bit_confidence=decoded.bit_confidence,
        )

    @staticmethod
    def _resolve_cell(tree: DomainHierarchyTree, value: object) -> DHTNode | None:
        """Map a (possibly attacked) cell value to a tree node, or ``None``."""
        return _resolve_value(tree, value)

    def _read_levels(self, front: _Frontiers, node: DHTNode) -> tuple[list[int], list[float]]:
        """Read the index parity at every level from *node* up to the maximal frontier."""
        return front.read_levels(node)
