"""Watermarking of binned relational data (Section 5).

After binning, the quasi-identifying columns are categorical and the only way
to modify them is to *permute* values among sibling nodes of the domain
hierarchy tree.  Because the usage metrics leave a gap between the ultimate
generalization nodes (what binning produced) and the maximal generalization
nodes (what the data usage tolerates), such permutations stay within the
allowed information loss — this gap is the watermark bandwidth (Section 5.1).

The package contains:

* :mod:`repro.watermarking.keys` — the secret watermarking key (k1, k2, η),
* :mod:`repro.watermarking.mark` — mark bit-strings, replication, majority
  voting and the mark-loss metric used in the evaluation,
* :mod:`repro.watermarking.ecc` — pluggable mark codes over the replication
  channel (repetition, soft-combining, interleaved block parity),
* :mod:`repro.watermarking.selection` — the keyed tuple selection of Eq. (5),
* :mod:`repro.watermarking.hierarchical` — the hierarchical scheme of
  Figure 9 (the paper's contribution),
* :mod:`repro.watermarking.single_level` — the single-level scheme of
  Section 5.2, vulnerable to the generalization attack (baseline),
* :mod:`repro.watermarking.baseline_lsb` — an Agrawal–Kiernan style LSB
  scheme for numeric columns (related-work baseline),
* :mod:`repro.watermarking.ownership` — the rightful-ownership protocol of
  Section 5.4.
"""

from repro.watermarking.keys import WatermarkKey
from repro.watermarking.mark import (
    Mark,
    bits_to_string,
    majority_vote,
    mark_loss,
    random_mark,
    replicate_mark,
    string_to_bits,
    vote_margin,
)
from repro.watermarking.ecc import (
    CODE_NAMES,
    DecodeResult,
    InterleavedBlockCode,
    MarkCode,
    RepetitionCode,
    SoftRepetitionCode,
    code_from_wire,
    code_to_wire,
    resolve_code,
)
from repro.watermarking.selection import is_selected, selected_row_indices
from repro.watermarking.hierarchical import DetectionReport, EmbeddingReport, HierarchicalWatermarker
from repro.watermarking.single_level import SingleLevelWatermarker
from repro.watermarking.baseline_lsb import LSBWatermarker
from repro.watermarking.ownership import DisputeVerdict, OwnershipClaim, OwnershipRegistry

__all__ = [
    "WatermarkKey",
    "Mark",
    "random_mark",
    "replicate_mark",
    "majority_vote",
    "vote_margin",
    "mark_loss",
    "bits_to_string",
    "string_to_bits",
    "MarkCode",
    "DecodeResult",
    "RepetitionCode",
    "SoftRepetitionCode",
    "InterleavedBlockCode",
    "CODE_NAMES",
    "resolve_code",
    "code_to_wire",
    "code_from_wire",
    "is_selected",
    "selected_row_indices",
    "HierarchicalWatermarker",
    "EmbeddingReport",
    "DetectionReport",
    "SingleLevelWatermarker",
    "LSBWatermarker",
    "OwnershipRegistry",
    "OwnershipClaim",
    "DisputeVerdict",
]
