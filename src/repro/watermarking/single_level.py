"""Single-level watermarking (Section 5.2) — the vulnerable baseline.

The direct way to exploit the permutation bandwidth is to embed each bit only
at the level of the ultimate generalization node and its siblings: the target
sibling's index parity encodes the bit (descending further only when the
chosen sibling happens not to be an ultimate node, to keep the generalization
valid).  Detection reads the parity of the cell's node among its siblings —
one level, one vote.

The paper introduces this scheme to show why it is **not** enough: the
*generalization attack* — generalising every value one level up, which the
usage-metrics gap still allows — wipes out the single encoding level without
needing the watermarking key.  The hierarchical scheme of
:mod:`repro.watermarking.hierarchical` exists precisely to defeat that attack,
and the ablation benchmark compares the two head-to-head.
"""

from __future__ import annotations

from repro.binning.binner import BinnedTable
from repro.dht.node import DHTNode
from repro.watermarking.hierarchical import (
    DetectionReport,
    DetectionVotes,
    EmbeddingReport,
    HierarchicalWatermarker,
    _Frontiers,
)
from repro.watermarking.mark import Mark

__all__ = ["SingleLevelWatermarker"]


class SingleLevelWatermarker(HierarchicalWatermarker):
    """Sion-style categorical embedding at a single tree level.

    Shares tuple selection, replication, majority voting and the batched hash
    engine with the hierarchical scheme; only the embedding primitive and the
    per-cell read differ.
    """

    # -------------------------------------------------------------- embedding
    def embed(self, binned: BinnedTable, mark: Mark) -> EmbeddingReport:
        columns = self._resolve_columns(binned)
        frontiers = self._frontiers(binned, columns)
        watermarked = self._copy_for_embedding(binned)
        wmd = self._encode_mark(mark)

        tuples_selected = 0
        cells_embedded = 0
        cells_changed = 0
        cells_skipped = 0

        table = watermarked.table
        idents = watermarked.ident_values()
        for index, coords in enumerate(self._engine.tuple_coordinates(idents, columns, len(wmd))):
            if coords is None:
                continue
            tuples_selected += 1
            row = table[index]
            for column in columns:
                front = frontiers[column]
                try:
                    current = front.resolve_ultimate(row[column])
                except ValueError:
                    cells_skipped += 1
                    continue
                siblings = front.siblings(current)
                if len(siblings) < 2:
                    cells_skipped += 1
                    continue
                bit = wmd[coords.position(column)]
                base = coords.base_index(column, 0, len(siblings))
                target = siblings[self._encode_parity(base, bit, len(siblings))]
                # Keep the generalization valid: if the chosen sibling is not
                # an ultimate node, descend (keyed, without parity coding)
                # until one is reached.
                level = 1
                while target not in front.ultimate_set and not target.is_leaf:
                    children = front.children(target)
                    target = children[coords.base_index(column, level, len(children))]
                    level += 1
                if target not in front.ultimate_set:
                    cells_skipped += 1
                    continue
                cells_embedded += 1
                if row[column] != target.value:
                    cells_changed += 1
                    row = table.mutable_row(index)
                    row[column] = target.value

        return EmbeddingReport(
            watermarked=watermarked,
            mark=mark,
            copies=self._copies,
            columns=columns,
            tuples_selected=tuples_selected,
            cells_embedded=cells_embedded,
            cells_changed=cells_changed,
            cells_skipped_no_bandwidth=cells_skipped,
        )

    # -------------------------------------------------------------- detection
    def detect(self, binned: BinnedTable, mark_length: int) -> DetectionReport:
        if mark_length < 1:
            raise ValueError("mark_length must be at least 1")
        columns = self._resolve_columns(binned)
        frontiers = self._frontiers(binned, columns)
        wmd_length = mark_length * self._copies
        collected = DetectionVotes(wmd_length=wmd_length)
        votes = collected.votes

        table = binned.table
        idents = binned.ident_values()
        for index, coords in enumerate(self._engine.tuple_coordinates(idents, columns, wmd_length)):
            if coords is None:
                continue
            collected.tuples_selected += 1
            row = table[index]
            for column in columns:
                front = frontiers[column]
                node = front.resolve_cell(row[column])
                if node is None:
                    continue
                vote = self._read_single_level(front, node)
                if vote is None:
                    continue
                collected.cells_read += 1
                collected.votes_cast += 1
                votes.setdefault(coords.position(column), []).append(vote)

        return self.finalize_votes(collected, mark_length)

    @staticmethod
    def _read_single_level(front: _Frontiers, node: DHTNode) -> int | None:
        """Read the single-level parity of *node* among its siblings."""
        if node.parent is None:
            return None
        siblings = front.siblings(node)
        if len(siblings) < 2:
            return None
        return siblings.index(node) & 1
