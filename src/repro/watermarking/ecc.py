"""Mark coding: pluggable error-correcting codes over the replication channel.

The paper's detector (``MajorVot``, Section 5.3) treats the replicated mark as
a repetition code and decodes it with two rounds of hard majority voting.
That discards the *confidence* carried by each position's vote list — a
position recovered 9-to-1 counts exactly as much as one recovered 5-to-4 —
so recovered-bit accuracy degrades roughly linearly under the fig12 attacks.

This module makes the coding layer pluggable behind a fixed bandwidth
contract: every :class:`MarkCode` encodes ``mark_length`` bits into exactly
``mark_length * copies`` channel bits (the seed's ``wmd``), so tuple
selection, position hashing, :class:`~repro.watermarking.hierarchical.DetectionVotes`
and the wire format are untouched regardless of the code in use.

Three codes ship:

``repetition``
    The default.  Bit-identical to the seed detector: ``Duplicate`` on the
    encode side, the two-stage hard majority vote on the decode side.

``soft``
    Repetition with soft combining: each position contributes a clipped
    log-likelihood-style margin (ones minus zeros) instead of a hard bit, and
    each mark bit is the sign of the summed margins of its copies.  Iterating
    on soft decisions instead of hard thresholds is the standard move from
    the iterative-decoding literature ("New Criteria for Iterative Decoding",
    PAPERS.md); here one pass of soft combining is enough because the
    repetition copies are independent.

``interleaved``
    A product-style block code: the mark is laid out on an ``r x c`` grid,
    extended with row and column parities, and the resulting codeword is
    interleaved cyclically across the channel.  Decoding seeds per-symbol
    soft decisions from the vote margins and then runs bounded iterative
    bit-flipping over the parity checks, always flipping the symbol in the
    most unsatisfied checks (ties to the least confident symbol).  Because
    the encoder differs from replication this is a *registration-time*
    choice: detect must use the code the data was protected with.

Codes serialize to a canonical string (``"name"`` or ``"name:key=value,..."``
with sorted keys) so they can ride inside the frozen, picklable
``WatermarkerSpec`` and the JSON wire/vault documents losslessly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.watermarking.mark import majority_vote

__all__ = [
    "DecodeResult",
    "MarkCode",
    "RepetitionCode",
    "SoftRepetitionCode",
    "InterleavedBlockCode",
    "CODE_NAMES",
    "DEFAULT_CODE_NAME",
    "resolve_code",
    "code_to_wire",
    "code_from_wire",
]

DEFAULT_CODE_NAME = "repetition"
#: Soft-combining margin clip.  Votes at one position are correlated (an
#: altered cell corrupts all its level reads at once), so a position's margin
#: grows sub-linearly in information: clip low and compress, rather than let
#: one deep vote list dominate a mark bit.
DEFAULT_LLR_CAP = 2.0
#: Linear-clip default for the interleaved block decoder's symbol LLRs.
DEFAULT_BLOCK_LLR_CAP = 4.0


@dataclass(frozen=True)
class DecodeResult:
    """What a :meth:`MarkCode.decode` call recovered.

    ``corrected_bits`` counts mark bits where the decoder overruled the
    channel's initial hard decision (0 by construction for the pure
    repetition code).  ``bit_confidence`` is the per-bit normalized margin
    ``|evidence for the decision| / |total evidence|`` in ``[0, 1]`` — 0.0
    for bits that received no votes at all.
    """

    mark_bits: tuple[int, ...]
    wmd_bits: tuple[int, ...]
    corrected_bits: int
    bit_confidence: tuple[float, ...]


def _position_hard_bits(votes: Mapping[int, Sequence[int]], wmd_length: int) -> list[int]:
    """Stage-one hard decisions: per-position majority, 0 for silent positions."""
    return [majority_vote(votes[position]) if position in votes else 0 for position in range(wmd_length)]


def _position_margin(tuple_votes: Sequence[int]) -> int:
    """Signed vote margin of one position: ones minus zeros."""
    ones = sum(tuple_votes)
    return 2 * ones - len(tuple_votes)


def _clip(value: float, cap: float) -> float:
    return max(-cap, min(cap, value))


def _repetition_decode(votes: Mapping[int, Sequence[int]], mark_length: int, copies: int) -> tuple[list[int], list[int], list[float]]:
    """The seed's exact two-stage majority decode, plus per-bit confidences.

    Returns ``(mark_bits, wmd_bits, confidences)``.  The decision logic is a
    verbatim transcription of the seed ``_finalize_votes``: silent positions
    decode to 0 but are *excluded* from the per-bit copy vote, empty copy
    votes decode to 0, and all ties resolve to 0.
    """
    wmd_length = mark_length * copies
    wmd_bits = _position_hard_bits(votes, wmd_length)
    mark_bits: list[int] = []
    confidences: list[float] = []
    for bit_index in range(mark_length):
        copy_votes = [
            wmd_bits[position]
            for position in range(bit_index, wmd_length, mark_length)
            if position in votes
        ]
        mark_bits.append(majority_vote(copy_votes) if copy_votes else 0)
        if copy_votes:
            confidences.append(abs(_position_margin(copy_votes)) / len(copy_votes))
        else:
            confidences.append(0.0)
    return mark_bits, wmd_bits, confidences


class MarkCode:
    """Interface: encode a mark into the ``wmd`` channel and decode votes back.

    Every code MUST encode ``len(bits)`` mark bits into exactly
    ``len(bits) * copies`` channel bits — the bandwidth contract the embedder,
    the position hash and the vote containers are built around.
    """

    name: str = "abstract"

    def params(self) -> dict[str, object]:
        """The code's tunable parameters (defaults omitted from the wire form)."""
        return {}

    def encode(self, bits: Sequence[int], copies: int) -> list[int]:
        raise NotImplementedError

    def decode(self, votes: Mapping[int, Sequence[int]], mark_length: int, copies: int) -> DecodeResult:
        raise NotImplementedError

    def correction_radius(self, mark_length: int, copies: int) -> int:
        """Channel-bit corruptions guaranteed recoverable (one clean vote per position)."""
        raise NotImplementedError

    def wire(self) -> str:
        """Canonical string form (``"name"`` or ``"name:key=value,..."``)."""
        return code_to_wire(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.wire()!r})"


class RepetitionCode(MarkCode):
    """The seed scheme: ``Duplicate`` + two-stage hard majority voting."""

    name = "repetition"

    def encode(self, bits: Sequence[int], copies: int) -> list[int]:
        if copies < 1:
            raise ValueError("copies must be at least 1")
        return list(bits) * copies

    def decode(self, votes: Mapping[int, Sequence[int]], mark_length: int, copies: int) -> DecodeResult:
        mark_bits, wmd_bits, confidences = _repetition_decode(votes, mark_length, copies)
        return DecodeResult(
            mark_bits=tuple(mark_bits),
            wmd_bits=tuple(wmd_bits),
            corrected_bits=0,
            bit_confidence=tuple(confidences),
        )

    def correction_radius(self, mark_length: int, copies: int) -> int:
        # A 1-bit dies at ceil(l/2) flipped copies (the tie resolves to 0), a
        # 0-bit at floor(l/2)+1; one less than the smaller of the two is
        # (l-1)//2 for either parity.
        return (copies - 1) // 2


class SoftRepetitionCode(MarkCode):
    """Repetition with LLR-style soft combining across copies.

    Each position's vote list collapses to a *compressed* margin instead of a
    hard bit: ``sign(margin) * sqrt(min(|margin|, llr_cap))``.  A position
    recovered 9-to-1 outweighs one recovered 5-to-4 — the information the
    hard two-stage vote throws away — but only sub-linearly: votes at one
    position are correlated (one altered cell corrupts all its level reads),
    so the clip plus square-root compression keeps a single deep vote list
    from dominating a mark bit.  Tied positions contribute nothing (they
    abstain, where the hard vote's tie casts a biased 0), an exactly tied bit
    decodes to 0 matching the repetition bias, and ``corrected_bits`` counts
    the bits where soft combining overruled the hard two-stage decision.
    """

    name = "soft"

    def __init__(self, llr_cap: float = DEFAULT_LLR_CAP) -> None:
        if llr_cap <= 0:
            raise ValueError("llr_cap must be positive")
        self._llr_cap = float(llr_cap)

    def params(self) -> dict[str, object]:
        return {"llr_cap": self._llr_cap}

    def encode(self, bits: Sequence[int], copies: int) -> list[int]:
        if copies < 1:
            raise ValueError("copies must be at least 1")
        return list(bits) * copies

    def decode(self, votes: Mapping[int, Sequence[int]], mark_length: int, copies: int) -> DecodeResult:
        hard_bits, wmd_bits, _ = _repetition_decode(votes, mark_length, copies)
        wmd_length = mark_length * copies
        mark_bits: list[int] = []
        confidences: list[float] = []
        for bit_index in range(mark_length):
            margins = []
            for position in range(bit_index, wmd_length, mark_length):
                if position not in votes:
                    continue
                margin = _position_margin(votes[position])
                if margin == 0:
                    continue
                magnitude = math.sqrt(min(abs(margin), self._llr_cap))
                margins.append(magnitude if margin > 0 else -magnitude)
            total = math.fsum(abs(margin) for margin in margins)
            score = math.fsum(margins)
            # score == 0 (including "no votes") decodes to 0, the repetition bias.
            mark_bits.append(1 if score > 0 else 0)
            confidences.append(abs(score) / total if total > 0 else 0.0)
        corrected = sum(1 for hard, soft in zip(hard_bits, mark_bits) if hard != soft)
        return DecodeResult(
            mark_bits=tuple(mark_bits),
            wmd_bits=tuple(wmd_bits),
            corrected_bits=corrected,
            bit_confidence=tuple(confidences),
        )

    def correction_radius(self, mark_length: int, copies: int) -> int:
        # With one clean vote per position every margin is +/-1, so the soft
        # sum degenerates to the hard copy vote: same radius as repetition.
        return (copies - 1) // 2


class InterleavedBlockCode(MarkCode):
    """Product-style grid parity code, interleaved cyclically over the channel.

    ``k`` data bits sit row-major on an ``r x c`` grid (``r = isqrt(k)``,
    ``c = ceil(k / r)``, absent cells read as 0); one parity per row and per
    column extends the codeword to ``n_cw = k + r + c`` symbols.  Channel
    position ``p`` carries codeword symbol ``p mod n_cw``, spreading every
    symbol's copies across the table.  Decoding seeds each symbol with the
    summed clipped margins of its positions, then iteratively flips the
    symbol appearing in the most unsatisfied parity checks (ties broken
    toward the least-confident symbol, then the lowest index) until all
    checks pass or the iteration bound is hit.
    """

    name = "interleaved"

    def __init__(self, llr_cap: float = DEFAULT_BLOCK_LLR_CAP, max_iterations: int = 32) -> None:
        if llr_cap <= 0:
            raise ValueError("llr_cap must be positive")
        if max_iterations < 0:
            raise ValueError("max_iterations must be non-negative")
        self._llr_cap = float(llr_cap)
        self._max_iterations = int(max_iterations)

    def params(self) -> dict[str, object]:
        return {"llr_cap": self._llr_cap, "max_iterations": self._max_iterations}

    @staticmethod
    def geometry(mark_length: int) -> tuple[int, int, int]:
        """``(rows, cols, codeword_length)`` of the parity grid for ``mark_length`` bits."""
        if mark_length < 1:
            raise ValueError("mark_length must be at least 1")
        rows = max(1, math.isqrt(mark_length))
        cols = -(-mark_length // rows)
        return rows, cols, mark_length + rows + cols

    def encode(self, bits: Sequence[int], copies: int) -> list[int]:
        if copies < 1:
            raise ValueError("copies must be at least 1")
        data = [int(bit) for bit in bits]
        codeword = data + self._parities(data)
        length = len(data) * copies
        return [codeword[position % len(codeword)] for position in range(length)]

    def _parities(self, data: Sequence[int]) -> list[int]:
        rows, cols, _ = self.geometry(len(data))
        row_parity = [0] * rows
        col_parity = [0] * cols
        for index, bit in enumerate(data):
            row_parity[index // cols] ^= bit
            col_parity[index % cols] ^= bit
        return row_parity + col_parity

    def _checks(self, mark_length: int) -> list[list[int]]:
        """Parity-check symbol sets: each row/column plus its parity symbol."""
        rows, cols, _ = self.geometry(mark_length)
        checks: list[list[int]] = []
        for row in range(rows):
            members = [index for index in range(mark_length) if index // cols == row]
            checks.append(members + [mark_length + row])
        for col in range(cols):
            members = [index for index in range(mark_length) if index % cols == col]
            checks.append(members + [mark_length + rows + col])
        return checks

    def decode(self, votes: Mapping[int, Sequence[int]], mark_length: int, copies: int) -> DecodeResult:
        rows, cols, n_cw = self.geometry(mark_length)
        wmd_length = mark_length * copies
        wmd_bits = _position_hard_bits(votes, wmd_length)

        # Soft initialization: fold every position's clipped margin into its
        # codeword symbol.  Positions are walked in sorted order so the float
        # accumulation is independent of vote-dict insertion order (serial vs
        # merged shards).
        llr = [0.0] * n_cw
        total = [0.0] * n_cw
        for position in sorted(votes):
            if position >= wmd_length:
                continue
            margin = _clip(float(_position_margin(votes[position])), self._llr_cap)
            symbol = position % n_cw
            llr[symbol] += margin
            total[symbol] += abs(margin)
        hard = [1 if value > 0 else 0 for value in llr]
        initial = hard[:mark_length]

        # A channel shorter than one codeword never transmits some symbols,
        # so the parity checks carry no information there — decode from the
        # margins alone and skip the flipping loop entirely.
        iterations = self._max_iterations if wmd_length >= n_cw else 0
        checks = self._checks(mark_length)
        for _ in range(iterations):
            unsatisfied = [members for members in checks if sum(hard[symbol] for symbol in members) & 1]
            if not unsatisfied:
                break
            counts = [0] * n_cw
            for members in unsatisfied:
                for symbol in members:
                    counts[symbol] += 1
            flip = min(
                (symbol for symbol in range(n_cw) if counts[symbol] > 0),
                key=lambda symbol: (-counts[symbol], abs(llr[symbol]), symbol),
            )
            hard[flip] ^= 1
            llr[flip] = -llr[flip]

        mark_bits = hard[:mark_length]
        corrected = sum(1 for before, after in zip(initial, mark_bits) if before != after)
        confidences = [
            abs(llr[symbol]) / total[symbol] if total[symbol] > 0 else 0.0
            for symbol in range(mark_length)
        ]
        return DecodeResult(
            mark_bits=tuple(mark_bits),
            wmd_bits=tuple(wmd_bits),
            corrected_bits=corrected,
            bit_confidence=tuple(confidences),
        )

    def correction_radius(self, mark_length: int, copies: int) -> int:
        # Conservative: with m full interleaved copies of the codeword on the
        # channel, any symbol survives up to (m-1)//2 corrupted positions by
        # margin alone, before the parity checks contribute anything.
        _, _, n_cw = self.geometry(mark_length)
        full_copies = (mark_length * copies) // n_cw
        if full_copies < 1:
            return 0
        return (full_copies - 1) // 2


_CODES: dict[str, type[MarkCode]] = {
    RepetitionCode.name: RepetitionCode,
    SoftRepetitionCode.name: SoftRepetitionCode,
    InterleavedBlockCode.name: InterleavedBlockCode,
}

CODE_NAMES: tuple[str, ...] = tuple(sorted(_CODES))


def _format_param(value: object) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def code_to_wire(code: MarkCode) -> str:
    """Canonical string form: ``"name"``, params only when they differ from defaults."""
    defaults = _CODES[code.name]().params()
    overrides = {
        key: value for key, value in sorted(code.params().items()) if value != defaults.get(key)
    }
    if not overrides:
        return code.name
    rendered = ",".join(f"{key}={_format_param(value)}" for key, value in overrides.items())
    return f"{code.name}:{rendered}"


def code_from_wire(text: str) -> MarkCode:
    """Parse the canonical string form back into a :class:`MarkCode`."""
    name, _, rendered = text.partition(":")
    name = name.strip()
    cls = _CODES.get(name)
    if cls is None:
        raise ValueError(f"unknown mark code {name!r} (expected one of: {', '.join(CODE_NAMES)})")
    params: dict[str, object] = {}
    if rendered:
        defaults = cls().params()
        for part in rendered.split(","):
            key, separator, value = part.partition("=")
            key = key.strip()
            if not separator or key not in defaults:
                raise ValueError(f"invalid parameter {part!r} for mark code {name!r}")
            default = defaults[key]
            try:
                params[key] = int(value) if isinstance(default, int) else float(value)
            except ValueError as error:
                raise ValueError(f"invalid parameter {part!r} for mark code {name!r}") from error
    return cls(**params)


def resolve_code(code: "MarkCode | str | None") -> MarkCode:
    """Coerce ``None`` / wire string / instance to a :class:`MarkCode`."""
    if code is None:
        return RepetitionCode()
    if isinstance(code, MarkCode):
        return code
    if isinstance(code, str):
        return code_from_wire(code)
    raise TypeError(f"cannot resolve a mark code from {type(code).__name__}")
