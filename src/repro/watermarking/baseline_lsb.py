"""Agrawal–Kiernan style LSB watermarking of numeric columns (related work).

The seminal relational watermarking scheme of Agrawal and Kiernan (VLDB 2002)
marks *numeric* attributes: for a keyed-selected subset of tuples it forces
one of the ``ξ`` least significant bits of one numeric attribute to a keyed
pseudo-random value.  Detection recomputes the expected bits and counts
matches; ownership is claimed when the match rate is significantly above the
0.5 expected by chance.

The paper cites this scheme to argue that trivial LSB embedding "is inherently
vulnerable, as a simple flipping of LSBs would completely destroy the inserted
mark".  The implementation here exists for exactly that ablation: the
benchmark flips least-significant bits (an attack that preserves data usage
almost perfectly) and shows the LSB detector collapsing to chance while the
hierarchical scheme keeps its mark.

The scheme operates on the *raw* table (before binning) because after binning
numeric columns become intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.crypto.batch import KeyedHashStream, TupleHasher, serialise_value
from repro.crypto.hashing import keyed_hash
from repro.relational.table import Table
from repro.watermarking.keys import WatermarkKey

__all__ = ["LSBDetectionReport", "LSBWatermarker"]


@dataclass(frozen=True)
class LSBDetectionReport:
    """Match statistics of LSB detection."""

    total_checked: int
    matches: int
    threshold: float

    @property
    def match_rate(self) -> float:
        if self.total_checked == 0:
            return 0.0
        return self.matches / self.total_checked

    @property
    def mark_present(self) -> bool:
        """Whether the match rate clears the decision threshold."""
        return self.total_checked > 0 and self.match_rate >= self.threshold


class LSBWatermarker:
    """Simplified Agrawal–Kiernan embedding over integer-valued columns."""

    def __init__(
        self,
        key: WatermarkKey,
        *,
        columns: Sequence[str],
        ident_column: str,
        xi: int = 2,
        threshold: float = 0.8,
        batch: bool = True,
    ) -> None:
        """
        Parameters
        ----------
        key:
            Watermarking key; ``eta`` plays the role of the selection modulus
            ``γ`` of the original scheme.
        columns:
            Numeric columns eligible for marking.
        ident_column:
            The (primary-key) column whose value drives the keyed selection.
        xi:
            Number of least significant bits available for marking.
        threshold:
            Match rate above which detection declares the mark present.
        batch:
            Batched keyed hashing (pads built once, idents serialised once
            per tuple, digests cached) plus copy-on-write embedding.
            ``False`` keeps the seed's scalar per-call path; both are
            bit-identical.
        """
        if not columns:
            raise ValueError("at least one markable column is required")
        if xi < 1:
            raise ValueError("xi must be at least 1")
        if not 0.5 < threshold <= 1.0:
            raise ValueError("threshold must lie in (0.5, 1.0]")
        self._key = key
        self._columns = tuple(columns)
        self._ident_column = ident_column
        self._xi = xi
        self._threshold = threshold
        self._batch = batch
        if batch:
            stream = KeyedHashStream(key.k1)
            self._select_hasher = TupleHasher(stream, ("select",))
            self._column_hasher = TupleHasher(stream, ("column",))
            self._bit_index_hasher = TupleHasher(stream, ("bit-index",))
            self._bit_value_hasher = TupleHasher(stream, ("bit-value",))

    # ---------------------------------------------------------------- helpers
    def _cell_plan(self, ident: object) -> tuple[str, int, int] | None:
        """For a selected tuple: (column, bit index, bit value); ``None`` if unselected."""
        if self._batch:
            payload = serialise_value(ident)
            if self._select_hasher.hash_int(payload) % self._key.eta != 0:
                return None
            column = self._columns[self._column_hasher.hash_int(payload) % len(self._columns)]
            bit_index = self._bit_index_hasher.hash_int(payload) % self._xi
            bit_value = self._bit_value_hasher.hash_int(payload) & 1
            return column, bit_index, bit_value
        if keyed_hash((ident, "select"), self._key.k1) % self._key.eta != 0:
            return None
        column = self._columns[keyed_hash((ident, "column"), self._key.k1) % len(self._columns)]
        bit_index = keyed_hash((ident, "bit-index"), self._key.k1) % self._xi
        bit_value = keyed_hash((ident, "bit-value"), self._key.k1) & 1
        return column, bit_index, bit_value

    # -------------------------------------------------------------------- API
    def embed(self, table: Table) -> Table:
        """Return a marked copy of *table* (integer columns only are touched)."""
        marked = table.lazy_copy() if self._batch else table.copy()
        for index in range(len(marked)):
            row = marked[index]
            plan = self._cell_plan(row[self._ident_column])
            if plan is None:
                continue
            column, bit_index, bit_value = plan
            value = row[column]
            if not isinstance(value, int) or isinstance(value, bool):
                continue
            if bit_value:
                new_value = value | (1 << bit_index)
            else:
                new_value = value & ~(1 << bit_index)
            if new_value != value:
                marked.mutable_row(index)[column] = new_value
        return marked

    def detect(self, table: Table) -> LSBDetectionReport:
        """Count how many marked bits still hold their expected value."""
        total = 0
        matches = 0
        for row in table:
            plan = self._cell_plan(row[self._ident_column])
            if plan is None:
                continue
            column, bit_index, bit_value = plan
            value = row[column]
            if not isinstance(value, int) or isinstance(value, bool):
                continue
            total += 1
            if (value >> bit_index) & 1 == bit_value:
                matches += 1
        return LSBDetectionReport(total_checked=total, matches=matches, threshold=self._threshold)
