"""Rightful-ownership protocol (Section 5.4).

Surviving mark-removal attacks is necessary but not sufficient to establish
ownership: an attacker can *add* their own mark to the watermarked table
(Attack 1) or *subtract* a bogus mark to fabricate a bogus "original"
(Attack 2).  The multimedia literature solves this only when the mark is a
one-way function of the original data and the original is available in court.

The binned table offers an elegant shortcut: its identifying columns are
encrypted, so only the true owner can produce their clear-text.  The owner's
mark is therefore fixed to ``F(v)`` where ``v`` is a statistic (the mean) of
the clear-text identifiers and ``F`` a one-way function.  In a dispute the
claimed owner must

1. present the registered statistic ``v``,
2. decrypt the identifying column of the disputed table and recompute the
   statistic ``v'``; the claim is valid only if ``|v - v'| < τ`` (the table
   may have lost or gained tuples under attack, hence a tolerance rather than
   equality),
3. show that the mark extracted from the disputed table matches ``F(v)``.

An attacker fails step 2 (they cannot decrypt) and cannot fabricate data whose
statistic maps through ``F`` onto a mark already present (one-wayness), so
both classic attacks are defeated without hauling the entire original table
into court.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.binning.binner import BinnedTable
from repro.crypto.cipher import FieldEncryptor
from repro.watermarking.hierarchical import HierarchicalWatermarker
from repro.watermarking.keys import WatermarkKey
from repro.watermarking.mark import Mark

__all__ = ["OwnershipClaim", "DisputeVerdict", "identifier_statistic", "OwnershipRegistry"]


def identifier_statistic(clear_identifiers: Sequence[object]) -> float:
    """The statistic ``v``: the mean of the clear-text identifiers as numbers.

    Identifiers that are not purely numeric strings contribute nothing; if no
    identifier is numeric the statistic is undefined and a ``ValueError`` is
    raised — which is exactly what happens when a false claimant "decrypts"
    the column with the wrong key and obtains garbage.
    """
    values: list[float] = []
    for identifier in clear_identifiers:
        text = str(identifier)
        if text.isdigit():
            values.append(float(int(text)))
    if not values:
        raise ValueError("no numeric identifiers: cannot compute the ownership statistic")
    return sum(values) / len(values)


@dataclass(frozen=True)
class OwnershipClaim:
    """What a claimant brings to the dispute."""

    claimant: str
    registered_statistic: float
    mark: Mark
    watermark_key: WatermarkKey
    encryption_key: bytes | str
    copies: int = 4
    columns: tuple[str, ...] | None = None
    code: str | None = None


@dataclass(frozen=True)
class ClaimAssessment:
    """Outcome of evaluating a single claim."""

    claimant: str
    decryption_ok: bool
    statistic_ok: bool
    mark_matches: bool
    recomputed_statistic: float | None
    mark_bit_errors: int | None

    @property
    def valid(self) -> bool:
        return self.decryption_ok and self.statistic_ok and self.mark_matches


@dataclass(frozen=True)
class DisputeVerdict:
    """Outcome of a dispute over one table."""

    assessments: tuple[ClaimAssessment, ...]

    @property
    def valid_claimants(self) -> list[str]:
        return [assessment.claimant for assessment in self.assessments if assessment.valid]

    @property
    def winner(self) -> str | None:
        """The single valid claimant, or ``None`` if zero or several claims hold."""
        valid = self.valid_claimants
        return valid[0] if len(valid) == 1 else None


class OwnershipRegistry:
    """Registers owner marks and resolves disputes (Section 5.4)."""

    def __init__(
        self,
        *,
        mark_length: int = 20,
        tau: float = 1e7,
        max_bit_errors: int = 2,
        statistic_precision: float = 1e6,
    ) -> None:
        """
        Parameters
        ----------
        mark_length:
            Length of owner marks in bits.
        tau:
            Tolerance ``τ`` on the statistic comparison ``|v - v'| < τ``.
            Deleted or added tuples shift the mean slightly; the default
            tolerates heavy attacks on nine-digit identifiers while still
            rejecting unrelated data.
        max_bit_errors:
            Maximum Hamming distance between the extracted mark and ``F(v)``
            for the mark check to pass.
        statistic_precision:
            Quantisation applied to the statistic before hashing (so the
            owner-side recomputation lands on the same mark, see
            :meth:`repro.watermarking.mark.Mark.from_statistic`).
        """
        if mark_length < 1:
            raise ValueError("mark_length must be at least 1")
        if tau <= 0:
            raise ValueError("tau must be positive")
        if max_bit_errors < 0:
            raise ValueError("max_bit_errors must be non-negative")
        self._mark_length = mark_length
        self._tau = tau
        self._max_bit_errors = max_bit_errors
        self._precision = statistic_precision

    @property
    def mark_length(self) -> int:
        return self._mark_length

    # ------------------------------------------------------------ registration
    def derive_mark(self, clear_identifiers: Sequence[object]) -> tuple[float, Mark]:
        """Owner-side: compute the statistic ``v`` and the mark ``F(v)``."""
        statistic = identifier_statistic(clear_identifiers)
        return statistic, self.mark_for_statistic(statistic)

    def mark_for_statistic(self, statistic: float) -> Mark:
        """``F(v)`` for an already-computed statistic (vault re-hydration path)."""
        return Mark.from_statistic(statistic, self._mark_length, precision=self._precision)

    # ---------------------------------------------------------------- disputes
    def assess_claim(self, disputed: BinnedTable, claim: OwnershipClaim) -> ClaimAssessment:
        """Evaluate one claim against the disputed table."""
        encryptor = FieldEncryptor(claim.encryption_key)
        ident_columns = disputed.identifying_columns
        clear: list[str] = []
        decryption_ok = True
        for row in disputed.table:
            for column in ident_columns:
                try:
                    clear.append(encryptor.decrypt(str(row[column])))
                except (ValueError, UnicodeDecodeError):
                    decryption_ok = False
        recomputed: float | None = None
        statistic_ok = False
        if decryption_ok:
            try:
                recomputed = identifier_statistic(clear)
                statistic_ok = abs(recomputed - claim.registered_statistic) < self._tau
            except ValueError:
                decryption_ok = False

        expected = Mark.from_statistic(
            claim.registered_statistic, self._mark_length, precision=self._precision
        )
        watermarker = HierarchicalWatermarker(
            claim.watermark_key, columns=claim.columns, copies=claim.copies, code=claim.code
        )
        detected = watermarker.detect(disputed, self._mark_length)
        bit_errors = detected.mark.hamming_distance(expected)
        mark_matches = bit_errors <= self._max_bit_errors and claim.mark.bits == expected.bits

        return ClaimAssessment(
            claimant=claim.claimant,
            decryption_ok=decryption_ok,
            statistic_ok=statistic_ok,
            mark_matches=mark_matches,
            recomputed_statistic=recomputed,
            mark_bit_errors=bit_errors,
        )

    def resolve_dispute(self, disputed: BinnedTable, claims: Sequence[OwnershipClaim]) -> DisputeVerdict:
        """Assess every claim and return the verdict."""
        if not claims:
            raise ValueError("at least one claim is required")
        return DisputeVerdict(tuple(self.assess_claim(disputed, claim) for claim in claims))
