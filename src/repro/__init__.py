"""repro — reproduction of "Privacy and Ownership Preserving of Outsourced Medical Data".

Bertino, Ooi, Yang, Deng — ICDE 2005 (DOI 10.1109/ICDE.2005.111).

The library implements the paper's unified protection framework for
outsourced medical relations: k-anonymity **binning** along domain hierarchy
trees constrained by off-line usage metrics, followed by **hierarchical
watermarking** of the binned data, with a rightful-ownership protocol built on
the encrypted identifying columns.  All substrates the paper relies on — a
relational table engine, domain hierarchy trees, medical ontologies, a
synthetic clinical data generator and the cryptographic primitives — are
implemented here as well, so the package has no runtime dependencies.

Quickstart::

    from repro import (
        KAnonymitySpec, ProtectionFramework, UsageMetrics,
        generate_medical_table, standard_ontology,
    )

    table = generate_medical_table(size=5_000, seed=42)
    trees = dict(standard_ontology().items())
    framework = ProtectionFramework(
        trees,
        UsageMetrics.uniform_depth(trees, depth=1),
        KAnonymitySpec(k=20),
        encryption_key="hospital-secret",
        watermark_secret="hospital-watermark",
        eta=75,
    )
    protected = framework.protect(table)          # bin + watermark
    report = framework.detect(protected.watermarked)
    assert report.mark.bits == protected.mark.bits

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
reproduction of every table and figure of the paper's evaluation.
"""

from repro.binning import (
    BinnedTable,
    BinningAgent,
    BinningError,
    BinningResult,
    DataflyBinner,
    Generalization,
    KAnonymitySpec,
    MultiColumnGeneralization,
    NotBinnableError,
)
from repro.binning.kanonymity import EnforcementMode
from repro.datagen import MedicalDataGenerator, generate_medical_table
from repro.dht import DomainHierarchyTree, Interval, binary_numeric_tree, from_nested_mapping
from repro.experiments import ExperimentConfig, build_workload
from repro.framework import (
    ProtectedData,
    ProtectionFramework,
    seamlessness_report,
    watermarking_information_loss,
)
from repro.metrics import InformationLossBounds, UsageMetrics
from repro.ontology import standard_ontology
from repro.relational import Column, ColumnKind, ColumnType, Table, TableSchema
from repro.relational.schema import medical_schema
from repro.watermarking import (
    HierarchicalWatermarker,
    LSBWatermarker,
    Mark,
    OwnershipClaim,
    OwnershipRegistry,
    SingleLevelWatermarker,
    WatermarkKey,
    mark_loss,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # relational substrate
    "Table",
    "TableSchema",
    "Column",
    "ColumnKind",
    "ColumnType",
    "medical_schema",
    # domain hierarchy trees and ontologies
    "DomainHierarchyTree",
    "Interval",
    "from_nested_mapping",
    "binary_numeric_tree",
    "standard_ontology",
    # data generation
    "MedicalDataGenerator",
    "generate_medical_table",
    # metrics
    "UsageMetrics",
    "InformationLossBounds",
    # binning
    "KAnonymitySpec",
    "EnforcementMode",
    "BinningAgent",
    "BinningResult",
    "BinnedTable",
    "Generalization",
    "MultiColumnGeneralization",
    "DataflyBinner",
    "BinningError",
    "NotBinnableError",
    # watermarking
    "WatermarkKey",
    "Mark",
    "mark_loss",
    "HierarchicalWatermarker",
    "SingleLevelWatermarker",
    "LSBWatermarker",
    "OwnershipRegistry",
    "OwnershipClaim",
    # framework
    "ProtectionFramework",
    "ProtectedData",
    "seamlessness_report",
    "watermarking_information_loss",
    # experiments
    "ExperimentConfig",
    "build_workload",
]
