"""The domain hierarchy tree structure.

A :class:`DomainHierarchyTree` wraps a tree of :class:`~repro.dht.node.DHTNode`
objects for a single attribute and provides the operations used throughout the
paper's pseudo-code (Table 1):

==============================  =======================================================
Paper notation                  Method here
==============================  =======================================================
``Parent(nd, tr)``              :meth:`DomainHierarchyTree.parent`
``Children(nd, tr)``            :meth:`DomainHierarchyTree.children`
``Siblings(nd, tr)``            :meth:`DomainHierarchyTree.siblings` (includes ``nd``)
``Leaves(tr)``                  :meth:`DomainHierarchyTree.leaves`
``SubTree(nd, tr)``             :meth:`DomainHierarchyTree.subtree_leaves` / the node itself
``Val2Nd(v, nds[])``            :meth:`DomainHierarchyTree.value_to_node`
``Nd2Val(nd)``                  ``node.value``
==============================  =======================================================

The tree also knows how to map *raw* column values (e.g. the integer age 37)
to their leaf node, and how to validate generalization cuts.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.dht.node import DHTNode, Interval

__all__ = ["DomainHierarchyTree"]


class DomainHierarchyTree:
    """Domain hierarchy tree for one attribute."""

    def __init__(self, attribute: str, root: DHTNode) -> None:
        if not attribute:
            raise ValueError("attribute name must be non-empty")
        self._attribute = attribute
        self._root = root
        self._nodes: list[DHTNode] = list(root.iter_subtree())
        self._by_name: dict[str, DHTNode] = {}
        for node in self._nodes:
            if node.name in self._by_name:
                raise ValueError(f"duplicate node name {node.name!r} in DHT for {attribute!r}")
            self._by_name[node.name] = node
        self._leaves: list[DHTNode] = [node for node in self._nodes if node.is_leaf]
        if not self._leaves:
            raise ValueError("a DHT must have at least one leaf")
        self._is_numeric = isinstance(self._root.value, Interval)
        self._validate_structure()
        # Value -> node lookup.  Leaf values must be unique; internal values
        # should be too (they are the generalized cell contents), but we keep
        # the first occurrence if a label repeats at different levels.
        self._value_to_node: dict[object, DHTNode] = {}
        for node in self._nodes:
            self._value_to_node.setdefault(self._value_key(node.value), node)
        self._leaf_by_value: dict[object, DHTNode] = {
            self._value_key(leaf.value): leaf for leaf in self._leaves
        }
        if len(self._leaf_by_value) != len(self._leaves):
            raise ValueError(f"leaf values of DHT for {attribute!r} are not unique")

    # ------------------------------------------------------------- validation
    def _validate_structure(self) -> None:
        for node in self._nodes:
            for child in node.children:
                if child.parent is not node:
                    raise ValueError(f"broken parent pointer at node {child.name!r}")
        if self._is_numeric:
            for node in self._nodes:
                if not isinstance(node.value, Interval):
                    raise ValueError("numeric DHT nodes must all carry Interval values")
                if node.children:
                    covered = sorted((child.value for child in node.children), key=lambda iv: iv.lower)
                    if covered[0].lower != node.value.lower or covered[-1].upper != node.value.upper:
                        raise ValueError(
                            f"children of {node.name!r} do not cover its interval {node.value}"
                        )
                    for first, second in zip(covered, covered[1:]):
                        if first.upper != second.lower:
                            raise ValueError(
                                f"children of {node.name!r} leave a gap between {first} and {second}"
                            )

    @staticmethod
    def _value_key(value: object) -> object:
        """Hashable lookup key for a node value."""
        return value

    # ------------------------------------------------------------- properties
    @property
    def attribute(self) -> str:
        """Name of the attribute this tree describes."""
        return self._attribute

    @property
    def root(self) -> DHTNode:
        return self._root

    @property
    def is_numeric(self) -> bool:
        """Whether the tree is a numeric (interval) DHT."""
        return self._is_numeric

    @property
    def nodes(self) -> list[DHTNode]:
        """All nodes in depth-first pre-order."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: object) -> bool:
        return isinstance(node, DHTNode) and self._by_name.get(node.name) is node

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DomainHierarchyTree({self._attribute!r}, nodes={len(self._nodes)}, "
            f"leaves={len(self._leaves)}, height={self.height})"
        )

    @property
    def height(self) -> int:
        """Length of the longest root-to-leaf path (root alone has height 0)."""
        return max(leaf.depth() for leaf in self._leaves)

    # -------------------------------------------------------------- traversal
    def node(self, name: str) -> DHTNode:
        """Look a node up by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no node named {name!r} in DHT for {self._attribute!r}") from None

    def leaves(self, under: DHTNode | None = None) -> list[DHTNode]:
        """``Leaves(tr)`` — all leaves, or the leaves under a given node."""
        if under is None:
            return list(self._leaves)
        self._require_member(under)
        return under.leaves()

    def parent(self, node: DHTNode) -> DHTNode | None:
        """``Parent(nd, tr)``."""
        self._require_member(node)
        return node.parent

    def children(self, node: DHTNode) -> list[DHTNode]:
        """``Children(nd, tr)`` — children in sorted (stable) order."""
        self._require_member(node)
        return sorted(node.children, key=lambda child: child.sort_key)

    def siblings(self, node: DHTNode) -> list[DHTNode]:
        """``Siblings(nd, tr)`` — *node together with* its siblings, sorted.

        Matches the paper's definition (Table 1): the returned set includes
        the node itself.  For the root the set is ``[root]``.
        """
        self._require_member(node)
        if node.parent is None:
            return [node]
        return sorted(node.parent.children, key=lambda child: child.sort_key)

    def subtree_leaves(self, node: DHTNode) -> list[DHTNode]:
        """Leaves of ``SubTree(nd, tr)``."""
        self._require_member(node)
        return node.leaves()

    def depth(self, node: DHTNode) -> int:
        self._require_member(node)
        return node.depth()

    def path_to_root(self, node: DHTNode) -> list[DHTNode]:
        """Nodes from *node* (inclusive) up to the root (inclusive)."""
        self._require_member(node)
        return node.ancestors(include_self=True)

    def is_ancestor(self, ancestor: DHTNode, descendant: DHTNode, *, include_self: bool = True) -> bool:
        """Whether *ancestor* lies on *descendant*'s path to the root."""
        self._require_member(ancestor)
        self._require_member(descendant)
        return ancestor.is_ancestor_of(descendant, include_self=include_self)

    def _require_member(self, node: DHTNode) -> None:
        if self._by_name.get(node.name) is not node:
            raise ValueError(f"node {node.name!r} does not belong to the DHT for {self._attribute!r}")

    # ------------------------------------------------------------ value <-> node
    def leaf_for_raw(self, raw_value: object) -> DHTNode:
        """Map a raw column value to its leaf node.

        For categorical attributes the raw value must equal a leaf value.  For
        numeric attributes the raw value is a scalar and the leaf is the
        interval containing it.
        """
        if self._is_numeric and isinstance(raw_value, (int, float)) and not isinstance(raw_value, bool):
            for leaf in self._leaves:
                if leaf.value.contains(float(raw_value)):  # type: ignore[union-attr]
                    return leaf
            raise ValueError(
                f"value {raw_value!r} is outside the domain {self._root.value} of attribute {self._attribute!r}"
            )
        try:
            return self._leaf_by_value[self._value_key(raw_value)]
        except KeyError:
            raise ValueError(
                f"value {raw_value!r} is not a leaf of the DHT for attribute {self._attribute!r}"
            ) from None

    def value_to_node(self, value: object, candidates: Sequence[DHTNode] | None = None) -> DHTNode:
        """``Val2Nd(v, nds[])`` — resolve a (possibly generalized) cell value.

        When *candidates* is given the value must resolve to one of them
        (matching the paper, where ``Val2Nd(ti.c, ultigends)`` looks the value
        up among the ultimate generalization nodes).  Without candidates any
        node of the tree whose value equals *value* is returned; raw numeric
        scalars resolve to their leaf.  This permissive mode is what lets the
        detector keep working on tables that an attacker generalized further
        or altered arbitrarily.
        """
        pool = candidates if candidates is not None else self._nodes
        key = self._value_key(value)
        for node in pool:
            if self._value_key(node.value) == key:
                return node
        if candidates is not None:
            raise ValueError(
                f"value {value!r} does not correspond to any of the given candidate nodes "
                f"for attribute {self._attribute!r}"
            )
        # Fall back to raw-value resolution (e.g. an un-generalized numeric scalar).
        return self.leaf_for_raw(value)

    def resolve(self, value: object) -> DHTNode:
        """Best-effort resolution of *value* to a node (generalized or raw)."""
        try:
            return self.value_to_node(value)
        except ValueError:
            raise

    # ------------------------------------------------------------------- cuts
    def is_valid_cut(self, nodes: Iterable[DHTNode]) -> bool:
        """Whether *nodes* form a valid generalization (Section 4).

        The path from every leaf to the root must encounter one and only one
        of the nodes.
        """
        node_set = set(nodes)
        for node in node_set:
            self._require_member(node)
        for leaf in self._leaves:
            hits = sum(1 for step in leaf.ancestors(include_self=True) if step in node_set)
            if hits != 1:
                return False
        return True

    def covering_node(self, cut: Iterable[DHTNode], leaf: DHTNode) -> DHTNode:
        """Return the node of *cut* that covers *leaf* (assumes a valid cut)."""
        cut_set = set(cut)
        for step in leaf.ancestors(include_self=True):
            if step in cut_set:
                return step
        raise ValueError(f"cut does not cover leaf {leaf.name!r}")

    def cut_mapping(self, cut: Iterable[DHTNode]) -> dict[DHTNode, DHTNode]:
        """Map every leaf to the cut node covering it (assumes a valid cut)."""
        cut_set = set(cut)
        mapping: dict[DHTNode, DHTNode] = {}
        for leaf in self._leaves:
            mapping[leaf] = self.covering_node(cut_set, leaf)
        return mapping

    def leaf_cut(self) -> list[DHTNode]:
        """The trivial cut consisting of every leaf (no generalization)."""
        return list(self._leaves)

    def root_cut(self) -> list[DHTNode]:
        """The maximal cut consisting of the root alone (full suppression)."""
        return [self._root]
