"""Builders for categorical and numeric domain hierarchy trees.

Categorical trees are described by nested mappings (ontology specifications,
see :mod:`repro.ontology`); numeric trees follow the construction of Figure 3
of the paper: the domain ``[L, U)`` is divided into a series of disjoint
intervals which are then pairwise combined, level by level, into a binary
tree.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.dht.node import DHTNode, Interval
from repro.dht.tree import DomainHierarchyTree

__all__ = ["from_nested_mapping", "from_leaf_groups", "binary_numeric_tree"]

NestedSpec = Mapping[str, object]


def _build_categorical(name: str, spec: object) -> DHTNode:
    """Recursively build a categorical subtree from a nested specification.

    *spec* may be a mapping ``{child_label: child_spec}``, a sequence of leaf
    labels, or ``None`` / empty for a leaf.
    """
    node = DHTNode(name=name, value=name)
    if spec is None:
        return node
    if isinstance(spec, Mapping):
        for child_label, child_spec in spec.items():
            node.add_child(_build_categorical(str(child_label), child_spec))
        return node
    if isinstance(spec, (list, tuple)):
        for child_label in spec:
            node.add_child(DHTNode(name=str(child_label), value=str(child_label)))
        return node
    raise TypeError(f"unsupported specification of type {type(spec).__name__!r} under node {name!r}")


def from_nested_mapping(attribute: str, root_label: str, spec: NestedSpec) -> DomainHierarchyTree:
    """Build a categorical DHT from a nested mapping.

    Example (the role hierarchy of Figure 1)::

        from_nested_mapping("role", "Person", {
            "Medical staff": {
                "Doctor": ["Surgeon", "Physician"],
                "Paramedic": ["Pharmacist", "Nurse", "Consultant"],
            },
            "Administrative staff": ["Clerk", "Receptionist"],
        })

    Node names double as node values, so every label must be unique across the
    whole tree.
    """
    root = _build_categorical(root_label, spec)
    return DomainHierarchyTree(attribute, root)


def from_leaf_groups(attribute: str, root_label: str, groups: Mapping[str, Sequence[str]]) -> DomainHierarchyTree:
    """Build a two-level categorical DHT: root -> group -> leaves."""
    return from_nested_mapping(attribute, root_label, {group: list(leaves) for group, leaves in groups.items()})


def _interval_node(interval: Interval) -> DHTNode:
    return DHTNode(name=f"{interval}", value=interval)


def binary_numeric_tree(
    attribute: str,
    lower: float,
    upper: float,
    *,
    n_intervals: int | None = None,
    cut_points: Sequence[float] | None = None,
) -> DomainHierarchyTree:
    """Build the binary DHT of a numeric attribute (Figure 3 of the paper).

    The domain ``[lower, upper)`` is first divided into disjoint leaf
    intervals — either ``n_intervals`` equal-width ones or the intervals
    induced by explicit, strictly increasing interior ``cut_points`` — and the
    intervals are then combined pairwise, level by level, until a single root
    interval covers the whole domain.  When a level has an odd number of
    nodes the last node is carried to the next level unchanged, as in the
    figure (the tree need not be perfect).

    The paper notes that intervals "should be of moderate size (smaller) and
    they need not be of equal size"; both options are therefore supported.
    """
    if upper <= lower:
        raise ValueError("upper bound must exceed lower bound")
    if (n_intervals is None) == (cut_points is None):
        raise ValueError("provide exactly one of n_intervals or cut_points")

    if n_intervals is not None:
        if n_intervals < 1:
            raise ValueError("n_intervals must be at least 1")
        width = (upper - lower) / n_intervals
        bounds = [lower + i * width for i in range(n_intervals)] + [upper]
    else:
        assert cut_points is not None
        bounds = [lower, *cut_points, upper]
        for first, second in zip(bounds, bounds[1:]):
            if second <= first:
                raise ValueError("cut points must be strictly increasing and inside the domain")

    leaves = [_interval_node(Interval(lo, hi)) for lo, hi in zip(bounds, bounds[1:])]

    level = leaves
    while len(level) > 1:
        next_level: list[DHTNode] = []
        index = 0
        while index < len(level):
            if index + 1 < len(level):
                left, right = level[index], level[index + 1]
                merged = _interval_node(left.value.merge(right.value))  # type: ignore[union-attr]
                merged.add_child(left)
                merged.add_child(right)
                next_level.append(merged)
                index += 2
            else:
                # Odd node out: promote it unchanged to the next level.
                next_level.append(level[index])
                index += 1
        level = next_level

    return DomainHierarchyTree(attribute, level[0])
