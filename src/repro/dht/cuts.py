"""Enumeration of generalization cuts between two frontiers of a DHT.

Multi-attribute binning (Section 4.2.2) considers, for every column, the set
of *allowable generalizations*: all valid generalizations whose nodes lie
between the minimal generalization nodes (below) and the maximal
generalization nodes (above).  This module provides the enumeration and
counting primitives behind that step, phrased over arbitrary frontiers so the
tests can exercise them independently of binning.

A *frontier* here is simply a set of nodes; the enumeration is anchored at an
upper frontier (defaults to the maximal generalization nodes or, absent that,
the root) and bounded below by a lower frontier (defaults to the leaves).
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator, Sequence

from repro.dht.node import DHTNode
from repro.dht.tree import DomainHierarchyTree

__all__ = [
    "enumerate_cuts",
    "enumerate_cuts_between",
    "count_cuts_between",
    "is_frontier_at_or_above",
]


def is_frontier_at_or_above(
    tree: DomainHierarchyTree, upper: Iterable[DHTNode], lower: Iterable[DHTNode]
) -> bool:
    """Whether every node of *lower* has an ancestor-or-self in *upper*."""
    upper_set = set(upper)
    for node in lower:
        if not any(step in upper_set for step in node.ancestors(include_self=True)):
            return False
    return True


def _cuts_below(
    tree: DomainHierarchyTree, node: DHTNode, lower_set: set[DHTNode]
) -> Iterator[tuple[DHTNode, ...]]:
    """Yield every cut of the subtree rooted at *node* bounded below by *lower_set*.

    The node itself is always a (singleton) cut.  Descending past a node of
    the lower frontier or past a leaf is not allowed.
    """
    yield (node,)
    if node in lower_set or node.is_leaf:
        return
    child_cut_lists = [list(_cuts_below(tree, child, lower_set)) for child in tree.children(node)]
    for combination in product(*child_cut_lists):
        flat: list[DHTNode] = []
        for part in combination:
            flat.extend(part)
        yield tuple(flat)


def enumerate_cuts_between(
    tree: DomainHierarchyTree,
    upper: Sequence[DHTNode],
    lower: Sequence[DHTNode],
    *,
    limit: int | None = None,
) -> list[tuple[DHTNode, ...]]:
    """Enumerate every valid generalization between two frontiers.

    Parameters
    ----------
    tree:
        The domain hierarchy tree.
    upper:
        Upper frontier (e.g. maximal generalization nodes).  Must itself be a
        valid cut.
    lower:
        Lower frontier (e.g. minimal generalization nodes).  Must be a valid
        cut lying at or below *upper*.
    limit:
        When given, stop once this many cuts have been produced and raise
        :class:`OverflowError`.  Callers that want a greedy fallback catch the
        error (see :mod:`repro.binning.multi`).
    """
    if not tree.is_valid_cut(upper):
        raise ValueError("upper frontier is not a valid generalization")
    if not tree.is_valid_cut(lower):
        raise ValueError("lower frontier is not a valid generalization")
    if not is_frontier_at_or_above(tree, upper, lower):
        raise ValueError("upper frontier must lie at or above the lower frontier")

    lower_set = set(lower)
    per_anchor: list[list[tuple[DHTNode, ...]]] = []
    for anchor in upper:
        per_anchor.append(list(_cuts_below(tree, anchor, lower_set)))

    cuts: list[tuple[DHTNode, ...]] = []
    for combination in product(*per_anchor):
        flat: list[DHTNode] = []
        for part in combination:
            flat.extend(part)
        cuts.append(tuple(flat))
        if limit is not None and len(cuts) > limit:
            raise OverflowError(
                f"more than {limit} allowable generalizations for attribute {tree.attribute!r}"
            )
    return cuts


def enumerate_cuts(
    tree: DomainHierarchyTree,
    *,
    upper: Sequence[DHTNode] | None = None,
    lower: Sequence[DHTNode] | None = None,
    limit: int | None = None,
) -> list[tuple[DHTNode, ...]]:
    """Enumerate cuts with convenient defaults (root above, leaves below)."""
    upper = list(upper) if upper is not None else [tree.root]
    lower = list(lower) if lower is not None else tree.leaves()
    return enumerate_cuts_between(tree, upper, lower, limit=limit)


def _count_below(tree: DomainHierarchyTree, node: DHTNode, lower_set: set[DHTNode]) -> int:
    if node in lower_set or node.is_leaf:
        return 1
    product_count = 1
    for child in tree.children(node):
        product_count *= _count_below(tree, child, lower_set)
    return 1 + product_count


def count_cuts_between(
    tree: DomainHierarchyTree, upper: Sequence[DHTNode], lower: Sequence[DHTNode]
) -> int:
    """Count the cuts :func:`enumerate_cuts_between` would produce, cheaply."""
    if not is_frontier_at_or_above(tree, upper, lower):
        raise ValueError("upper frontier must lie at or above the lower frontier")
    lower_set = set(lower)
    total = 1
    for anchor in upper:
        total *= _count_below(tree, anchor, lower_set)
    return total
