"""Domain hierarchy trees (DHTs).

A domain hierarchy tree arranges the domain of an attribute from the most
specific descriptions (the leaves) to the most general one (the root), as in
Figure 1 of the paper.  Generalisation replaces a leaf value by the value of
one of its ancestors; a *valid generalization* is a set of nodes such that the
path from every leaf to the root crosses exactly one of them (Section 4).

Numeric attributes are handled by first partitioning the domain into disjoint
intervals and pairwise combining the intervals into a binary tree (Figure 3);
from then on they behave exactly like categorical attributes.

The package provides the tree data structure, builders for both categorical
and numeric domains, and the cut-enumeration utilities used by multi-attribute
binning.
"""

from repro.dht.node import DHTNode, Interval
from repro.dht.tree import DomainHierarchyTree
from repro.dht.builders import (
    binary_numeric_tree,
    from_leaf_groups,
    from_nested_mapping,
)
from repro.dht.cuts import (
    count_cuts_between,
    enumerate_cuts,
    enumerate_cuts_between,
    is_frontier_at_or_above,
)

__all__ = [
    "DHTNode",
    "Interval",
    "DomainHierarchyTree",
    "from_nested_mapping",
    "from_leaf_groups",
    "binary_numeric_tree",
    "enumerate_cuts",
    "enumerate_cuts_between",
    "count_cuts_between",
    "is_frontier_at_or_above",
]
