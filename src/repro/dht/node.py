"""Nodes of a domain hierarchy tree and the interval values of numeric DHTs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Interval", "DHTNode"]


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open numeric interval ``[lower, upper)``.

    Intervals are the values carried by the nodes of a numeric DHT: the leaves
    partition the column domain into disjoint intervals, and every internal
    node covers the union of its children's intervals (Figure 3 of the paper).
    The generalized value written into a binned table for a numeric column is
    an :class:`Interval`.
    """

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if not self.upper > self.lower:
            raise ValueError(f"interval upper bound must exceed lower bound, got [{self.lower}, {self.upper})")

    @classmethod
    def from_string(cls, text: str) -> "Interval":
        """Parse every textual form :meth:`__str__` (and hand-written CSVs) produce.

        Accepts ``[25,30)``, ``[25.0, 30.0)``, ``[2.5e1,3e1)`` and negative
        bounds; surrounding whitespace is ignored.  Raises ``ValueError`` for
        anything that is not a well-formed half-open interval, so callers can
        fall back to scalar parsing.
        """
        stripped = text.strip()
        if not (stripped.startswith("[") and stripped.endswith(")")):
            raise ValueError(f"not an interval literal: {text!r}")
        body = stripped[1:-1]
        parts = body.split(",")
        if len(parts) != 2:
            raise ValueError(f"interval literal must have exactly two bounds: {text!r}")
        try:
            lower, upper = (float(part.strip()) for part in parts)
        except ValueError:
            raise ValueError(f"interval bounds must be numeric: {text!r}") from None
        return cls(lower, upper)

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """Whether *value* falls inside the half-open interval."""
        return self.lower <= value < self.upper

    def contains_interval(self, other: "Interval") -> bool:
        """Whether *other* is entirely inside this interval."""
        return self.lower <= other.lower and other.upper <= self.upper

    def merge(self, other: "Interval") -> "Interval":
        """Union of two adjacent or overlapping intervals (must be contiguous)."""
        if self.upper < other.lower or other.upper < self.lower:
            raise ValueError(f"cannot merge disjoint intervals {self} and {other}")
        return Interval(min(self.lower, other.lower), max(self.upper, other.upper))

    def __str__(self) -> str:
        def fmt(x: float) -> str:
            return str(int(x)) if float(x).is_integer() else f"{x:g}"

        return f"[{fmt(self.lower)},{fmt(self.upper)})"


@dataclass(eq=False)
class DHTNode:
    """A node of a :class:`~repro.dht.tree.DomainHierarchyTree`.

    Attributes
    ----------
    name:
        Identifier unique within the tree (used in reports and for stable
        ordering of categorical siblings).
    value:
        The generalized value this node represents.  For a categorical tree
        this is a label string; for a numeric tree it is an
        :class:`Interval`.  Writing this value into a table cell *is* the
        generalisation step.
    children:
        Child nodes, ordered.  Empty for leaves.
    parent:
        Back-pointer maintained by the tree; ``None`` for the root.
    """

    name: str
    value: object
    children: list["DHTNode"] = field(default_factory=list)
    parent: Optional["DHTNode"] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")

    # Nodes are identity-hashed: two nodes with equal labels in different
    # positions of a tree must remain distinct.
    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def sort_key(self) -> tuple:
        """Stable ordering key for sibling sets.

        The watermarking primitive requires the sibling set ``S`` to be
        *sorted* so that the parity of an index is well defined and identical
        at embedding and detection time.  Numeric nodes sort by their interval
        bounds, categorical nodes by name.
        """
        if isinstance(self.value, Interval):
            return (0, self.value.lower, self.value.upper, self.name)
        return (1, str(self.name))

    def add_child(self, child: "DHTNode") -> None:
        """Attach *child* (sets the back-pointer)."""
        if child.parent is not None:
            raise ValueError(f"node {child.name!r} already has a parent")
        child.parent = self
        self.children.append(child)

    def iter_subtree(self):
        """Yield this node and every descendant, depth-first pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def leaves(self) -> list["DHTNode"]:
        """Leaf nodes of the subtree rooted at this node, in tree order."""
        return [node for node in self.iter_subtree() if node.is_leaf]

    def depth(self) -> int:
        """Distance from the root (root has depth 0)."""
        depth = 0
        node = self
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def ancestors(self, *, include_self: bool = False) -> list["DHTNode"]:
        """Ancestors from (optionally) this node up to and including the root."""
        chain: list[DHTNode] = [self] if include_self else []
        node = self.parent
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain

    def is_ancestor_of(self, other: "DHTNode", *, include_self: bool = False) -> bool:
        """Whether this node lies on *other*'s path to the root."""
        if include_self and other is self:
            return True
        node = other.parent
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "leaf" if self.is_leaf else f"{len(self.children)} children"
        return f"DHTNode({self.name!r}, {kind})"
