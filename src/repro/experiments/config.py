"""Shared experiment configuration and workload construction.

The paper's evaluation (Section 7) uses one real-world table of ~20 000 tuples
with schema ``R(ssn, age, zip_code, doctor, symptom, prescription)``, a DHT
per quasi-identifying column, maximal generalization nodes given directly as
the usage metrics, and a 20-bit mark embedded with a multiple embedding.

:func:`build_workload` reproduces that setup with the synthetic table of
:mod:`repro.datagen`:

* usage metrics: the depth-1 frontier of every DHT (children of the root) —
  generalisation may never collapse a column entirely, and the gap between
  this frontier and the binning result is the watermark bandwidth,
* k-anonymity: mono-attribute enforcement for the watermarking experiments
  (matching the per-attribute bin counts of Figure 14); the Figure 11 driver
  additionally runs the joint multi-attribute step,
* ``k + ε`` margin per Section 6 so watermarking cannot push a bin below k.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.binning.kanonymity import EnforcementMode, KAnonymitySpec
from repro.datagen.medical import generate_medical_table
from repro.dht.tree import DomainHierarchyTree
from repro.framework.analysis import suggest_epsilon
from repro.framework.pipeline import ProtectedData, ProtectionFramework
from repro.metrics.usage_metrics import UsageMetrics
from repro.ontology.registry import standard_ontology
from repro.relational.table import Table

__all__ = ["ExperimentConfig", "ProtectedWorkload", "build_workload"]

DEFAULT_ETAS = (50, 75, 100)
DEFAULT_FRACTIONS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment driver.

    ``copies`` is the replication factor ``l`` of the mark.  ``None`` (the
    default) reproduces the paper's multiple embedding, which duplicates the
    mark *until the available bandwidth is exhausted*: one replicated-mark
    position per expected embedding cell, i.e.
    ``l = (table_size / eta) * #watermarked_columns / mark_length``.  A fixed
    integer pins the factor instead (used by tests that need a specific
    redundancy).
    """

    table_size: int = 20_000
    seed: object = 2005
    k: int = 20
    eta: int = 100
    mark_length: int = 20
    copies: int | None = None
    metrics_depth: int = 1
    encryption_key: str = "hospital-encryption-key"
    watermark_secret: str = "hospital-watermark-secret"
    use_epsilon: bool = True

    def scaled(self, table_size: int) -> "ExperimentConfig":
        """The same configuration on a different table size (benchmark use)."""
        return replace(self, table_size=table_size)

    def with_k(self, k: int) -> "ExperimentConfig":
        return replace(self, k=k)

    def with_eta(self, eta: int) -> "ExperimentConfig":
        return replace(self, eta=eta)

    def effective_copies(self, n_watermark_columns: int = 5) -> int:
        """The replication factor actually used (see class docstring)."""
        if self.copies is not None:
            return self.copies
        expected_positions = (self.table_size / self.eta) * n_watermark_columns
        return max(1, int(expected_positions // self.mark_length))


@dataclass(frozen=True)
class ProtectedWorkload:
    """A fully protected table plus everything the drivers need around it."""

    config: ExperimentConfig
    table: Table
    trees: dict[str, DomainHierarchyTree]
    usage_metrics: UsageMetrics
    framework: ProtectionFramework
    protected: ProtectedData


def standard_trees() -> dict[str, DomainHierarchyTree]:
    """The per-column DHTs of the paper's schema."""
    return dict(standard_ontology().items())


def build_framework(
    config: ExperimentConfig,
    trees: dict[str, DomainHierarchyTree],
    *,
    mode: EnforcementMode = EnforcementMode.MONO,
    epsilon: int = 0,
) -> ProtectionFramework:
    """A :class:`ProtectionFramework` wired per the experiment configuration."""
    usage_metrics = UsageMetrics.uniform_depth(trees, config.metrics_depth)
    k_spec = KAnonymitySpec(k=config.k, mode=mode, epsilon=epsilon)
    return ProtectionFramework(
        trees,
        usage_metrics,
        k_spec,
        encryption_key=config.encryption_key,
        watermark_secret=config.watermark_secret,
        eta=config.eta,
        mark_length=config.mark_length,
        copies=config.effective_copies(len(trees)),
    )


def build_workload(config: ExperimentConfig | None = None) -> ProtectedWorkload:
    """Generate the table, protect it, and bundle the pieces for the drivers."""
    config = config or ExperimentConfig()
    table = generate_medical_table(size=config.table_size, seed=config.seed)
    trees = standard_trees()
    usage_metrics = UsageMetrics.uniform_depth(trees, config.metrics_depth)

    epsilon = 0
    if config.use_epsilon:
        # Safety margin of Section 6, ε = (s / S) * |wmd|.  The keyed selection
        # spreads embedding positions essentially uniformly over the bins, so
        # applying the bound with the full bandwidth-exhausting |wmd| would be
        # needlessly pessimistic (it assumes every embedding drains the same
        # bin); a nominal redundancy of a few mark copies gives a modest
        # margin that the Figure 14 measurements confirm is sufficient.
        nominal_wmd_length = config.mark_length * min(4, config.effective_copies(len(trees)))
        epsilon = suggest_epsilon([max(1, config.table_size // 10)] * 10, nominal_wmd_length)

    framework = build_framework(config, trees, mode=EnforcementMode.MONO, epsilon=epsilon)
    protected = framework.protect(table)
    return ProtectedWorkload(
        config=config,
        table=table,
        trees=trees,
        usage_metrics=usage_metrics,
        framework=framework,
        protected=protected,
    )
