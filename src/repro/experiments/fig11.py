"""Figure 11: k versus information loss, mono- vs multi-attribute binning.

The paper sweeps the anonymity parameter ``k`` and records the normalised
information loss (Equation 3) after mono-attribute binning and after
multi-attribute binning.  The expected shape: multi-attribute binning costs
far more information than mono-attribute binning, and both curves saturate
once ``k`` grows past the point where every column (respectively the column
combination) has been generalised as far as the usage metrics allow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.binning.binner import BinningAgent
from repro.binning.errors import NotBinnableError
from repro.binning.kanonymity import EnforcementMode, KAnonymitySpec
from repro.datagen.medical import generate_medical_table
from repro.experiments.config import ExperimentConfig, standard_trees
from repro.metrics.usage_metrics import UsageMetrics

__all__ = ["Fig11Point", "run_fig11", "DEFAULT_K_VALUES"]

DEFAULT_K_VALUES = (2, 5, 10, 25, 50, 100, 150, 200, 250, 300, 350)


@dataclass(frozen=True)
class Fig11Point:
    """One x-position of Figure 11."""

    k: int
    mono_information_loss: float
    multi_information_loss: float
    multi_used_fallback: bool


def run_fig11(
    config: ExperimentConfig | None = None,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
) -> list[Fig11Point]:
    """Reproduce Figure 11: information loss as a function of k.

    Mono-attribute binning is constrained by the depth-1 usage-metric frontier
    (as in the watermarking experiments); the joint multi-attribute step needs
    the root frontier to stay feasible at large ``k`` (with five
    quasi-identifiers, joint k-anonymity forces most columns close to the
    root — which is precisely why its curve saturates near 100%).
    """
    config = config or ExperimentConfig()
    table = generate_medical_table(size=config.table_size, seed=config.seed)
    trees = standard_trees()
    mono_metrics = UsageMetrics.uniform_depth(trees, config.metrics_depth)
    joint_metrics = UsageMetrics.uniform_depth(trees, 0)

    points: list[Fig11Point] = []
    for k in k_values:
        mono_agent = BinningAgent(
            trees,
            mono_metrics,
            KAnonymitySpec(k=k, mode=EnforcementMode.MONO),
            config.encryption_key,
        )
        try:
            mono_result = mono_agent.bin(table)
        except NotBinnableError:
            # The depth-1 frontier cannot accommodate this k (some top-level
            # category holds fewer than k rows).  The paper assumes the data
            # are binnable, i.e. the metrics are relaxed for such a k; the
            # root frontier is the relaxation that always succeeds.
            mono_agent = BinningAgent(
                trees,
                joint_metrics,
                KAnonymitySpec(k=k, mode=EnforcementMode.MONO),
                config.encryption_key,
            )
            mono_result = mono_agent.bin(table)

        joint_agent = BinningAgent(
            trees,
            joint_metrics,
            KAnonymitySpec(k=k, mode=EnforcementMode.JOINT),
            config.encryption_key,
        )
        joint_result = joint_agent.bin(table)

        points.append(
            Fig11Point(
                k=k,
                mono_information_loss=mono_result.normalized_information_loss,
                multi_information_loss=joint_result.normalized_information_loss,
                multi_used_fallback=joint_result.used_fallback,
            )
        )
    return points
