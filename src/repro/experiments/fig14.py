"""Figure 14: effect of watermarking on the bins established by binning.

For several values of ``k`` the paper reports, per quasi-identifying
attribute, the total number of bins, the number of bins whose size changed
after watermarking, and the number of bins whose size dropped below ``k``.
The headline result — the seamlessness of the framework — is that the last
column is all zeros: many bins are touched, none loses its k-anonymity.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.config import ExperimentConfig, build_workload
from repro.framework.analysis import SeamlessnessReport, seamlessness_report

__all__ = ["run_fig14", "DEFAULT_K_VALUES"]

DEFAULT_K_VALUES = (10, 20, 45, 100)


def run_fig14(
    config: ExperimentConfig | None = None,
    *,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
) -> list[SeamlessnessReport]:
    """Reproduce Figure 14: per-attribute bin statistics for each k."""
    config = config or ExperimentConfig()
    reports: list[SeamlessnessReport] = []
    for k in k_values:
        workload = build_workload(config.with_k(k))
        protected = workload.protected
        reports.append(seamlessness_report(protected.binned, protected.watermarked, k=k))
    return reports
