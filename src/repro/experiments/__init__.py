"""Experiment drivers — one per table/figure of the paper's evaluation.

Each driver is a plain function that builds the workload, runs the relevant
part of the framework and returns the data series the paper plots.  The
``benchmarks/`` suite wraps these functions with ``pytest-benchmark`` (one
benchmark per figure), the examples reuse them for narrative output, and
``python -m repro.experiments`` runs the whole evaluation and prints every
table in one go (the source of EXPERIMENTS.md).

The drivers take a :class:`~repro.experiments.config.ExperimentConfig` so the
same code can run at paper scale (20 000 tuples) or at the smaller sizes used
for quick benchmark iterations.
"""

from repro.experiments.config import ExperimentConfig, ProtectedWorkload, build_workload
from repro.experiments.fig11 import Fig11Point, run_fig11
from repro.experiments.fig12 import Fig12Point, run_fig12a, run_fig12b, run_fig12c
from repro.experiments.fig13 import Fig13Point, run_fig13
from repro.experiments.fig14 import run_fig14
from repro.experiments.ablations import (
    run_binning_strategy_ablation,
    run_generalization_attack_ablation,
    run_lsb_ablation,
    run_ownership_ablation,
    run_seamlessness_theory_check,
)

__all__ = [
    "ExperimentConfig",
    "ProtectedWorkload",
    "build_workload",
    "run_fig11",
    "Fig11Point",
    "run_fig12a",
    "run_fig12b",
    "run_fig12c",
    "Fig12Point",
    "run_fig13",
    "Fig13Point",
    "run_fig14",
    "run_generalization_attack_ablation",
    "run_ownership_ablation",
    "run_binning_strategy_ablation",
    "run_lsb_ablation",
    "run_seamlessness_theory_check",
]
