"""Run the full evaluation and print every table/figure as text.

Usage::

    python -m repro.experiments [--size N] [--quick]

``--quick`` runs at a reduced table size and with coarser sweeps so the whole
evaluation finishes in well under a minute; the default reproduces the paper's
20 000-tuple setting.  The output of this module is what EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import argparse
import time

from repro.experiments.ablations import (
    run_binning_strategy_ablation,
    run_generalization_attack_ablation,
    run_lsb_ablation,
    run_ownership_ablation,
    run_seamlessness_theory_check,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12a, run_fig12b, run_fig12c
from repro.experiments.fig13 import run_fig13
from repro.experiments.fig14 import run_fig14


def _print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def _print_fig12(points, label: str) -> None:
    etas = sorted({point.eta for point in points})
    fractions = sorted({point.fraction for point in points})
    print(f"{label:>12} | " + " | ".join(f"eta={eta:>3}" for eta in etas))
    for fraction in fractions:
        row = [f"{fraction:>11.0%} "]
        for eta in etas:
            match = next(p for p in points if p.eta == eta and abs(p.fraction - fraction) < 1e-9)
            row.append(f"{match.mark_loss:>7.1%}")
        print(" | ".join(row))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=20_000, help="table size (default 20000)")
    parser.add_argument("--quick", action="store_true", help="smaller size and coarser sweeps")
    parser.add_argument("--seed", type=int, default=2005, help="data-generation seed")
    args = parser.parse_args(argv)

    size = 4_000 if args.quick else args.size
    config = ExperimentConfig(table_size=size, seed=args.seed)
    fractions = (0.0, 0.2, 0.4, 0.6, 0.8) if args.quick else (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
    k_values_fig11 = (2, 10, 50, 150, 350) if args.quick else (2, 5, 10, 25, 50, 100, 150, 200, 250, 300, 350)

    started = time.time()
    print(f"repro evaluation — table size {size}, seed {args.seed}")

    _print_header("Figure 11 — k vs information loss (mono vs multi-attribute binning)")
    for point in run_fig11(config, k_values=k_values_fig11):
        fallback = " (greedy)" if point.multi_used_fallback else ""
        print(
            f"k={point.k:>4}  mono={point.mono_information_loss:>6.1%}  "
            f"multi={point.multi_information_loss:>6.1%}{fallback}"
        )

    _print_header("Figure 12(a) — mark loss under Subset Alteration")
    _print_fig12(run_fig12a(config, fractions=fractions), "altered")

    _print_header("Figure 12(b) — mark loss under Subset Addition")
    _print_fig12(run_fig12b(config, fractions=fractions), "added")

    _print_header("Figure 12(c) — mark loss under Subset Deletion")
    _print_fig12(run_fig12c(config, fractions=fractions), "deleted")

    _print_header("Figure 13 — information loss of watermarking vs eta")
    for point in run_fig13(config):
        print(
            f"eta={point.eta:>4}  info loss={point.information_loss:>6.2%}  "
            f"cells changed={point.cells_changed}"
        )

    _print_header("Figure 14 — effect of watermarking on binning (total/changed/<k)")
    for report in run_fig14(config):
        print(f"k={report.k}:")
        for column, total, changed, below in report.as_rows():
            print(f"    {column:>14}: {total:>4} bins, {changed:>4} changed, {below:>2} below k")

    _print_header("Ablation — generalization attack: hierarchical vs single-level")
    for row in run_generalization_attack_ablation(config):
        print(
            f"levels={row.levels}  hierarchical loss={row.hierarchical_mark_loss:>6.1%}  "
            f"single-level loss={row.single_level_mark_loss:>6.1%}"
        )

    _print_header("Ablation — rightful-ownership disputes")
    for row in run_ownership_ablation(config):
        print(
            f"{row.attack:<24} owner valid={row.owner_valid}  attacker valid={row.attacker_valid}  "
            f"winner={row.winner}"
        )

    _print_header("Ablation — downward binning vs Datafly (upward) baseline")
    for row in run_binning_strategy_ablation(config):
        print(
            f"k={row.k:>4}  downward loss={row.downward_information_loss:>6.1%}  "
            f"datafly loss={row.datafly_information_loss:>6.1%}  (datafly steps={row.datafly_steps})"
        )

    _print_header("Ablation — LSB baseline fragility")
    lsb = run_lsb_ablation(config)
    print(
        f"LSB match rate clean={lsb.lsb_match_rate_clean:.1%}, after LSB flipping="
        f"{lsb.lsb_match_rate_after_flip:.1%} (mark present: {lsb.lsb_survives_flip}); "
        f"hierarchical loss after generalization attack={lsb.hierarchical_loss_after_generalization:.1%}"
    )

    _print_header("Ablation — Lemmas 1-2 vs Monte-Carlo")
    theory = run_seamlessness_theory_check()
    print(
        f"groups={theory.group_sizes}, n_k={theory.n_k}: "
        f"Pr- theory={theory.pr_minus_theory:.4f} sim={theory.pr_minus_simulated:.4f}; "
        f"Pr+ theory={theory.pr_plus_theory:.4f} sim={theory.pr_plus_simulated:.4f}"
    )

    print()
    print(f"total wall time: {time.time() - started:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
