"""Ablation experiments for claims made outside the numbered figures.

* the generalization attack destroys the single-level scheme but not the
  hierarchical one (Section 5.2/5.3),
* the rightful-ownership protocol rules for the true owner under Attacks 1
  and 2 (Section 5.4),
* Lemmas 1–2 match a Monte-Carlo simulation of the embedding primitive
  (Section 6),
* downward binning versus the classical upward (Datafly-style) baseline
  (Section 4.2.1's efficiency/quality discussion),
* LSB watermarking of numeric data collapses under trivial bit flipping,
  which motivates permutation-based embedding (Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.attacks.generalization_attack import GeneralizationAttack
from repro.attacks.ownership_attacks import AdditiveMarkAttack, SubtractiveMarkAttack
from repro.binning.baseline_datafly import DataflyBinner
from repro.binning.binner import BinningAgent
from repro.binning.kanonymity import EnforcementMode, KAnonymitySpec
from repro.crypto.prng import DeterministicPRNG
from repro.datagen.medical import generate_medical_table
from repro.experiments.config import ExperimentConfig, build_workload, standard_trees
from repro.framework.analysis import pr_minus, pr_plus
from repro.metrics.usage_metrics import UsageMetrics
from repro.watermarking.baseline_lsb import LSBWatermarker
from repro.watermarking.keys import WatermarkKey
from repro.watermarking.mark import mark_loss
from repro.watermarking.single_level import SingleLevelWatermarker

__all__ = [
    "GeneralizationAttackAblation",
    "run_generalization_attack_ablation",
    "OwnershipAblation",
    "run_ownership_ablation",
    "BinningStrategyPoint",
    "run_binning_strategy_ablation",
    "LSBAblation",
    "run_lsb_ablation",
    "SeamlessnessTheoryPoint",
    "run_seamlessness_theory_check",
]


# --------------------------------------------------------------------------- §5.2/§5.3
@dataclass(frozen=True)
class GeneralizationAttackAblation:
    """Mark loss of both schemes under the generalization attack."""

    levels: int
    hierarchical_mark_loss: float
    single_level_mark_loss: float


def run_generalization_attack_ablation(
    config: ExperimentConfig | None = None,
    *,
    levels: Sequence[int] = (1, 2),
) -> list[GeneralizationAttackAblation]:
    """Hierarchical vs single-level watermarking under the generalization attack."""
    config = config or ExperimentConfig()
    workload = build_workload(config)
    protected = workload.protected

    single_key = WatermarkKey.from_secret(config.watermark_secret + "-single-level", config.eta)
    single = SingleLevelWatermarker(single_key, copies=config.effective_copies())
    single_embedding = single.embed(protected.binned, protected.mark)

    results: list[GeneralizationAttackAblation] = []
    for level in levels:
        attack = GeneralizationAttack(levels=level)
        attacked_hier = attack.run(protected.watermarked).attacked
        attacked_single = attack.run(single_embedding.watermarked).attacked
        results.append(
            GeneralizationAttackAblation(
                levels=level,
                hierarchical_mark_loss=mark_loss(
                    protected.mark, workload.framework.detect(attacked_hier).mark
                ),
                single_level_mark_loss=mark_loss(
                    protected.mark, single.detect(attacked_single, config.mark_length).mark
                ),
            )
        )
    return results


# ------------------------------------------------------------------------------- §5.4
@dataclass(frozen=True)
class OwnershipAblation:
    """Dispute outcomes under the two rightful-ownership attacks."""

    attack: str
    owner_valid: bool
    attacker_valid: bool
    winner: str | None


def run_ownership_ablation(config: ExperimentConfig | None = None) -> list[OwnershipAblation]:
    """Resolve disputes after Attack 1 (additive) and Attack 2 (subtractive)."""
    config = config or ExperimentConfig()
    workload = build_workload(config)
    framework = workload.framework
    protected = workload.protected
    owner_claim = framework.owner_claim("hospital")

    outcomes: list[OwnershipAblation] = []

    additive = AdditiveMarkAttack(seed=("ownership", 1), eta=config.eta, copies=config.effective_copies())
    additive_result = additive.run(protected.watermarked, config.mark_length)
    verdict = framework.resolve_dispute(
        additive_result.attack.attacked, [owner_claim, additive_result.attacker_claim]
    )
    outcomes.append(
        OwnershipAblation(
            attack="additive (Attack 1)",
            owner_valid="hospital" in verdict.valid_claimants,
            attacker_valid=additive_result.attacker_claim.claimant in verdict.valid_claimants,
            winner=verdict.winner,
        )
    )

    subtractive = SubtractiveMarkAttack(seed=("ownership", 2), eta=config.eta, copies=config.effective_copies())
    subtractive_result = subtractive.run(protected.watermarked, config.mark_length)
    # In Attack 2 the disputed table is the owner's published table; the
    # attacker only fabricates a bogus original to back their claim.
    verdict = framework.resolve_dispute(
        protected.watermarked, [owner_claim, subtractive_result.attacker_claim]
    )
    outcomes.append(
        OwnershipAblation(
            attack="subtractive (Attack 2)",
            owner_valid="hospital" in verdict.valid_claimants,
            attacker_valid=subtractive_result.attacker_claim.claimant in verdict.valid_claimants,
            winner=verdict.winner,
        )
    )
    return outcomes


# --------------------------------------------------------------------------- §4.2.1
@dataclass(frozen=True)
class BinningStrategyPoint:
    """Downward binning vs the upward Datafly baseline at one value of k."""

    k: int
    downward_information_loss: float
    datafly_information_loss: float
    datafly_steps: int


def run_binning_strategy_ablation(
    config: ExperimentConfig | None = None,
    *,
    k_values: Sequence[int] = (10, 20, 45, 100),
) -> list[BinningStrategyPoint]:
    """Compare the paper's downward binning with upward full-domain generalization."""
    config = config or ExperimentConfig()
    table = generate_medical_table(size=config.table_size, seed=config.seed)
    trees = standard_trees()
    metrics = UsageMetrics.uniform_depth(trees, config.metrics_depth)

    points: list[BinningStrategyPoint] = []
    for k in k_values:
        spec = KAnonymitySpec(k=k, mode=EnforcementMode.MONO)
        downward = BinningAgent(trees, metrics, spec, config.encryption_key).bin(table)
        datafly = DataflyBinner(trees, spec).bin(table)
        points.append(
            BinningStrategyPoint(
                k=k,
                downward_information_loss=downward.normalized_information_loss,
                datafly_information_loss=datafly.normalized_information_loss,
                datafly_steps=datafly.steps,
            )
        )
    return points


# ------------------------------------------------------------------------------ §2
@dataclass(frozen=True)
class LSBAblation:
    """LSB baseline vs hierarchical scheme under their cheapest damaging attacks."""

    lsb_match_rate_clean: float
    lsb_match_rate_after_flip: float
    lsb_survives_flip: bool
    hierarchical_loss_after_generalization: float


def run_lsb_ablation(config: ExperimentConfig | None = None) -> LSBAblation:
    """Show why LSB embedding is fragile while hierarchical permutation is not."""
    config = config or ExperimentConfig()
    table = generate_medical_table(size=config.table_size, seed=config.seed)
    key = WatermarkKey.from_secret(config.watermark_secret + "-lsb", max(2, config.eta // 10))
    lsb = LSBWatermarker(key, columns=("age",), ident_column="ssn", xi=2)
    marked = lsb.embed(table)
    clean = lsb.detect(marked)

    # The trivial attack: flip every least significant bit of the marked column.
    rng = DeterministicPRNG(("lsb-flip", config.seed))
    flipped = marked.copy()
    for row in flipped:
        if isinstance(row["age"], int):
            row["age"] = row["age"] ^ 1 if rng.random() < 0.95 else row["age"]
    attacked = lsb.detect(flipped)

    workload = build_workload(config)
    gen_attacked = GeneralizationAttack(levels=1).run(workload.protected.watermarked).attacked
    hier_loss = mark_loss(workload.protected.mark, workload.framework.detect(gen_attacked).mark)

    return LSBAblation(
        lsb_match_rate_clean=clean.match_rate,
        lsb_match_rate_after_flip=attacked.match_rate,
        lsb_survives_flip=attacked.mark_present,
        hierarchical_loss_after_generalization=hier_loss,
    )


# ------------------------------------------------------------------------------ §6
@dataclass(frozen=True)
class SeamlessnessTheoryPoint:
    """Lemmas 1–2 against a Monte-Carlo simulation of one bit-embedding."""

    n_k: int
    group_sizes: tuple[int, ...]
    pr_minus_theory: float
    pr_plus_theory: float
    pr_minus_simulated: float
    pr_plus_simulated: float


def run_seamlessness_theory_check(
    *,
    group_sizes: Sequence[int] = (4, 3, 5),
    n_k: int = 4,
    trials: int = 20_000,
    seed: object = 0,
) -> SeamlessnessTheoryPoint:
    """Monte-Carlo check of Lemmas 1 and 2 under the paper's two assumptions.

    ``group_sizes`` lists, per maximal generalization node, how many ultimate
    generalization nodes it covers; the simulated embedding picks a uniform
    tuple (assumption i: equal bin sizes) and a uniform target node among the
    group (assumption ii), and we count how often the watched bin shrinks or
    grows.
    """
    if n_k not in group_sizes:
        raise ValueError("n_k must be one of the group sizes")
    rng = DeterministicPRNG(("seamlessness-theory", seed))
    total_bins = sum(group_sizes)
    # The watched bin is the first ultimate node of the group with size n_k.
    group_start = 0
    for size in group_sizes:
        if size == n_k:
            break
        group_start += size
    watched = group_start

    shrink = 0
    grow = 0
    for _ in range(trials):
        source_bin = rng.randint(0, total_bins - 1)
        # Which group does the source bin belong to?
        cumulative = 0
        for size in group_sizes:
            if source_bin < cumulative + size:
                group_size, group_offset = size, cumulative
                break
            cumulative += size
        target_bin = group_offset + rng.randint(0, group_size - 1)
        if source_bin == watched and target_bin != watched:
            shrink += 1
        if source_bin != watched and target_bin == watched:
            grow += 1
    return SeamlessnessTheoryPoint(
        n_k=n_k,
        group_sizes=tuple(group_sizes),
        pr_minus_theory=pr_minus(n_k, list(group_sizes)),
        pr_plus_theory=pr_plus(n_k, list(group_sizes)),
        pr_minus_simulated=shrink / trials,
        pr_plus_simulated=grow / trials,
    )
