"""Figure 13: information loss caused by watermarking itself.

Watermarking permutes roughly one cell in ``η`` per watermarked column; the
permuted cell is, from the data consumer's point of view, only reliable up to
its maximal generalization node.  The paper plots the resulting information
loss against ``η`` and finds it minor (single-digit percent) and decreasing as
``η`` grows (fewer tuples touched).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.config import ExperimentConfig, build_workload
from repro.framework.analysis import watermarking_information_loss

__all__ = ["Fig13Point", "run_fig13", "DEFAULT_ETA_SWEEP"]

DEFAULT_ETA_SWEEP = (50, 75, 100, 150, 200)


@dataclass(frozen=True)
class Fig13Point:
    """One x-position of Figure 13."""

    eta: int
    information_loss: float
    per_column: dict[str, float]
    cells_changed: int


def run_fig13(
    config: ExperimentConfig | None = None,
    *,
    etas: Sequence[int] = DEFAULT_ETA_SWEEP,
) -> list[Fig13Point]:
    """Reproduce Figure 13: watermark-induced information loss versus η."""
    config = config or ExperimentConfig()
    points: list[Fig13Point] = []
    for eta in etas:
        workload = build_workload(config.with_eta(eta))
        protected = workload.protected
        losses = watermarking_information_loss(protected.binned, protected.watermarked)
        normalized = losses.pop("__normalized__", 0.0)
        points.append(
            Fig13Point(
                eta=eta,
                information_loss=normalized,
                per_column=losses,
                cells_changed=protected.embedding_report.cells_changed,
            )
        )
    return points
