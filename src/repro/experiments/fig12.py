"""Figures 12(a)–(c): robustness of the hierarchical watermarking to attacks.

For each selection modulus ``η ∈ {50, 75, 100}`` the evaluation sweeps the
attack intensity (fraction of tuples altered / added / deleted) and records the
mark loss — the fraction of the 20-bit mark the detector gets wrong.  The
paper's observations, which the drivers reproduce:

* the scheme loses only a bounded share of mark bits even under very heavy
  alteration (Figure 12a),
* bogus additions barely matter until they rival the original data in volume,
  because the spurious votes lose the majority vote (Figure 12b),
* mark loss under deletion grows roughly linearly with the deleted share
  (Figure 12c),
* a smaller ``η`` (more embedded tuples) is consistently more resilient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.attacks.addition import SubsetAdditionAttack
from repro.attacks.alteration import SubsetAlterationAttack
from repro.attacks.deletion import SubsetDeletionAttack
from repro.binning.binner import BinnedTable
from repro.experiments.config import (
    DEFAULT_ETAS,
    DEFAULT_FRACTIONS,
    ExperimentConfig,
    build_workload,
)
from repro.watermarking.mark import mark_loss

__all__ = ["Fig12Point", "run_fig12a", "run_fig12b", "run_fig12c"]


@dataclass(frozen=True)
class Fig12Point:
    """One point of a Figure 12 curve.

    ``mark_loss`` is the paper's majority-vote detector; ``soft_mark_loss``
    re-decodes the *same* collected votes with the soft-combining mark code
    (``"soft"`` in :mod:`repro.watermarking.ecc`), so the two columns compare
    decoders, not detection runs.  ``corrected_bits`` counts the mark bits
    where the soft decoder overruled the hard majority.
    """

    eta: int
    fraction: float
    mark_loss: float
    rows_touched: int
    soft_mark_loss: float = 0.0
    corrected_bits: int = 0


AttackFactory = Callable[[float], object]


def _sweep(
    config: ExperimentConfig,
    etas: Sequence[int],
    fractions: Sequence[float],
    attack_factory: Callable[[float, int], object],
) -> list[Fig12Point]:
    points: list[Fig12Point] = []
    for eta in etas:
        workload = build_workload(config.with_eta(eta))
        framework = workload.framework
        protected = workload.protected
        # Votes are collected once per attacked table and finalized by both
        # decoders, so the majority-vs-soft columns differ only in decoding.
        watermarker = framework.watermarker()
        soft_watermarker = watermarker.with_code("soft")
        mark_length = len(protected.mark)
        for fraction in fractions:
            if fraction == 0.0:
                attacked: BinnedTable = protected.watermarked
                rows_touched = 0
            else:
                attack = attack_factory(fraction, eta)
                result = attack.run(protected.watermarked)  # type: ignore[attr-defined]
                attacked = result.attacked
                rows_touched = result.rows_touched
            votes = watermarker.collect_votes(attacked, mark_length)
            detection = watermarker.finalize_votes(votes, mark_length)
            soft_detection = soft_watermarker.finalize_votes(votes, mark_length)
            points.append(
                Fig12Point(
                    eta=eta,
                    fraction=fraction,
                    mark_loss=mark_loss(protected.mark, detection.mark),
                    rows_touched=rows_touched,
                    soft_mark_loss=mark_loss(protected.mark, soft_detection.mark),
                    corrected_bits=soft_detection.corrected_bits,
                )
            )
    return points


def run_fig12a(
    config: ExperimentConfig | None = None,
    *,
    etas: Sequence[int] = DEFAULT_ETAS,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
) -> list[Fig12Point]:
    """Figure 12(a): mark loss under the Subset Alteration attack."""
    config = config or ExperimentConfig()
    return _sweep(
        config,
        etas,
        fractions,
        lambda fraction, eta: SubsetAlterationAttack(fraction, seed=("fig12a", eta)),
    )


def run_fig12b(
    config: ExperimentConfig | None = None,
    *,
    etas: Sequence[int] = DEFAULT_ETAS,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
) -> list[Fig12Point]:
    """Figure 12(b): mark loss under the Subset Addition attack."""
    config = config or ExperimentConfig()
    return _sweep(
        config,
        etas,
        fractions,
        lambda fraction, eta: SubsetAdditionAttack(fraction, seed=("fig12b", eta)),
    )


def run_fig12c(
    config: ExperimentConfig | None = None,
    *,
    etas: Sequence[int] = DEFAULT_ETAS,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
) -> list[Fig12Point]:
    """Figure 12(c): mark loss under the Subset Deletion attack."""
    config = config or ExperimentConfig()
    return _sweep(
        config,
        etas,
        fractions,
        lambda fraction, eta: SubsetDeletionAttack(fraction, seed=("fig12c", eta)),
    )
