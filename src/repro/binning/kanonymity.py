"""k-anonymity specification, bins and checks.

A *bin* is the set of records sharing the same (generalized) value
combination; the table satisfies k-anonymity when every bin holds at least
``k`` records (Section 2).  The paper distinguishes

* **mono-attribute** satisfaction — every attribute, taken alone, is
  k-anonymous (the output of Figure 5), and
* **multi-attribute** (joint) satisfaction — every combination of the binned
  attributes is k-anonymous (the goal of Figure 7).

:class:`KAnonymitySpec` captures the system parameter ``k``, the set of
quasi-identifying columns to bin, the enforcement mode and the ``k + ε``
safety margin of Section 6 that absorbs watermarking-induced bin changes.

:class:`ColumnIndex` precomputes, once per table, the per-row leaf nodes of
every quasi-identifying column so that candidate generalizations can be
checked without repeatedly re-parsing values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.binning.generalization import Generalization, MultiColumnGeneralization
from repro.dht.node import DHTNode
from repro.dht.tree import DomainHierarchyTree
from repro.relational.table import Table

__all__ = [
    "EnforcementMode",
    "KAnonymitySpec",
    "ColumnIndex",
    "bin_sizes",
    "joint_bin_sizes",
    "is_k_anonymous",
]


class EnforcementMode(enum.Enum):
    """How the k-anonymity specification is enforced across columns."""

    MONO = "mono"
    JOINT = "joint"


@dataclass(frozen=True)
class KAnonymitySpec:
    """The k-anonymity specification of Section 3.

    Parameters
    ----------
    k:
        The anonymity parameter; every bin must contain at least ``k`` rows.
    columns:
        Quasi-identifying columns to bin.  ``None`` means "every
        quasi-identifying column of the schema".
    mode:
        ``MONO`` enforces k-anonymity attribute by attribute (the
        mono-attribute step only); ``JOINT`` additionally enforces it on the
        combination of the binned attributes (the multi-attribute step).
    epsilon:
        The ``ε`` of Section 6: binning actually targets ``k + ε`` so that
        the tuple permutations introduced by watermarking cannot push any bin
        below ``k``.
    """

    k: int
    columns: tuple[str, ...] | None = None
    mode: EnforcementMode = EnforcementMode.JOINT
    epsilon: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")

    @property
    def effective_k(self) -> int:
        """The threshold binning actually enforces (``k + ε``)."""
        return self.k + self.epsilon

    def resolve_columns(self, table: Table) -> list[str]:
        """The concrete column list for *table* (defaults to its QI columns)."""
        if self.columns is not None:
            for name in self.columns:
                table.schema.column(name)
            return list(self.columns)
        return [column.name for column in table.schema.quasi_identifying_columns]

    def with_epsilon(self, epsilon: int) -> "KAnonymitySpec":
        return KAnonymitySpec(self.k, self.columns, self.mode, epsilon)


class ColumnIndex:
    """Per-column, per-row leaf resolution computed once for a table.

    Candidate generalizations are evaluated many times during binning; this
    index maps every row of every quasi-identifying column to its DHT leaf up
    front, so a candidate check reduces to dictionary lookups.
    """

    def __init__(self, table: Table, trees: Mapping[str, DomainHierarchyTree], columns: Sequence[str]) -> None:
        self._columns = list(columns)
        self._trees = {column: trees[column] for column in columns}
        self._row_leaves: dict[str, list[DHTNode]] = {}
        self._leaf_counts: dict[str, dict[DHTNode, int]] = {}
        for column in columns:
            tree = self._trees[column]
            # Leaf resolution is deterministic per value, so a per-distinct
            # memo turns the column sweep into one tree walk per bin instead
            # of one per row (column_values is a single buffer copy on the
            # columnar substrate).
            leaf_for_raw = tree.leaf_for_raw
            memo: dict[object, DHTNode] = {}
            leaves: list[DHTNode] = []
            append = leaves.append
            for value in table.column_values(column):
                try:
                    leaf = memo.get(value)
                except TypeError:  # unhashable cell: resolve without caching
                    append(leaf_for_raw(value))
                    continue
                if leaf is None:
                    leaf = memo[value] = leaf_for_raw(value)
                append(leaf)
            self._row_leaves[column] = leaves
            counts: dict[DHTNode, int] = {leaf: 0 for leaf in tree.leaves()}
            for leaf in leaves:
                counts[leaf] += 1
            self._leaf_counts[column] = counts
        self._n_rows = len(table)

    @property
    def columns(self) -> list[str]:
        return list(self._columns)

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def tree(self, column: str) -> DomainHierarchyTree:
        return self._trees[column]

    def row_leaves(self, column: str) -> list[DHTNode]:
        """The leaf node of every row for *column* (in table order)."""
        return self._row_leaves[column]

    def leaf_counts(self, column: str) -> dict[DHTNode, int]:
        """Number of rows under every leaf of *column*'s tree."""
        return dict(self._leaf_counts[column])

    def counts_by_column(self) -> dict[str, dict[DHTNode, int]]:
        return {column: dict(counts) for column, counts in self._leaf_counts.items()}

    # --------------------------------------------------------------- bin sizes
    def mono_bin_sizes(self, column: str, generalization: Generalization) -> dict[DHTNode, int]:
        """Bin sizes of one column under a candidate generalization."""
        sizes: dict[DHTNode, int] = {}
        for leaf in self._row_leaves[column]:
            node = generalization.node_for_leaf(leaf)
            sizes[node] = sizes.get(node, 0) + 1
        return sizes

    def joint_bin_sizes(self, generalization: MultiColumnGeneralization) -> dict[tuple[str, ...], int]:
        """Bin sizes of the column combination under a candidate generalization."""
        columns = [column for column in self._columns if column in generalization]
        if not columns:
            raise ValueError("generalization covers none of the indexed columns")
        per_column_nodes: list[list[DHTNode]] = []
        for column in columns:
            gen = generalization[column]
            per_column_nodes.append([gen.node_for_leaf(leaf) for leaf in self._row_leaves[column]])
        sizes: dict[tuple[str, ...], int] = {}
        for row_index in range(self._n_rows):
            key = tuple(per_column_nodes[i][row_index].name for i in range(len(columns)))
            sizes[key] = sizes.get(key, 0) + 1
        return sizes

    def satisfies_mono(self, column: str, generalization: Generalization, k: int) -> bool:
        return is_k_anonymous(self.mono_bin_sizes(column, generalization), k)

    def satisfies_joint(self, generalization: MultiColumnGeneralization, k: int) -> bool:
        return is_k_anonymous(self.joint_bin_sizes(generalization), k)

    def joint_violations(self, generalization: MultiColumnGeneralization, k: int) -> list[int]:
        """Indices of rows falling in joint bins smaller than *k*."""
        columns = [column for column in self._columns if column in generalization]
        per_column_nodes: list[list[DHTNode]] = []
        for column in columns:
            gen = generalization[column]
            per_column_nodes.append([gen.node_for_leaf(leaf) for leaf in self._row_leaves[column]])
        keys = [
            tuple(per_column_nodes[i][row_index].name for i in range(len(columns)))
            for row_index in range(self._n_rows)
        ]
        sizes: dict[tuple[str, ...], int] = {}
        for key in keys:
            sizes[key] = sizes.get(key, 0) + 1
        return [row_index for row_index, key in enumerate(keys) if sizes[key] < k]


def bin_sizes(table: Table, columns: Sequence[str]) -> dict[tuple[object, ...], int]:
    """Bin sizes of *table* grouped by the given (already binned) columns."""
    return table.group_by_count(list(columns))


def joint_bin_sizes(table: Table, columns: Sequence[str]) -> dict[tuple[object, ...], int]:
    """Alias of :func:`bin_sizes`, named for symmetry with the mono case."""
    return bin_sizes(table, columns)


def is_k_anonymous(sizes: Mapping[object, int], k: int) -> bool:
    """Whether every bin in *sizes* holds at least ``k`` records.

    An empty table (no bins) is trivially k-anonymous: there is nothing to
    re-identify.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    return all(size >= k for size in sizes.values())
