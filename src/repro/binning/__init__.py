"""Binning: k-anonymity through downward generalization (Section 4).

The binning agent transforms the table to be outsourced so that no search over
the quasi-identifying columns can be narrowed down to fewer than *k*
individuals.  Its pieces:

* :mod:`repro.binning.generalization` — valid generalizations (cuts of a DHT)
  and their application to values, rows and tables,
* :mod:`repro.binning.kanonymity` — the k-anonymity specification, bin-size
  computation and checks,
* :mod:`repro.binning.mono` — mono-attribute downward binning (Figure 5),
* :mod:`repro.binning.multi` — multi-attribute binning (Figure 7),
* :mod:`repro.binning.binner` — the complete binning agent (Figure 8):
  encrypt identifying columns, generalise quasi-identifying ones,
* :mod:`repro.binning.baseline_datafly` — an upward full-domain generalization
  baseline (Datafly / Samarati–Sweeney style) used for comparison with the
  paper's downward approach.
"""

from repro.binning.errors import BinningError, NotBinnableError
from repro.binning.generalization import Generalization, MultiColumnGeneralization
from repro.binning.kanonymity import (
    ColumnIndex,
    KAnonymitySpec,
    bin_sizes,
    is_k_anonymous,
    joint_bin_sizes,
)
from repro.binning.mono import gen_min_nodes
from repro.binning.multi import allowable_generalizations, gen_ultimate_nodes
from repro.binning.binner import BinnedTable, BinningAgent, BinningResult
from repro.binning.baseline_datafly import DataflyBinner

__all__ = [
    "BinningError",
    "NotBinnableError",
    "Generalization",
    "MultiColumnGeneralization",
    "KAnonymitySpec",
    "ColumnIndex",
    "bin_sizes",
    "joint_bin_sizes",
    "is_k_anonymous",
    "gen_min_nodes",
    "allowable_generalizations",
    "gen_ultimate_nodes",
    "BinningAgent",
    "BinningResult",
    "BinnedTable",
    "DataflyBinner",
]
