"""Multi-attribute binning (Figure 7 of the paper).

After mono-attribute binning every column is k-anonymous on its own, but
combinations of columns may not be.  Multi-attribute binning therefore picks,
for every column, a generalization lying between its minimal generalization
nodes (below) and its maximal generalization nodes (above) such that the
*combination* satisfies k-anonymity, choosing among the valid candidates the
one with the least specificity loss (Section 4.2.2).

The paper enumerates all ``prod_i n_i`` combinations of allowable
generalizations (``EnumGen``) and filters them.  That is exact but explodes
for deep trees, so this module implements both:

* **exact enumeration** (the paper's algorithm) whenever the combination count
  fits a configurable budget, and
* a **greedy coarsening fallback** otherwise: starting from the minimal
  frontier, repeatedly merge — at the node level — the sibling group that
  covers the most records violating joint k-anonymity, until the combination
  is k-anonymous or every column has reached its maximal frontier.  The
  fallback stays within the allowable-generalization lattice of the paper and
  reports itself through :class:`MultiBinningOutcome.used_fallback`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Mapping, Sequence

from repro.binning.errors import NotBinnableError
from repro.binning.generalization import Generalization, MultiColumnGeneralization
from repro.binning.kanonymity import ColumnIndex
from repro.dht.cuts import count_cuts_between, enumerate_cuts_between
from repro.dht.node import DHTNode
from repro.dht.tree import DomainHierarchyTree

__all__ = [
    "allowable_generalizations",
    "count_allowable_combinations",
    "MultiBinningOutcome",
    "gen_ultimate_nodes",
]

DEFAULT_ENUMERATION_BUDGET = 4096


def allowable_generalizations(
    tree: DomainHierarchyTree,
    minimal_nodes: Sequence[DHTNode],
    maximal_nodes: Sequence[DHTNode],
    *,
    limit: int | None = None,
) -> list[Generalization]:
    """All generalizations of one column between its two frontiers.

    This is the per-column candidate set of Section 4.2.2 (the example of
    Figure 6 yields six of them).  ``limit`` guards against explosion; when it
    is exceeded an :class:`OverflowError` propagates to the caller, which then
    falls back to the greedy search.
    """
    cuts = enumerate_cuts_between(tree, list(maximal_nodes), list(minimal_nodes), limit=limit)
    return [Generalization(tree, cut) for cut in cuts]


def count_allowable_combinations(
    trees: Mapping[str, DomainHierarchyTree],
    minimal_nodes: Mapping[str, Sequence[DHTNode]],
    maximal_nodes: Mapping[str, Sequence[DHTNode]],
) -> int:
    """``prod_i n_i`` — the number of combinations exact enumeration would visit."""
    total = 1
    for column, tree in trees.items():
        total *= count_cuts_between(tree, list(maximal_nodes[column]), list(minimal_nodes[column]))
    return total


@dataclass(frozen=True)
class MultiBinningOutcome:
    """Result of multi-attribute binning.

    Attributes
    ----------
    generalization:
        The ultimate generalization (one cut per column).
    satisfied:
        Whether the combination satisfies joint k-anonymity.  The greedy
        fallback can end at the maximal frontier without reaching it, in which
        case the caller decides whether to fail (the default of the binning
        agent) or accept the best effort.
    used_fallback:
        ``True`` when the greedy search replaced exact enumeration.
    candidates_examined:
        Number of candidate combinations whose joint bins were computed.
    """

    generalization: MultiColumnGeneralization
    satisfied: bool
    used_fallback: bool
    candidates_examined: int


def _exact_search(
    index: ColumnIndex,
    per_column_candidates: Mapping[str, list[Generalization]],
    k: int,
) -> MultiBinningOutcome:
    """The paper's ``EnumGen`` + ``Selection``: enumerate, filter, pick the best."""
    columns = list(per_column_candidates)
    best: MultiColumnGeneralization | None = None
    best_loss = float("inf")
    examined = 0
    for combination in product(*(per_column_candidates[column] for column in columns)):
        candidate = MultiColumnGeneralization(dict(zip(columns, combination)))
        examined += 1
        if not index.satisfies_joint(candidate, k):
            continue
        loss = candidate.total_specificity_loss()
        if loss < best_loss:
            best, best_loss = candidate, loss
    if best is None:
        # Even the coarsest combination (the maximal frontiers) fails.
        coarsest = MultiColumnGeneralization(
            {column: per_column_candidates[column][-1] for column in columns}
        )
        return MultiBinningOutcome(coarsest, satisfied=False, used_fallback=False, candidates_examined=examined)
    return MultiBinningOutcome(best, satisfied=True, used_fallback=False, candidates_examined=examined)


def _coarsening_candidates(
    tree: DomainHierarchyTree,
    cut: Sequence[DHTNode],
    maximal_nodes: Sequence[DHTNode],
) -> list[tuple[DHTNode, list[DHTNode]]]:
    """Ways to coarsen *cut* by one merge step, staying under the maximal frontier.

    Each candidate is ``(parent, nodes_replaced)``: every cut node under
    *parent* is replaced by *parent* itself.  Only parents that are descendants
    (or members) of the maximal frontier are allowed.
    """
    cut_set = set(cut)
    maximal_set = set(maximal_nodes)
    parents: list[DHTNode] = []
    seen: set[DHTNode] = set()
    for node in cut:
        parent = node.parent
        if parent is None or parent in seen:
            continue
        seen.add(parent)
        # The parent must stay within the allowable region: it must be a
        # maximal node itself or lie strictly below one.
        if parent not in maximal_set and not any(
            ancestor in maximal_set for ancestor in parent.ancestors()
        ):
            continue
        parents.append(parent)
    candidates: list[tuple[DHTNode, list[DHTNode]]] = []
    for parent in parents:
        replaced = [node for node in cut if parent.is_ancestor_of(node)]
        # Replacing is only a valid cut move when every leaf under the parent
        # is currently covered by nodes below the parent (no partial overlap
        # can happen for valid cuts, so this is just a completeness check).
        covered_leaves = {leaf for node in replaced for leaf in node.leaves()}
        if covered_leaves == set(parent.leaves()):
            candidates.append((parent, replaced))
    return candidates


def _greedy_search(
    index: ColumnIndex,
    trees: Mapping[str, DomainHierarchyTree],
    minimal_nodes: Mapping[str, Sequence[DHTNode]],
    maximal_nodes: Mapping[str, Sequence[DHTNode]],
    k: int,
) -> MultiBinningOutcome:
    """Greedy coarsening from the minimal frontier toward the maximal frontier."""
    columns = list(trees)
    current = MultiColumnGeneralization(
        {column: Generalization(trees[column], minimal_nodes[column]) for column in columns}
    )
    examined = 0
    while True:
        examined += 1
        violating_rows = index.joint_violations(current, k)
        if not violating_rows:
            return MultiBinningOutcome(current, satisfied=True, used_fallback=True, candidates_examined=examined)

        # Score every single-merge coarsening by the number of violating rows
        # it touches; apply the best one.  Touching more violating rows means
        # the merge pools more undersized bins together.
        best_score = -1
        best_leaf_span = 0
        best_column: str | None = None
        best_parent: DHTNode | None = None
        best_replaced: list[DHTNode] | None = None
        for column in columns:
            tree = trees[column]
            cut = current[column].nodes
            row_leaves = index.row_leaves(column)
            violating_leaf_counts: dict[DHTNode, int] = {}
            for row_index in violating_rows:
                leaf = row_leaves[row_index]
                violating_leaf_counts[leaf] = violating_leaf_counts.get(leaf, 0) + 1
            for parent, replaced in _coarsening_candidates(tree, cut, maximal_nodes[column]):
                score = sum(
                    count
                    for leaf, count in violating_leaf_counts.items()
                    if parent.is_ancestor_of(leaf, include_self=True)
                )
                leaf_span = len(parent.leaves())
                # Prefer merges that pool many violating rows; break ties by
                # the smaller subtree merged (less specificity loss).
                if score > best_score or (score == best_score and best_parent is not None and leaf_span < best_leaf_span):
                    best_score = score
                    best_leaf_span = leaf_span
                    best_column = column
                    best_parent = parent
                    best_replaced = list(replaced)
        if best_column is None or best_parent is None or best_score <= 0:
            # No further coarsening possible within the maximal frontiers.
            return MultiBinningOutcome(current, satisfied=False, used_fallback=True, candidates_examined=examined)
        new_cut = [node for node in current[best_column].nodes if node not in set(best_replaced or [])]
        new_cut.append(best_parent)
        current = current.with_replaced(best_column, Generalization(trees[best_column], new_cut))


def gen_ultimate_nodes(
    index: ColumnIndex,
    trees: Mapping[str, DomainHierarchyTree],
    minimal_nodes: Mapping[str, Sequence[DHTNode]],
    maximal_nodes: Mapping[str, Sequence[DHTNode]],
    k: int,
    *,
    enumeration_budget: int = DEFAULT_ENUMERATION_BUDGET,
) -> MultiBinningOutcome:
    """``GenUltiNd`` of Figure 7: choose the ultimate generalization nodes.

    Runs the exact enumeration whenever the total combination count fits
    within *enumeration_budget* and the greedy coarsening otherwise.

    Raises
    ------
    NotBinnableError
        If even the maximal frontiers do not satisfy joint k-anonymity (the
        data are not binnable for this specification).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    columns = list(trees)
    for column in columns:
        if column not in minimal_nodes or column not in maximal_nodes:
            raise KeyError(f"missing frontier for column {column!r}")

    total = count_allowable_combinations(trees, minimal_nodes, maximal_nodes)
    if total <= enumeration_budget:
        per_column = {
            column: allowable_generalizations(
                trees[column], list(minimal_nodes[column]), list(maximal_nodes[column])
            )
            for column in columns
        }
        # Order candidates from finest to coarsest so the "coarsest" fallback
        # inside the exact search is well defined.
        for column in columns:
            per_column[column].sort(key=lambda gen: -len(gen.nodes))
        outcome = _exact_search(index, per_column, k)
    else:
        outcome = _greedy_search(index, trees, minimal_nodes, maximal_nodes, k)

    if not outcome.satisfied:
        coarsest = MultiColumnGeneralization(
            {column: Generalization(trees[column], maximal_nodes[column]) for column in columns}
        )
        if not index.satisfies_joint(coarsest, k):
            raise NotBinnableError(
                f"the combination of columns {columns} cannot satisfy k={k} even at the maximal "
                "generalization nodes",
                k=k,
            )
        # The frontier itself works even though the search did not find a
        # finer solution (can happen for the greedy fallback); fall back to it.
        return MultiBinningOutcome(
            coarsest,
            satisfied=True,
            used_fallback=outcome.used_fallback,
            candidates_examined=outcome.candidates_examined,
        )
    return outcome
