"""Exceptions raised by the binning algorithms."""

from __future__ import annotations

__all__ = ["BinningError", "NotBinnableError"]


class BinningError(Exception):
    """Base class for binning failures."""


class NotBinnableError(BinningError):
    """The data cannot satisfy the k-anonymity specification.

    Raised when even the coarsest generalization permitted by the usage
    metrics (the maximal generalization nodes) leaves some bin smaller than
    *k*.  The paper assumes "the data are binnable" (Section 4.1); this error
    is how the implementation reports that the assumption does not hold for a
    given table, k and usage metrics.
    """

    def __init__(self, message: str, *, column: str | None = None, k: int | None = None) -> None:
        super().__init__(message)
        self.column = column
        self.k = k
