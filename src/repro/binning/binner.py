"""The complete binning agent (Figure 8 of the paper).

``Binning(tbl, ultigen)`` does two things to every tuple:

1. the identifying columns are replaced one-to-one by their encryption
   ``E(value)`` — the data stay traceable to the holder (who owns the key)
   and give the watermarking algorithm a stable, secret selection handle, and
2. the quasi-identifying columns are replaced by the value of their ultimate
   generalization node.

The :class:`BinningAgent` wires together the usage metrics (maximal
generalization nodes), mono-attribute binning (minimal generalization nodes),
multi-attribute binning (ultimate generalization nodes) and the final table
rewriting, and returns a :class:`BinningResult` carrying the
:class:`BinnedTable` plus the information-loss bookkeeping the experiments
report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import itemgetter
from typing import Iterable, Mapping, Sequence

from repro.binning.generalization import Generalization, MultiColumnGeneralization
from repro.binning.kanonymity import ColumnIndex, EnforcementMode, KAnonymitySpec
from repro.binning.mono import gen_min_nodes
from repro.binning.multi import DEFAULT_ENUMERATION_BUDGET, gen_ultimate_nodes
from repro.crypto.cipher import FieldEncryptor
from repro.dht.node import DHTNode
from repro.dht.tree import DomainHierarchyTree
from repro.metrics.information_loss import table_information_loss
from repro.metrics.usage_metrics import UsageMetrics
from repro.relational.columnar import ColumnarTable, TypedColumn
from repro.relational.table import Row, Table
from repro.telemetry.trace import span as _stage_span

__all__ = [
    "BinnedTable",
    "BinningResult",
    "BinningAgent",
    "BinPlan",
    "rewrite_rows",
    "rewrite_table",
]


def rewrite_rows(
    rows: Iterable[Row],
    schema,
    encryptor: FieldEncryptor,
    ultimate: MultiColumnGeneralization,
):
    """``Binning(tbl, ultigen)`` row by row: encrypt + generalise, streamed.

    The single source of the per-row rewrite, shared by
    :meth:`BinningAgent.rewrite_rows` (in-process, the agent's own encryptor)
    and the protect pool workers (:func:`repro.service.runners.protect_raw_chunk`,
    encryptor rebuilt from shipped key material) — which is what keeps a
    runner-parallel protect byte-identical to the serial path by
    construction, not by parallel maintenance of two loops.  Yields new row
    dicts; the input rows are never mutated.
    """
    identifying = [column.name for column in schema.identifying_columns]
    for row in rows:
        new_row = dict(row)
        for column in identifying:
            new_row[column] = encryptor.encrypt(row[column])
        for column, generalization in ultimate.items():
            new_row[column] = generalization.generalize(row[column])
        yield new_row


_MISSING = object()


def rewrite_table(
    table: Table,
    schema,
    encryptor: FieldEncryptor,
    ultimate: MultiColumnGeneralization,
) -> Table:
    """``Binning(tbl, ultigen)`` over a whole table, column at a time.

    The bulk counterpart of :func:`rewrite_rows`: on a columnar table each
    identifying column goes through :meth:`FieldEncryptor.encrypt_many` in
    one sweep, each generalised column is rewritten with a per-distinct-value
    memo (a bin by construction maps many raw values to one node value), and
    untouched columns are copied wholesale.  On a row-store table it falls
    back to :func:`rewrite_rows`, so both substrates share the same per-cell
    arithmetic and stay bit-identical — the columnar equivalence suite
    asserts the resulting tables compare equal.
    """
    with _stage_span("protect.encrypt_generalize", rows=len(table)):
        return _rewrite_table(table, schema, encryptor, ultimate)


def _rewrite_table(
    table: Table,
    schema,
    encryptor: FieldEncryptor,
    ultimate: MultiColumnGeneralization,
) -> Table:
    names = schema.column_names
    source = table.column_sequences(names)
    if source is None:
        rewritten = Table(schema)
        for new_row in rewrite_rows(table, schema, encryptor, ultimate):
            rewritten.insert(new_row)
        return rewritten
    identifying = {column.name for column in schema.identifying_columns}
    columns: dict[str, object] = {}
    for name in names:
        values = source[name]
        if name in identifying:
            columns[name] = encryptor.encrypt_many(values)
        elif name in ultimate:
            generalize = ultimate[name].generalize
            memo: dict[object, object] = {}
            get = memo.get
            generalized: list[object] = []
            append = generalized.append
            for value in values:
                try:
                    result = get(value, _MISSING)
                except TypeError:  # unhashable cell: generalize without caching
                    append(generalize(value))
                    continue
                if result is _MISSING:
                    result = memo[value] = generalize(value)
                append(result)
            columns[name] = generalized
        else:
            columns[name] = TypedColumn.from_values(list(values))
    return ColumnarTable.from_columns(schema, columns)


@dataclass
class BinnedTable:
    """A binned table plus the metadata the watermarking agent needs.

    The watermarking algorithm (Figure 9) takes, besides the table itself, the
    domain hierarchy trees, the maximal generalization nodes and the ultimate
    generalization nodes; they are all carried here so the two agents can be
    composed without re-deriving anything.
    """

    table: Table
    trees: dict[str, DomainHierarchyTree]
    identifying_columns: tuple[str, ...]
    quasi_columns: tuple[str, ...]
    ultimate_nodes: dict[str, tuple[str, ...]]
    maximal_nodes: dict[str, tuple[str, ...]]
    minimal_nodes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    k: int = 1

    # ------------------------------------------------------------ conveniences
    def tree(self, column: str) -> DomainHierarchyTree:
        try:
            return self.trees[column]
        except KeyError:
            raise KeyError(f"no domain hierarchy tree for column {column!r}") from None

    def ultimate_generalization(self, column: str) -> Generalization:
        """The column's ultimate generalization as a :class:`Generalization`."""
        return Generalization.from_node_names(self.tree(column), self.ultimate_nodes[column])

    def maximal_generalization(self, column: str) -> Generalization:
        return Generalization.from_node_names(self.tree(column), self.maximal_nodes[column])

    def ultimate_generalizations(self) -> MultiColumnGeneralization:
        return MultiColumnGeneralization(
            {column: self.ultimate_generalization(column) for column in self.quasi_columns}
        )

    def ultimate_node_objects(self, column: str) -> list[DHTNode]:
        tree = self.tree(column)
        return [tree.node(name) for name in self.ultimate_nodes[column]]

    def maximal_node_objects(self, column: str) -> list[DHTNode]:
        tree = self.tree(column)
        return [tree.node(name) for name in self.maximal_nodes[column]]

    def ident_value(self, row: Row) -> object:
        """The (encrypted) identifying value of *row* used by Equation (5).

        With a single identifying column the value itself is returned, with
        several a tuple of them.
        """
        values = tuple(row[column] for column in self.identifying_columns)
        return values[0] if len(values) == 1 else values

    def ident_values(self) -> list[object]:
        """:meth:`ident_value` for every row, in one bulk projection.

        The batched embed/detect sweeps feed this list straight into
        :meth:`repro.crypto.batch.WatermarkHashEngine.tuple_coordinates`.
        """
        if not self.identifying_columns:
            return [self.ident_value(row) for row in self.table]
        columns = self.table.column_sequences(self.identifying_columns)
        if columns is not None:
            if len(self.identifying_columns) == 1:
                return list(columns[self.identifying_columns[0]])
            return list(zip(*(columns[name] for name in self.identifying_columns)))
        getter = itemgetter(*self.identifying_columns)
        return list(map(getter, self.table.rows))

    # ------------------------------------------------------------------- bins
    def bin_sizes(self, column: str) -> dict[object, int]:
        """Per-attribute bin sizes (one bin per distinct generalized value)."""
        return self.table.value_counts(column)

    def joint_bin_sizes(self) -> dict[tuple[object, ...], int]:
        """Bin sizes over the combination of all binned columns."""
        return self.table.group_by_count(list(self.quasi_columns))

    def lazy_copy(self) -> "BinnedTable":
        """Copy-on-write copy: row dicts are shared until actually mutated.

        The attack simulators and the embedder mutate only a fraction of the
        rows (one in ``η`` for embedding), so sharing the rest keeps the
        pipelines O(rows touched) instead of O(table size).  Mutations must go
        through :meth:`repro.relational.table.Table.mutable_row`.
        """
        return BinnedTable(
            table=self.table.lazy_copy(),
            trees=self.trees,
            identifying_columns=self.identifying_columns,
            quasi_columns=self.quasi_columns,
            ultimate_nodes=dict(self.ultimate_nodes),
            maximal_nodes=dict(self.maximal_nodes),
            minimal_nodes=dict(self.minimal_nodes),
            k=self.k,
        )

    def slice(self, start: int, stop: int) -> "BinnedTable":
        """A shard over rows ``[start, stop)`` sharing row dicts and metadata.

        The row shards the shard-parallel executor distributes: the underlying
        :meth:`Table.slice_view` shares the row dicts copy-on-write, and the
        frontier metadata (trees, ultimate/maximal nodes) is identical by
        construction, so a detect over the shard reads exactly the votes the
        serial detect reads for those rows.
        """
        return BinnedTable(
            table=self.table.slice_view(start, stop),
            trees=self.trees,
            identifying_columns=self.identifying_columns,
            quasi_columns=self.quasi_columns,
            ultimate_nodes=dict(self.ultimate_nodes),
            maximal_nodes=dict(self.maximal_nodes),
            minimal_nodes=dict(self.minimal_nodes),
            k=self.k,
        )

    def copy(self) -> "BinnedTable":
        """Deep copy (attacks mutate the table; the metadata is shared)."""
        return BinnedTable(
            table=self.table.copy(),
            trees=self.trees,
            identifying_columns=self.identifying_columns,
            quasi_columns=self.quasi_columns,
            ultimate_nodes=dict(self.ultimate_nodes),
            maximal_nodes=dict(self.maximal_nodes),
            minimal_nodes=dict(self.minimal_nodes),
            k=self.k,
        )


@dataclass(frozen=True)
class BinPlan:
    """The generalizations binning will apply, derived from per-leaf counts.

    A plan separates the *global* half of binning (frontier derivation, which
    needs only per-column leaf counts) from the *per-row* half (encrypt +
    generalise, which is embarrassingly streamable).  The service's streaming
    ingest computes the counts in a first constant-memory pass, builds one
    plan, then rewrites and embeds chunk by chunk in a second pass.
    """

    columns: tuple[str, ...]
    ultimate: MultiColumnGeneralization
    maximal: dict[str, tuple[str, ...]]
    minimal: dict[str, tuple[str, ...]]
    k: int

    def metadata_for(self, trees: Mapping[str, DomainHierarchyTree]) -> dict[str, object]:
        """The :class:`BinnedTable` metadata fields this plan determines."""
        return {
            "trees": {column: trees[column] for column in self.columns},
            "quasi_columns": self.columns,
            "ultimate_nodes": {column: self.ultimate[column].node_names for column in self.columns},
            "maximal_nodes": dict(self.maximal),
            "minimal_nodes": dict(self.minimal),
            "k": self.k,
        }


@dataclass(frozen=True)
class BinningResult:
    """Output of :meth:`BinningAgent.bin`."""

    binned: BinnedTable
    information_losses: dict[str, float]
    normalized_information_loss: float
    mono_information_losses: dict[str, float]
    mono_normalized_information_loss: float
    satisfied: bool
    used_fallback: bool
    candidates_examined: int


class BinningAgent:
    """Drives binning end to end (the left half of Figure 2)."""

    def __init__(
        self,
        trees: Mapping[str, DomainHierarchyTree],
        usage_metrics: UsageMetrics,
        k_spec: KAnonymitySpec,
        encryption_key: bytes | str,
        *,
        enumeration_budget: int = DEFAULT_ENUMERATION_BUDGET,
    ) -> None:
        self._trees = dict(trees)
        self._usage_metrics = usage_metrics
        self._k_spec = k_spec
        self._encryptor = FieldEncryptor(encryption_key)
        self._enumeration_budget = enumeration_budget

    @property
    def k_spec(self) -> KAnonymitySpec:
        return self._k_spec

    @property
    def usage_metrics(self) -> UsageMetrics:
        return self._usage_metrics

    # -------------------------------------------------------------------- API
    def bin(self, table: Table) -> BinningResult:
        """Bin *table* per the k-anonymity specification and usage metrics."""
        columns = self._k_spec.resolve_columns(table)
        missing = [column for column in columns if column not in self._trees]
        if missing:
            raise KeyError(f"no domain hierarchy tree for columns {missing}")
        trees = {column: self._trees[column] for column in columns}
        index = ColumnIndex(table, trees, columns)
        k = self._k_spec.effective_k

        maximal = {
            column: self._usage_metrics.maximal_nodes(column, trees[column], index.leaf_counts(column))
            for column in columns
        }
        minimal = {
            column: gen_min_nodes(trees[column], maximal[column], index.leaf_counts(column), k)
            for column in columns
        }
        mono_generalization = MultiColumnGeneralization(
            {column: Generalization(trees[column], minimal[column]) for column in columns}
        )

        if self._k_spec.mode is EnforcementMode.MONO:
            ultimate = mono_generalization
            satisfied = True
            used_fallback = False
            candidates = 0
        else:
            outcome = gen_ultimate_nodes(
                index,
                trees,
                minimal,
                maximal,
                k,
                enumeration_budget=self._enumeration_budget,
            )
            ultimate = outcome.generalization
            satisfied = outcome.satisfied
            used_fallback = outcome.used_fallback
            candidates = outcome.candidates_examined

        counts_by_column = index.counts_by_column()
        losses = ultimate.information_losses(counts_by_column)
        mono_losses = mono_generalization.information_losses(counts_by_column)

        binned_table = self._rewrite(table, ultimate)
        binned = BinnedTable(
            table=binned_table,
            trees=trees,
            identifying_columns=tuple(column.name for column in table.schema.identifying_columns),
            quasi_columns=tuple(columns),
            ultimate_nodes={column: ultimate[column].node_names for column in columns},
            maximal_nodes={column: tuple(node.name for node in maximal[column]) for column in columns},
            minimal_nodes={column: tuple(node.name for node in minimal[column]) for column in columns},
            k=self._k_spec.k,
        )
        return BinningResult(
            binned=binned,
            information_losses=losses,
            normalized_information_loss=table_information_loss(losses),
            mono_information_losses=mono_losses,
            mono_normalized_information_loss=table_information_loss(mono_losses),
            satisfied=satisfied,
            used_fallback=used_fallback,
            candidates_examined=candidates,
        )

    # -------------------------------------------------------- streaming halves
    def plan_from_counts(
        self,
        leaf_counts: Mapping[str, Mapping[DHTNode, int]],
        columns: Sequence[str] | None = None,
    ) -> BinPlan:
        """Derive the binning plan from per-column leaf counts alone.

        This is the global half of :meth:`bin` for mono-attribute enforcement:
        the maximal frontier comes from the usage metrics, the minimal (and,
        in MONO mode, ultimate) frontier from ``GenMinNd`` — both consume only
        the per-leaf row counts, which a streaming ingest can accumulate
        without holding the table.  Joint enforcement needs the full row-level
        :class:`~repro.binning.kanonymity.ColumnIndex` and is rejected here.
        """
        if self._k_spec.mode is not EnforcementMode.MONO:
            raise ValueError("plan_from_counts supports mono-attribute enforcement only")
        resolved = tuple(columns) if columns is not None else tuple(leaf_counts)
        missing = [column for column in resolved if column not in self._trees]
        if missing:
            raise KeyError(f"no domain hierarchy tree for columns {missing}")
        k = self._k_spec.effective_k
        maximal: dict[str, list[DHTNode]] = {}
        minimal: dict[str, list[DHTNode]] = {}
        for column in resolved:
            tree = self._trees[column]
            counts = dict(leaf_counts[column])
            maximal[column] = self._usage_metrics.maximal_nodes(column, tree, counts)
            minimal[column] = gen_min_nodes(tree, maximal[column], counts, k)
        ultimate = MultiColumnGeneralization(
            {column: Generalization(self._trees[column], minimal[column]) for column in resolved}
        )
        return BinPlan(
            columns=resolved,
            ultimate=ultimate,
            maximal={column: tuple(node.name for node in maximal[column]) for column in resolved},
            minimal={column: tuple(node.name for node in minimal[column]) for column in resolved},
            k=self._k_spec.k,
        )

    def rewrite_rows(self, rows: Iterable[Row], schema, ultimate: MultiColumnGeneralization):
        """``Binning(tbl, ultigen)`` row by row: encrypt + generalise, streamed.

        Yields new row dicts; the input rows are never mutated.  This is the
        per-row half of :meth:`bin`, factored out so chunked ingest can apply
        it without materialising the whole table.
        """
        yield from rewrite_rows(rows, schema, self._encryptor, ultimate)

    # --------------------------------------------------------------- internals
    def _rewrite(self, table: Table, ultimate: MultiColumnGeneralization) -> Table:
        """``Binning(tbl, ultigen)`` of Figure 8: encrypt + generalise each tuple.

        Dispatches on the table substrate via :func:`rewrite_table`: columnar
        input is rewritten column by column (batched encryption, memoised
        generalisation), row-store input keeps the seed's streamed row loop.
        """
        return rewrite_table(table, table.schema, self._encryptor, ultimate)

    def decrypt_identifier(self, token: str) -> str:
        """Decrypt an identifying-column token (owner-side, for dispute resolution)."""
        return self._encryptor.decrypt(token)
