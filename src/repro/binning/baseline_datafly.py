"""Upward full-domain generalization baseline (Datafly / Samarati–Sweeney style).

The paper's related work ([26], [28], [29]) reaches k-anonymity by binning
*upward*: start from the raw values and repeatedly generalise a whole column
one level up its hierarchy until every bin holds at least ``k`` records.  The
classic Datafly heuristic picks, at every step, the column with the most
distinct values.

This baseline exists for the ablation benchmark comparing the paper's
downward binning (enabled by off-line usage metrics) against the traditional
upward approach: both reach k-anonymity, but they differ in the number of
candidate generalizations examined and in the information loss of the cut they
stop at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.binning.errors import NotBinnableError
from repro.binning.generalization import Generalization, MultiColumnGeneralization
from repro.binning.kanonymity import ColumnIndex, EnforcementMode, KAnonymitySpec
from repro.dht.tree import DomainHierarchyTree
from repro.metrics.information_loss import table_information_loss
from repro.metrics.usage_metrics import frontier_at_depth
from repro.relational.table import Table

__all__ = ["DataflyOutcome", "DataflyBinner"]


@dataclass(frozen=True)
class DataflyOutcome:
    """Result of the upward baseline."""

    generalization: MultiColumnGeneralization
    information_losses: dict[str, float]
    normalized_information_loss: float
    steps: int
    satisfied: bool


class DataflyBinner:
    """Upward, full-domain generalization with the most-distinct-values heuristic."""

    def __init__(self, trees: Mapping[str, DomainHierarchyTree], k_spec: KAnonymitySpec) -> None:
        self._trees = dict(trees)
        self._k_spec = k_spec

    def _cut_at_depth(self, column: str, depth: int) -> Generalization:
        tree = self._trees[column]
        return Generalization(tree, frontier_at_depth(tree, depth))

    def bin(self, table: Table) -> DataflyOutcome:
        """Generalise *table*'s quasi-identifiers upward until k-anonymous.

        Raises :class:`NotBinnableError` when even the all-root generalization
        (every column fully suppressed to its root value) fails — which can
        only happen when the table itself has fewer than ``k`` rows.
        """
        columns = self._k_spec.resolve_columns(table)
        missing = [column for column in columns if column not in self._trees]
        if missing:
            raise KeyError(f"no domain hierarchy tree for columns {missing}")
        trees = {column: self._trees[column] for column in columns}
        index = ColumnIndex(table, trees, columns)
        k = self._k_spec.effective_k

        depths = {column: trees[column].height for column in columns}
        current = MultiColumnGeneralization(
            {column: self._cut_at_depth(column, depths[column]) for column in columns}
        )
        steps = 0
        while not self._satisfied(index, current, k):
            # Datafly heuristic: generalise the column with the most distinct
            # (generalized) values one level up.
            candidates = [column for column in columns if depths[column] > 0]
            if not candidates:
                if len(table) < k:
                    raise NotBinnableError(
                        f"table has only {len(table)} rows, cannot satisfy k={k}", k=k
                    )
                break
            distinct = {
                column: len(index.mono_bin_sizes(column, current[column])) for column in candidates
            }
            chosen = max(candidates, key=lambda column: (distinct[column], column))
            depths[chosen] -= 1
            current = current.with_replaced(chosen, self._cut_at_depth(chosen, depths[chosen]))
            steps += 1

        losses = current.information_losses(index.counts_by_column())
        return DataflyOutcome(
            generalization=current,
            information_losses=losses,
            normalized_information_loss=table_information_loss(losses),
            steps=steps,
            satisfied=self._satisfied(index, current, k),
        )

    def _satisfied(self, index: ColumnIndex, generalization: MultiColumnGeneralization, k: int) -> bool:
        if self._k_spec.mode is EnforcementMode.MONO:
            return all(
                index.satisfies_mono(column, generalization[column], k) for column in generalization
            )
        return index.satisfies_joint(generalization, k)

    def apply(self, table: Table, generalization: MultiColumnGeneralization) -> Table:
        """Rewrite *table*'s quasi-identifiers under *generalization* (no encryption)."""
        rewritten = Table(table.schema)
        for row in table:
            new_row = dict(row)
            for column, gen in generalization.items():
                new_row[column] = gen.generalize(row[column])
            rewritten.insert(new_row)
        return rewritten
