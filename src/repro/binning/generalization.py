"""Valid generalizations and their application to values, rows and tables.

A *generalization* of a column is a set of nodes of its domain hierarchy tree
such that the path from every leaf to the root crosses exactly one of them
(Section 4 of the paper).  Applying it replaces every raw value by the value
of the node covering its leaf.  :class:`Generalization` wraps a single
column's cut, :class:`MultiColumnGeneralization` bundles one generalization
per quasi-identifying column — the object the binning agent ultimately applies
to the table (the ``ultigen`` of Figure 8).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.dht.node import DHTNode
from repro.dht.tree import DomainHierarchyTree
from repro.metrics.information_loss import column_information_loss, specificity_loss

__all__ = ["Generalization", "MultiColumnGeneralization"]


class Generalization:
    """A valid generalization (cut) of one column's domain hierarchy tree."""

    def __init__(self, tree: DomainHierarchyTree, nodes: Iterable[DHTNode]) -> None:
        node_list = sorted(set(nodes), key=lambda node: node.sort_key)
        if not tree.is_valid_cut(node_list):
            raise ValueError(
                f"nodes {[node.name for node in node_list]} are not a valid generalization "
                f"of attribute {tree.attribute!r}"
            )
        self._tree = tree
        self._nodes = tuple(node_list)
        self._leaf_to_node = tree.cut_mapping(self._nodes)

    # ------------------------------------------------------------ constructors
    @classmethod
    def identity(cls, tree: DomainHierarchyTree) -> "Generalization":
        """The finest generalization: every leaf kept as-is."""
        return cls(tree, tree.leaf_cut())

    @classmethod
    def to_root(cls, tree: DomainHierarchyTree) -> "Generalization":
        """The coarsest generalization: everything replaced by the root value."""
        return cls(tree, tree.root_cut())

    @classmethod
    def from_node_names(cls, tree: DomainHierarchyTree, names: Iterable[str]) -> "Generalization":
        """Build from node names (useful for configuration files and tests)."""
        return cls(tree, [tree.node(name) for name in names])

    # ------------------------------------------------------------- properties
    @property
    def tree(self) -> DomainHierarchyTree:
        return self._tree

    @property
    def attribute(self) -> str:
        return self._tree.attribute

    @property
    def nodes(self) -> tuple[DHTNode, ...]:
        """The generalization nodes, in stable sorted order."""
        return self._nodes

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(node.name for node in self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Generalization):
            return NotImplemented
        return self._tree is other._tree and self._nodes == other._nodes

    def __hash__(self) -> int:
        return hash((id(self._tree), self._nodes))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Generalization({self.attribute!r}, {len(self._nodes)} nodes)"

    # ------------------------------------------------------------ application
    def node_for_leaf(self, leaf: DHTNode) -> DHTNode:
        """The generalization node covering *leaf*."""
        try:
            return self._leaf_to_node[leaf]
        except KeyError:
            raise ValueError(f"{leaf.name!r} is not a leaf of attribute {self.attribute!r}") from None

    def node_for_raw(self, raw_value: object) -> DHTNode:
        """The generalization node covering a raw column value."""
        return self.node_for_leaf(self._tree.leaf_for_raw(raw_value))

    def generalize(self, raw_value: object) -> object:
        """Replace a raw value by its generalized value (``Bin`` of Figure 8)."""
        return self.node_for_raw(raw_value).value

    # ----------------------------------------------------------------- orders
    def is_refinement_of(self, other: "Generalization") -> bool:
        """Whether this cut lies at or below *other* (is at least as specific)."""
        if self._tree is not other._tree:
            raise ValueError("generalizations describe different trees")
        other_set = set(other.nodes)
        return all(
            any(step in other_set for step in node.ancestors(include_self=True)) for node in self._nodes
        )

    # ----------------------------------------------------------------- metrics
    def specificity_loss(self) -> float:
        """Specificity loss ``(N - Ng) / N`` of Section 4.2.2."""
        return specificity_loss(self._tree, self._nodes)

    def information_loss(self, counts: Mapping[DHTNode, int]) -> float:
        """Information loss per Equation (1) or (2), given per-leaf counts."""
        return column_information_loss(self._tree, self._nodes, counts)


class MultiColumnGeneralization:
    """One generalization per quasi-identifying column (the table-level cut)."""

    def __init__(self, generalizations: Mapping[str, Generalization]) -> None:
        if not generalizations:
            raise ValueError("at least one column generalization is required")
        for column, generalization in generalizations.items():
            if generalization.attribute != column:
                raise ValueError(
                    f"generalization registered under {column!r} describes attribute "
                    f"{generalization.attribute!r}"
                )
        self._generalizations = dict(generalizations)

    # ------------------------------------------------------------- properties
    @property
    def columns(self) -> list[str]:
        return list(self._generalizations)

    def __getitem__(self, column: str) -> Generalization:
        try:
            return self._generalizations[column]
        except KeyError:
            raise KeyError(f"no generalization for column {column!r}") from None

    def __contains__(self, column: object) -> bool:
        return column in self._generalizations

    def __iter__(self) -> Iterator[str]:
        return iter(self._generalizations)

    def items(self):
        return self._generalizations.items()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MultiColumnGeneralization):
            return NotImplemented
        return self._generalizations == other._generalizations

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        sizes = {column: len(gen) for column, gen in self._generalizations.items()}
        return f"MultiColumnGeneralization({sizes})"

    # ------------------------------------------------------------ application
    def generalize_row(self, row: Mapping[str, object]) -> dict[str, object]:
        """Generalized values of the covered columns for one row."""
        return {column: gen.generalize(row[column]) for column, gen in self._generalizations.items()}

    def node_names(self) -> dict[str, tuple[str, ...]]:
        """Node names per column (serialisable description of the cut)."""
        return {column: gen.node_names for column, gen in self._generalizations.items()}

    # ----------------------------------------------------------------- metrics
    def specificity_losses(self) -> dict[str, float]:
        return {column: gen.specificity_loss() for column, gen in self._generalizations.items()}

    def total_specificity_loss(self) -> float:
        """Sum of per-column specificity losses (the multi-attribute ranking key)."""
        return sum(self.specificity_losses().values())

    def information_losses(self, counts_by_column: Mapping[str, Mapping[DHTNode, int]]) -> dict[str, float]:
        return {
            column: gen.information_loss(counts_by_column[column])
            for column, gen in self._generalizations.items()
        }

    # -------------------------------------------------------------- refinement
    def with_replaced(self, column: str, generalization: Generalization) -> "MultiColumnGeneralization":
        """A copy where *column*'s generalization is replaced."""
        updated = dict(self._generalizations)
        if column not in updated:
            raise KeyError(f"no generalization for column {column!r}")
        updated[column] = generalization
        return MultiColumnGeneralization(updated)

    @classmethod
    def identity(cls, trees: Mapping[str, DomainHierarchyTree], columns: Sequence[str]) -> "MultiColumnGeneralization":
        """The finest multi-column generalization over the given columns."""
        return cls({column: Generalization.identity(trees[column]) for column in columns})
