"""Mono-attribute downward binning (Figure 5 of the paper).

For a single attribute, binning starts from the maximal generalization nodes
and walks *down* the domain hierarchy tree, looking for the lowest valid
generalization whose every node still covers at least ``k`` records — the
*minimal generalization nodes*.  The downward direction is possible because
the usage metrics were enforced off-line (the maximal frontier is known in
advance) and gives the efficiency advantage discussed in Section 4.2.1 over
approaches that bin upward from the leaves.

The rationale for a minimal node is the paper's simple one: a node is minimal
when it satisfies k-anonymity itself but at least one of its children does
not.  (The "more aggressive strategy" sketched in Section 4.2.1 would descend
into the satisfying children and merge the rest; that requires bins that are
not valid generalizations of the DHT, so it is intentionally not implemented —
see DESIGN.md.)
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.binning.errors import NotBinnableError
from repro.dht.node import DHTNode
from repro.dht.tree import DomainHierarchyTree

__all__ = ["num_tuples_under", "gen_min_nodes"]


def num_tuples_under(node: DHTNode, counts: Mapping[DHTNode, int]) -> int:
    """``NumTuple`` of Figure 5: rows whose value falls under *node*'s subtree."""
    return sum(counts.get(leaf, 0) for leaf in node.leaves())


def _sub_gmn(
    tree: DomainHierarchyTree,
    node: DHTNode,
    counts: Mapping[DHTNode, int],
    k: int,
) -> list[DHTNode] | None:
    """``SubGMN`` of Figure 5.

    Returns the minimal generalization nodes of the subtree rooted at *node*,
    or ``None`` when the subtree covers fewer than ``k`` rows (the caller must
    then keep a higher node).
    """
    if num_tuples_under(node, counts) < k:
        return None
    # "forany node nd in Children(str.root): if NumTuple(SubTree(nd)) < k:
    #  return {str.root}" — if any child falls short, this node is minimal.
    children = tree.children(node)
    if not children:
        return [node]
    if any(num_tuples_under(child, counts) < k for child in children):
        return [node]
    result: list[DHTNode] = []
    for child in children:
        sub = _sub_gmn(tree, child, counts, k)
        # Every child satisfies k individually at this point, so the
        # recursion cannot come back empty.
        assert sub is not None
        result.extend(sub)
    return result


def gen_min_nodes(
    tree: DomainHierarchyTree,
    maximal_nodes: Sequence[DHTNode],
    counts: Mapping[DHTNode, int],
    k: int,
) -> list[DHTNode]:
    """``GenMinNd`` of Figure 5: the minimal generalization nodes of one column.

    Parameters
    ----------
    tree:
        The column's domain hierarchy tree.
    maximal_nodes:
        The maximal generalization nodes from the usage metrics; binning
        starts here and only ever descends, so the metrics are observed by
        construction.
    counts:
        Rows per leaf (``ColumnIndex.leaf_counts`` or
        :func:`repro.metrics.information_loss.leaf_counts`).
    k:
        The (effective) anonymity parameter.

    Raises
    ------
    NotBinnableError
        If some maximal generalization node covers fewer than ``k`` rows but
        more than zero — the data cannot meet the specification within the
        usage metrics.  Maximal nodes covering *no* rows are simply kept
        (empty bins are vacuously k-anonymous).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if not tree.is_valid_cut(maximal_nodes):
        raise ValueError(
            f"maximal generalization nodes are not a valid generalization of {tree.attribute!r}"
        )
    minimal: list[DHTNode] = []
    for node in maximal_nodes:
        covered = num_tuples_under(node, counts)
        if covered == 0:
            # No data below this part of the domain; keep the maximal node so
            # the result stays a valid generalization.
            minimal.append(node)
            continue
        sub = _sub_gmn(tree, node, counts, k)
        if sub is None:
            raise NotBinnableError(
                f"attribute {tree.attribute!r}: maximal generalization node {node.name!r} covers "
                f"{covered} < k={k} rows; the data cannot satisfy the specification within the "
                f"usage metrics",
                column=tree.attribute,
                k=k,
            )
        minimal.extend(sub)
    return sorted(minimal, key=lambda node: node.sort_key)
