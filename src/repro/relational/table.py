"""Row-store table used as the database substrate.

A :class:`Table` couples a :class:`~repro.relational.schema.TableSchema` with
an ordered list of rows.  Rows are plain ``dict`` objects keyed by column
name; the table validates them against the schema on insertion.  The class
offers the operations the protection framework and the attack simulators
need — nothing more, nothing less:

* insertion / deletion / in-place update,
* projection of one or several columns,
* group-by counting (bin sizes for the k-anonymity checks),
* deep copies (attacks operate on copies of the outsourced table),
* CSV round-trips for the examples.
"""

from __future__ import annotations

import csv
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.relational.schema import ColumnType, TableSchema

__all__ = ["Row", "Table"]

Row = dict[str, object]


class Table:
    """An ordered collection of rows conforming to a schema."""

    def __init__(self, schema: TableSchema, rows: Iterable[Mapping[str, object]] | None = None) -> None:
        self._schema = schema
        self._rows: list[Row] = []
        if rows is not None:
            for row in rows:
                self.insert(row)

    # ------------------------------------------------------------- properties
    @property
    def schema(self) -> TableSchema:
        return self._schema

    @property
    def rows(self) -> list[Row]:
        """The underlying row list (mutable; callers that need isolation copy)."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self._schema == other._schema and self._rows == other._rows

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Table(columns={self._schema.column_names}, rows={len(self._rows)})"

    # ------------------------------------------------------------ row editing
    def insert(self, row: Mapping[str, object]) -> None:
        """Validate *row* against the schema and append it."""
        as_dict = dict(row)
        self._schema.validate_row(as_dict)
        self._rows.append(as_dict)

    def insert_many(self, rows: Iterable[Mapping[str, object]]) -> None:
        for row in rows:
            self.insert(row)

    def delete_indices(self, indices: Iterable[int]) -> int:
        """Delete rows at the given positions; return the number deleted."""
        to_drop = set(indices)
        if any(i < 0 or i >= len(self._rows) for i in to_drop):
            raise IndexError("row index out of range")
        before = len(self._rows)
        self._rows = [row for i, row in enumerate(self._rows) if i not in to_drop]
        return before - len(self._rows)

    def delete_where(self, predicate: Callable[[Row], bool]) -> int:
        """Delete every row satisfying *predicate*; return the number deleted."""
        before = len(self._rows)
        self._rows = [row for row in self._rows if not predicate(row)]
        return before - len(self._rows)

    def update_where(self, predicate: Callable[[Row], bool], updater: Callable[[Row], None]) -> int:
        """Apply *updater* in place to every row satisfying *predicate*."""
        touched = 0
        for row in self._rows:
            if predicate(row):
                updater(row)
                touched += 1
        return touched

    # --------------------------------------------------------------- querying
    def column_values(self, name: str) -> list[object]:
        """Project a single column (raises ``KeyError`` for unknown columns)."""
        self._schema.column(name)
        return [row[name] for row in self._rows]

    def distinct_values(self, name: str) -> set[object]:
        return set(self.column_values(name))

    def select(self, predicate: Callable[[Row], bool]) -> "Table":
        """Return a new table containing the rows satisfying *predicate*."""
        return Table(self._schema, (dict(row) for row in self._rows if predicate(row)))

    def group_by_count(self, names: Sequence[str]) -> dict[tuple[object, ...], int]:
        """Count rows per combination of values of the given columns.

        This is the primitive behind every k-anonymity check: the bins of the
        paper are exactly the groups of this aggregation over the
        quasi-identifying columns.
        """
        for name in names:
            self._schema.column(name)
        counts: dict[tuple[object, ...], int] = {}
        for row in self._rows:
            key = tuple(row[name] for name in names)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def value_counts(self, name: str) -> dict[object, int]:
        """Count rows per value of a single column."""
        counts: dict[object, int] = {}
        for value in self.column_values(name):
            counts[value] = counts.get(value, 0) + 1
        return counts

    # ------------------------------------------------------------------ copies
    def copy(self) -> "Table":
        """Deep copy of rows (schema objects are immutable and shared)."""
        return Table(self._schema, (dict(row) for row in self._rows))

    def with_schema(self, schema: TableSchema) -> "Table":
        """Return a copy re-validated against a (compatible) new schema."""
        return Table(schema, (dict(row) for row in self._rows))

    # --------------------------------------------------------------------- IO
    def to_csv(self, path: str) -> None:
        """Write the table to *path* as CSV with a header row."""
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=self._schema.column_names)
            writer.writeheader()
            for row in self._rows:
                writer.writerow({name: row[name] for name in self._schema.column_names})

    @classmethod
    def from_csv(cls, path: str, schema: TableSchema) -> "Table":
        """Read a CSV written by :meth:`to_csv`, coercing numeric columns."""
        numeric_columns = {c.name for c in schema if c.ctype is ColumnType.NUMERIC}
        table = cls(schema)
        with open(path, newline="", encoding="utf-8") as handle:
            reader = csv.DictReader(handle)
            for raw in reader:
                row: Row = {}
                for name in schema.column_names:
                    value: object = raw[name]
                    if name in numeric_columns:
                        text = str(value)
                        value = float(text) if "." in text else int(text)
                    row[name] = value
                table.insert(row)
        return table
