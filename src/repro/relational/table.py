"""Row-store table used as the database substrate.

A :class:`Table` couples a :class:`~repro.relational.schema.TableSchema` with
an ordered list of rows.  Rows are plain ``dict`` objects keyed by column
name; the table validates them against the schema on insertion.  The class
offers the operations the protection framework and the attack simulators
need — nothing more, nothing less:

* insertion / deletion / in-place update,
* projection of one or several columns,
* group-by counting (bin sizes for the k-anonymity checks),
* deep **and copy-on-write** copies (attacks operate on copies of the
  outsourced table; :meth:`lazy_copy` shares row dicts until a row is
  actually mutated through :meth:`mutable_row` or :meth:`update_where`),
* CSV round-trips for the examples.

Copy-on-write contract
----------------------

:meth:`lazy_copy` is O(n) in list bookkeeping but copies **no row dicts**;
both tables subsequently treat the shared dicts as frozen.  All mutation that
goes through the table API (:meth:`mutable_row`, :meth:`update_where`,
:meth:`insert`, the delete methods) preserves isolation: a shared row is
copied the first time either table mutates it, deletions only rebuild the row
*list*, and insertions append table-private rows.  Code that mutates row
dicts obtained from iteration directly bypasses the mechanism — use
:meth:`mutable_row` (a no-op returning the same dict on fully-owned tables)
whenever the table may be a lazy copy.
"""

from __future__ import annotations

from collections import Counter
from operator import itemgetter
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.relational.io import iter_csv_rows, write_csv_rows
from repro.relational.schema import TableSchema

__all__ = ["Row", "Table"]

Row = dict[str, object]


class Table:
    """An ordered collection of rows conforming to a schema."""

    def __init__(self, schema: TableSchema, rows: Iterable[Mapping[str, object]] | None = None) -> None:
        self._schema = schema
        self._rows: list[Row] = []
        # None: every row dict is private to this table.  Otherwise a list
        # parallel to _rows; False marks rows shared with another table
        # (created by lazy_copy) that must be copied before mutation.
        self._owned: list[bool] | None = None
        if rows is not None:
            for row in rows:
                self.insert(row)

    # ------------------------------------------------------------- properties
    @property
    def schema(self) -> TableSchema:
        return self._schema

    @property
    def rows(self) -> list[Row]:
        """The underlying row list.

        Mutating the returned dicts bypasses the copy-on-write bookkeeping;
        callers that may hold a :meth:`lazy_copy` must go through
        :meth:`mutable_row` instead.
        """
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self._schema != other._schema:
            return False
        if type(self) is Table and type(other) is Table:
            return self._rows == other._rows
        # At least one side is a different substrate (e.g. columnar): compare
        # column by column, which sidesteps per-row view materialisation.
        if len(self) != len(other):
            return False
        return all(
            self.column_values(name) == other.column_values(name)
            for name in self._schema.column_names
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Table(columns={self._schema.column_names}, rows={len(self._rows)})"

    # ------------------------------------------------------------ row editing
    def insert(self, row: Mapping[str, object]) -> None:
        """Validate *row* against the schema and append it."""
        as_dict = dict(row)
        self._schema.validate_row(as_dict)
        self._rows.append(as_dict)
        if self._owned is not None:
            self._owned.append(True)

    def insert_many(self, rows: Iterable[Mapping[str, object]]) -> None:
        for row in rows:
            self.insert(row)

    def mutable_row(self, index: int) -> Row:
        """The row at *index*, guaranteed private to this table.

        On a fully-owned table this simply returns the stored dict; on a
        :meth:`lazy_copy` a shared row is replaced by a private copy first
        (row-level copy-on-mutate).  Always write through the returned dict.
        """
        owned = self._owned
        row = self._rows[index]
        if owned is not None and not owned[index]:
            row = dict(row)
            self._rows[index] = row
            owned[index] = True
        return row

    def delete_indices(self, indices: Iterable[int]) -> int:
        """Delete rows at the given positions; return the number deleted."""
        to_drop = set(indices)
        if any(i < 0 or i >= len(self._rows) for i in to_drop):
            raise IndexError("row index out of range")
        before = len(self._rows)
        if self._owned is None:
            self._rows = [row for i, row in enumerate(self._rows) if i not in to_drop]
        else:
            rows: list[Row] = []
            flags: list[bool] = []
            for i, row in enumerate(self._rows):
                if i not in to_drop:
                    rows.append(row)
                    flags.append(self._owned[i])
            self._rows = rows
            self._owned = flags
        return before - len(self._rows)

    def delete_where(self, predicate: Callable[[Row], bool]) -> int:
        """Delete every row satisfying *predicate*; return the number deleted."""
        before = len(self._rows)
        if self._owned is None:
            self._rows = [row for row in self._rows if not predicate(row)]
        else:
            rows: list[Row] = []
            flags: list[bool] = []
            for row, flag in zip(self._rows, self._owned):
                if not predicate(row):
                    rows.append(row)
                    flags.append(flag)
            self._rows = rows
            self._owned = flags
        return before - len(self._rows)

    def update_where(self, predicate: Callable[[Row], bool], updater: Callable[[Row], None]) -> int:
        """Apply *updater* in place to every row satisfying *predicate*."""
        touched = 0
        for index, row in enumerate(self._rows):
            if predicate(row):
                updater(self.mutable_row(index))
                touched += 1
        return touched

    # --------------------------------------------------------------- querying
    def column_values(self, name: str) -> list[object]:
        """Project a single column (raises ``KeyError`` for unknown columns)."""
        self._schema.column(name)
        return [row[name] for row in self._rows]

    def distinct_values(self, name: str) -> set[object]:
        return set(self.column_values(name))

    def column_sequences(self, names: Sequence[str]) -> dict[str, Sequence] | None:
        """Raw per-column buffers for hot paths, or ``None`` on a row store.

        The columnar substrate returns read-only references to its internal
        column buffers so per-column sweeps can skip row materialisation;
        the row store returns ``None`` (building projections here would cost
        as much as the ``row[name]`` loop it replaces), and callers fall back
        to the row path.
        """
        return None

    def set_cells(self, name: str, indices: Sequence[int], values: Sequence[object]) -> None:
        """Write ``values[j]`` into column *name* at row ``indices[j]``.

        The bulk-write counterpart of :meth:`column_sequences`: the row store
        goes through :meth:`mutable_row` per index (preserving CoW), the
        columnar store writes the column buffer in place after a single
        copy-on-write check.
        """
        self._schema.column(name)
        for index, value in zip(indices, values):
            self.mutable_row(index)[name] = value

    def select(self, predicate: Callable[[Row], bool]) -> "Table":
        """Return a new table containing the rows satisfying *predicate*.

        The result shares the matching row dicts copy-on-write (like
        :meth:`from_validated_rows`): no row is copied up front, and the
        shared rows are marked in *both* tables so a later mutation through
        either table's API copies first.  Mutate results through
        :meth:`mutable_row`, never the dicts directly.
        """
        selected: list[Row] = []
        selected_indices: list[int] = []
        for i, row in enumerate(self._rows):
            if predicate(row):
                selected.append(row)
                selected_indices.append(i)
        result = Table(self._schema)
        result._rows = selected
        result._owned = [False] * len(selected)
        if selected:
            if self._owned is None:
                self._owned = [True] * len(self._rows)
            for i in selected_indices:
                self._owned[i] = False
        return result

    def group_by_count(self, names: Sequence[str]) -> dict[tuple[object, ...], int]:
        """Count rows per combination of values of the given columns.

        This is the primitive behind every k-anonymity check: the bins of the
        paper are exactly the groups of this aggregation over the
        quasi-identifying columns.
        """
        for name in names:
            self._schema.column(name)
        if len(names) == 1:
            name = names[0]
            return dict(Counter((row[name],) for row in self._rows))
        return dict(Counter(map(itemgetter(*names), self._rows)))

    def value_counts(self, name: str) -> dict[object, int]:
        """Count rows per value of a single column."""
        self._schema.column(name)
        return dict(Counter(map(itemgetter(name), self._rows)))

    # ------------------------------------------------------------------ copies
    def copy(self) -> "Table":
        """Deep copy of rows (schema objects are immutable and shared)."""
        return Table(self._schema, (dict(row) for row in self._rows))

    def lazy_copy(self) -> "Table":
        """Copy-on-write copy: rows are shared until one of them is mutated.

        Both this table and the copy mark every current row as shared, so a
        mutation through either table's API copies the affected row first.
        Orders of magnitude cheaper than :meth:`copy` for the attack and
        embedding pipelines, which touch a small fraction of the rows.
        """
        twin = Table(self._schema)
        twin._rows = list(self._rows)
        twin._owned = [False] * len(self._rows)
        self._owned = [False] * len(self._rows)
        return twin

    def with_schema(self, schema: TableSchema) -> "Table":
        """Return a copy re-validated against a (compatible) new schema."""
        return Table(schema, (dict(row) for row in self._rows))

    @classmethod
    def from_validated_rows(cls, schema: TableSchema, rows: Iterable[Row]) -> "Table":
        """A table over already-validated row dicts, shared rather than copied.

        For internal merges (e.g. concatenating shard results whose rows came
        out of validated tables): skips per-row validation and dict copies.
        The rows are marked shared, so any mutation through this table's API
        copies first — the source tables are never written through.
        """
        table = cls(schema)
        table._rows = list(rows)
        table._owned = [False] * len(table._rows)
        return table

    def slice_view(self, start: int, stop: int) -> "Table":
        """A table over rows ``[start, stop)`` sharing this table's row dicts.

        The view is what the shard-parallel executor hands each worker: O(1)
        per row, no dict copies.  Mutations through the view's own API
        (:meth:`mutable_row` etc.) copy the affected row first, so the parent
        table is never written through a view; direct mutation of the parent's
        rows, however, is visible through existing views — shard first, then
        treat the parent as frozen for the duration.
        """
        view = Table(self._schema)
        view._rows = self._rows[start:stop]
        view._owned = [False] * len(view._rows)
        return view

    # --------------------------------------------------------------------- IO
    def to_csv(self, path: str) -> None:
        """Write the table to *path* as CSV with a header row."""
        write_csv_rows(path, self._schema, self.rows)

    @classmethod
    def from_csv(cls, path: str, schema: TableSchema) -> "Table":
        """Read a CSV written by :meth:`to_csv`, coercing cells by column type."""
        return cls(schema, iter_csv_rows(path, schema))
