"""Table schemas with the column taxonomy used by the paper.

A :class:`TableSchema` is an ordered collection of :class:`Column` objects.
Each column carries two orthogonal classifications:

* :class:`ColumnKind` — identifying / quasi-identifying / other, which decides
  how the protection framework treats it (encrypt, generalise, or leave
  untouched), and
* :class:`ColumnType` — categorical or numeric, which decides how its domain
  hierarchy tree is built and how information loss is computed (Equation 1
  versus Equation 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["ColumnKind", "ColumnType", "Column", "TableSchema"]


class ColumnKind(enum.Enum):
    """Role of a column with respect to identification (Section 2)."""

    IDENTIFYING = "identifying"
    QUASI_IDENTIFYING = "quasi_identifying"
    OTHER = "other"


class ColumnType(enum.Enum):
    """Value domain of a column."""

    CATEGORICAL = "categorical"
    NUMERIC = "numeric"


@dataclass(frozen=True)
class Column:
    """A single column definition.

    Parameters
    ----------
    name:
        Column name, unique within its schema.
    kind:
        Identification role (:class:`ColumnKind`).
    ctype:
        Value domain (:class:`ColumnType`).
    description:
        Optional human-readable description used in reports.
    """

    name: str
    kind: ColumnKind
    ctype: ColumnType
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("column name must be non-empty")

    @property
    def is_identifying(self) -> bool:
        return self.kind is ColumnKind.IDENTIFYING

    @property
    def is_quasi_identifying(self) -> bool:
        return self.kind is ColumnKind.QUASI_IDENTIFYING

    @property
    def is_numeric(self) -> bool:
        return self.ctype is ColumnType.NUMERIC


@dataclass(frozen=True)
class TableSchema:
    """An ordered, immutable collection of :class:`Column` definitions."""

    columns: tuple[Column, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(names) != len(set(names)):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise ValueError(f"duplicate column names: {duplicates}")

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_columns(cls, columns: Iterable[Column]) -> "TableSchema":
        return cls(tuple(columns))

    # ---------------------------------------------------------------- queries
    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: object) -> bool:
        return any(column.name == name for column in self.columns)

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        """Return the column named *name* or raise ``KeyError``."""
        for column in self.columns:
            if column.name == name:
                return column
        raise KeyError(f"no column named {name!r}")

    def index_of(self, name: str) -> int:
        """Return the positional index of column *name*."""
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise KeyError(f"no column named {name!r}")

    @property
    def identifying_columns(self) -> list[Column]:
        return [c for c in self.columns if c.kind is ColumnKind.IDENTIFYING]

    @property
    def quasi_identifying_columns(self) -> list[Column]:
        return [c for c in self.columns if c.kind is ColumnKind.QUASI_IDENTIFYING]

    @property
    def other_columns(self) -> list[Column]:
        return [c for c in self.columns if c.kind is ColumnKind.OTHER]

    def validate_row(self, row: dict[str, object]) -> None:
        """Check that *row* provides exactly the schema's columns."""
        missing = [name for name in self.column_names if name not in row]
        extra = [name for name in row if name not in self]
        if missing:
            raise ValueError(f"row is missing columns {missing}")
        if extra:
            raise ValueError(f"row has unexpected columns {sorted(extra)}")

    def with_column(self, column: Column) -> "TableSchema":
        """Return a new schema with *column* appended."""
        return TableSchema(self.columns + (column,))

    def replace_kind(self, name: str, kind: ColumnKind) -> "TableSchema":
        """Return a new schema where column *name* has the given *kind*."""
        new_columns = []
        for column in self.columns:
            if column.name == name:
                new_columns.append(Column(column.name, kind, column.ctype, column.description))
            else:
                new_columns.append(column)
        if name not in self:
            raise KeyError(f"no column named {name!r}")
        return TableSchema(tuple(new_columns))


def medical_schema() -> TableSchema:
    """The schema used throughout the paper's evaluation (Section 7).

    ``R(ssn, age, zip_code, doctor, symptom, prescription)`` with one
    identifying column (``ssn``) and five quasi-identifying columns.
    """
    return TableSchema(
        (
            Column("ssn", ColumnKind.IDENTIFYING, ColumnType.CATEGORICAL, "social security number"),
            Column("age", ColumnKind.QUASI_IDENTIFYING, ColumnType.NUMERIC, "patient age in years"),
            Column("zip_code", ColumnKind.QUASI_IDENTIFYING, ColumnType.CATEGORICAL, "home zip code"),
            Column("doctor", ColumnKind.QUASI_IDENTIFYING, ColumnType.CATEGORICAL, "attending practitioner"),
            Column("symptom", ColumnKind.QUASI_IDENTIFYING, ColumnType.CATEGORICAL, "ICD-9-style diagnosis"),
            Column(
                "prescription",
                ColumnKind.QUASI_IDENTIFYING,
                ColumnType.CATEGORICAL,
                "prescribed medication",
            ),
        )
    )


__all__.append("medical_schema")
