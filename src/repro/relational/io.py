"""Schema-aware CSV parsing shared by the table class, the CLI and the service.

The protection pipeline round-trips tables through CSV at two points: the
owner exports the outsourced table (``Table.to_csv``) and later re-ingests a
suspect copy for detection.  Both directions must agree on every textual form
a cell can take:

* numeric cells — plain integers, decimals, scientific notation (``1e5``),
  negatives and the IEEE specials (``nan``, ``inf``),
* generalized numeric cells — half-open :class:`~repro.dht.node.Interval`
  literals such as ``[25,30)`` or ``[25.0, 30.0)`` written by binning.

Historically the interval form was produced by ``to_csv`` but only understood
by a hand-rolled parser inside the CLI (and only in one spelling); this module
is the single place where the mapping lives.  The readers are generators, so
the service's streaming layer can ingest million-row files without
materialising a full :class:`~repro.relational.table.Table`.

This module deliberately imports only the schema and the interval type — no
``Table`` — so ``table.py`` can use it without an import cycle.
"""

from __future__ import annotations

import csv
from typing import Iterable, Iterator, Mapping

from repro.dht.node import Interval
from repro.relational.schema import ColumnType, TableSchema

__all__ = [
    "coerce_numeric_cell",
    "parse_cell",
    "parse_row",
    "iter_csv_rows",
    "write_csv_rows",
]


def coerce_numeric_cell(text: str) -> object:
    """Parse a CSV cell of a numeric column: interval, int, then float.

    Generalized numeric cells are serialised as ``[lower,upper)`` interval
    literals; raw cells as scalars.  ``int`` is tried before ``float`` so that
    identifiers and counts keep their exact type through a round trip.
    """
    stripped = text.strip()
    if stripped.startswith("["):
        return Interval.from_string(stripped)
    try:
        return int(stripped)
    except ValueError:
        return float(stripped)


def parse_cell(text: str, ctype: ColumnType) -> object:
    """Parse one cell according to its column type.

    Categorical cells are kept verbatim (including whitespace — categorical
    values are opaque labels); numeric cells go through
    :func:`coerce_numeric_cell`.
    """
    if ctype is ColumnType.NUMERIC:
        return coerce_numeric_cell(text)
    return text


def parse_row(raw: Mapping[str, str], schema: TableSchema) -> dict[str, object]:
    """Parse a ``csv.DictReader`` row against *schema* (cells coerced by type)."""
    row: dict[str, object] = {}
    for column in schema:
        try:
            text = raw[column.name]
        except KeyError:
            raise ValueError(f"CSV row is missing column {column.name!r}") from None
        row[column.name] = parse_cell(str(text), column.ctype)
    return row


def iter_csv_rows(path: str, schema: TableSchema) -> Iterator[dict[str, object]]:
    """Stream parsed rows from a CSV file, one dict at a time.

    Constant-memory: rows are yielded as they are read, never collected.  The
    file must carry a header naming at least the schema's columns (extra
    columns are ignored, matching ``csv.DictReader`` semantics).
    """
    with open(path, newline="", encoding="utf-8") as handle:
        for raw in csv.DictReader(handle):
            yield parse_row(raw, schema)


def write_csv_rows(path: str, schema: TableSchema, rows: Iterable[Mapping[str, object]]) -> int:
    """Stream *rows* to a CSV file with a header; return the number written.

    Cells are serialised with ``str()``, which for :class:`Interval` values
    produces exactly the literal :func:`coerce_numeric_cell` parses back —
    the round-trip contract the detection path relies on.
    """
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=schema.column_names)
        writer.writeheader()
        for row in rows:
            writer.writerow({name: row[name] for name in schema.column_names})
            count += 1
    return count
