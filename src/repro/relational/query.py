"""Small query helpers over :class:`~repro.relational.table.Table`.

These are convenience wrappers expressing the handful of SQL-ish operations
that appear in the paper's evaluation — most notably the range delete used by
the Subset-Deletion attack:

    DELETE FROM R WHERE SSN > lval AND SSN < uval

The helpers are deliberately plain functions over predicates so that tests and
attacks can compose them without a query planner.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.relational.table import Row, Table

__all__ = [
    "equals",
    "in_range",
    "select_where",
    "delete_where",
    "project",
    "group_by_count",
]

Predicate = Callable[[Row], bool]


def equals(column: str, value: object) -> Predicate:
    """Predicate: ``row[column] == value``."""

    def predicate(row: Row) -> bool:
        return row[column] == value

    return predicate


def in_range(column: str, low: object, high: object, *, inclusive: bool = False) -> Predicate:
    """Predicate: ``low < row[column] < high`` (or ``<=`` when *inclusive*).

    Values are compared with Python ordering; string identifiers compare
    lexicographically, which matches the SQL clause in the paper when the SSN
    column is stored as fixed-width digit strings.
    """

    def predicate(row: Row) -> bool:
        value = row[column]
        if inclusive:
            return low <= value <= high  # type: ignore[operator]
        return low < value < high  # type: ignore[operator]

    return predicate


def select_where(table: Table, predicate: Predicate) -> Table:
    """Return a new table of rows satisfying *predicate*."""
    return table.select(predicate)


def delete_where(table: Table, predicate: Predicate) -> int:
    """Delete rows satisfying *predicate* in place; return count deleted."""
    return table.delete_where(predicate)


def project(table: Table, columns: Sequence[str]) -> list[tuple[object, ...]]:
    """Return the projection of *table* onto *columns* as a list of tuples."""
    for name in columns:
        table.schema.column(name)
    return [tuple(row[name] for name in columns) for row in table]


def group_by_count(table: Table, columns: Sequence[str]) -> dict[tuple[object, ...], int]:
    """Group rows by the given columns and count each group."""
    return table.group_by_count(columns)
