"""Column-oriented table substrate behind the :class:`Table` API.

The row store in :mod:`repro.relational.table` pays python-object and dict
churn per *cell* on every hot path — tuple framing, the binning rewrite,
detection voting and the attack simulators all iterate ``list[dict]`` rows.
This module provides the columnar alternative: a :class:`ColumnStore` holds
one :class:`TypedColumn` per schema field (``array('q')`` for int cells,
``array('d')`` for float cells, a plain list for strings / intervals / mixed
values) and :class:`ColumnarTable` exposes the full :class:`Table` contract on
top of it through lightweight :class:`ColumnRow` views, so untouched callers
keep working unchanged.

Two invariants govern the design:

* **Bit identity.**  Every operation must produce results byte/bit-identical
  to the row store: typed columns preserve exact cell types (``30`` stays
  ``int``, ``2.5`` stays ``float``; a type mismatch spills the column to a
  plain object list rather than coercing), and the columnar CSV parser in
  :class:`CsvParsePlan` reproduces ``csv.DictReader`` + ``parse_row``
  semantics cell for cell.  ``tests/relational/test_columnar.py`` asserts the
  equivalence end to end through protect / detect / attacks.
* **Copy-on-write at store granularity.**  ``lazy_copy`` / ``slice_view`` /
  ``from_validated_rows`` share whole column buffers; the first mutation
  through either table's API copies the store once (columns are cheap to
  copy next to per-row dict copies).  Isolation is therefore identical to
  the row store's row-level CoW; only the sharing granularity differs.

Hot paths reach the raw column buffers through
``Table.column_sequences(names)`` — ``None`` on the row store (callers fall
back to ``row[name]``), a read-only ``{name: buffer}`` mapping here.
"""

from __future__ import annotations

import csv
import itertools
from array import array
from collections import Counter
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.relational.io import coerce_numeric_cell
from repro.relational.schema import ColumnType, TableSchema
from repro.relational.table import Row, Table

__all__ = [
    "TypedColumn",
    "ColumnStore",
    "ColumnRow",
    "ColumnarTable",
    "CsvParsePlan",
]

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class TypedColumn:
    """One column of cells with a storage kind decided by the data.

    ``kind`` is ``"q"`` (int64 array), ``"d"`` (float64 array), ``"o"``
    (plain object list) or ``None`` while the column is still empty.  The
    first appended value decides the kind; a later value of a different exact
    type (or an int outside the 64-bit range) *spills* the column to an
    object list so the stored values — and therefore every downstream hash
    and CSV byte — stay identical to what a row store would hold.  ``bool``
    deliberately spills (``array('q')`` would silently turn ``True`` into
    ``1``).
    """

    __slots__ = ("kind", "data")

    def __init__(self, kind: str | None = None, data: "array | list | None" = None) -> None:
        self.kind = kind
        self.data = data if data is not None else []

    @classmethod
    def from_values(cls, values: Iterable[object]) -> "TypedColumn":
        """Bulk constructor: one type scan, then a single array fill."""
        cells = values if isinstance(values, list) else list(values)
        if not cells:
            return cls()
        first = type(cells[0])
        if first is int and all(type(v) is int for v in cells):
            try:
                return cls("q", array("q", cells))
            except OverflowError:
                pass
        elif first is float and all(type(v) is float for v in cells):
            return cls("d", array("d", cells))
        return cls("o", cells)

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator[object]:
        return iter(self.data)

    def __getitem__(self, index: int) -> object:
        return self.data[index]

    def _spill(self) -> None:
        self.data = list(self.data)
        self.kind = "o"

    def append(self, value: object) -> None:
        kind = self.kind
        vtype = type(value)
        if kind is None:
            if vtype is int and _INT64_MIN <= value <= _INT64_MAX:
                self.kind, self.data = "q", array("q", (value,))
            elif vtype is float:
                self.kind, self.data = "d", array("d", (value,))
            else:
                self.kind = "o"
                self.data.append(value)
            return
        if kind == "q":
            if vtype is int:
                try:
                    self.data.append(value)
                    return
                except OverflowError:
                    pass
        elif kind == "d":
            if vtype is float:
                self.data.append(value)
                return
        else:
            self.data.append(value)
            return
        self._spill()
        self.data.append(value)

    def extend(self, values: Iterable[object]) -> None:
        for value in values:
            self.append(value)

    def __setitem__(self, index: int, value: object) -> None:
        kind = self.kind
        vtype = type(value)
        if kind == "q" and vtype is int:
            try:
                self.data[index] = value
                return
            except OverflowError:
                pass
        elif kind == "d" and vtype is float:
            self.data[index] = value
            return
        elif kind == "o":
            self.data[index] = value
            return
        else:
            # Empty (kind None) columns have no valid index; let the
            # underlying list raise.
            if kind is None:
                self.data[index] = value
                return
        self._spill()
        self.data[index] = value

    def tolist(self) -> list[object]:
        data = self.data
        return data.tolist() if isinstance(data, array) else list(data)

    def copy(self) -> "TypedColumn":
        return TypedColumn(self.kind, self.data[:])

    def take(self, indices: Sequence[int]) -> "TypedColumn":
        """A new column holding ``data[i]`` for each index, same kind."""
        data = self.data
        if isinstance(data, array):
            return TypedColumn(self.kind, array(data.typecode, (data[i] for i in indices)))
        return TypedColumn(self.kind if data else None, [data[i] for i in indices])

    def slice(self, start: int, stop: int) -> "TypedColumn":
        return TypedColumn(self.kind, self.data[start:stop])


class ColumnStore:
    """A set of equally long :class:`TypedColumn` buffers, one per field."""

    __slots__ = ("names", "columns", "row_count")

    def __init__(
        self,
        names: Sequence[str],
        columns: dict[str, TypedColumn] | None = None,
        row_count: int = 0,
    ) -> None:
        self.names = tuple(names)
        self.columns = (
            columns if columns is not None else {name: TypedColumn() for name in self.names}
        )
        self.row_count = row_count

    def append_row(self, row: Mapping[str, object]) -> None:
        for name in self.names:
            self.columns[name].append(row[name])
        self.row_count += 1

    def copy(self) -> "ColumnStore":
        return ColumnStore(
            self.names,
            {name: column.copy() for name, column in self.columns.items()},
            self.row_count,
        )

    def take(self, indices: Sequence[int]) -> "ColumnStore":
        return ColumnStore(
            self.names,
            {name: column.take(indices) for name, column in self.columns.items()},
            len(indices),
        )

    def slice(self, start: int, stop: int) -> "ColumnStore":
        taken = {name: column.slice(start, stop) for name, column in self.columns.items()}
        length = len(range(*slice(start, stop).indices(self.row_count)))
        return ColumnStore(self.names, taken, length)


class ColumnRow:
    """A dict-like view of one row of a :class:`ColumnStore`.

    Reads and writes go straight to the column buffers, so the view behaves
    like the row dict it replaces — including ``dict == view`` comparisons
    (``dict.__eq__`` defers to the reflected operator).  A view stays bound
    to the store it was created from: after a copy-on-write store swap it
    keeps reading the *old* buffers, mirroring a stale reference to a
    replaced row dict in the row store.
    """

    __slots__ = ("_store", "_index")

    def __init__(self, store: ColumnStore, index: int) -> None:
        self._store = store
        self._index = index

    def __getitem__(self, name: str) -> object:
        return self._store.columns[name][self._index]

    def __setitem__(self, name: str, value: object) -> None:
        columns = self._store.columns
        if name not in columns:
            raise KeyError(name)
        columns[name][self._index] = value

    def __contains__(self, name: object) -> bool:
        return name in self._store.columns

    def __iter__(self) -> Iterator[str]:
        return iter(self._store.names)

    def __len__(self) -> int:
        return len(self._store.names)

    def keys(self) -> tuple[str, ...]:
        return self._store.names

    def values(self) -> list[object]:
        index = self._index
        columns = self._store.columns
        return [columns[name][index] for name in self._store.names]

    def items(self) -> list[tuple[str, object]]:
        index = self._index
        columns = self._store.columns
        return [(name, columns[name][index]) for name in self._store.names]

    def get(self, name: str, default: object = None) -> object:
        column = self._store.columns.get(name)
        return default if column is None else column[self._index]

    def update(self, other: Mapping[str, object] = (), **kwargs: object) -> None:
        items = other.items() if hasattr(other, "items") else other
        for name, value in items:
            self[name] = value
        for name, value in kwargs.items():
            self[name] = value

    def copy(self) -> Row:
        return dict(self.items())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (dict, ColumnRow)):
            if len(other) != len(self):
                return False
            try:
                return all(other[name] == self[name] for name in self._store.names)
            except KeyError:
                return False
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]  # mutable, like the row dicts

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return repr(dict(self.items()))


class CsvParsePlan:
    """Positional CSV parsing straight into columns.

    Mirrors ``csv.DictReader`` + :func:`repro.relational.io.parse_row`
    exactly: fieldnames come from the first record with duplicates resolved
    last-wins, blank records are skipped, short records pad missing cells
    with the reader's ``restval`` (``None``, i.e. the text ``"None"``),
    extra cells are ignored, and a schema column absent from the header
    raises the same ``ValueError`` the dict path raises — but each cell goes
    directly from the reader's string to its column buffer, with no
    intermediate dict.
    """

    __slots__ = ("fields",)

    def __init__(self, fieldnames: Sequence[str], schema: TableSchema) -> None:
        positions: dict[str, int] = {}
        for position, name in enumerate(fieldnames):
            positions[name] = position  # duplicate header: last occurrence wins
        self.fields = [
            (column.name, positions.get(column.name), column.ctype is ColumnType.NUMERIC)
            for column in schema
        ]

    def extend_table(
        self,
        table: "ColumnarTable",
        records: Iterable[Sequence[str]],
        limit: int | None = None,
    ) -> int:
        """Parse up to *limit* records into *table*; return the number parsed."""
        table._unshare()
        store = table._store
        coerce = coerce_numeric_cell
        plan = [
            (name, position, numeric, store.columns[name].append)
            for name, position, numeric in self.fields
        ]
        count = 0
        for record in records:
            if not record:
                continue  # DictReader skips blank records
            width = len(record)
            for name, position, numeric, append in plan:
                if position is None:
                    raise ValueError(f"CSV row is missing column {name!r}")
                text = record[position] if position < width else "None"
                append(coerce(text) if numeric else text)
            count += 1
            store.row_count += 1
            if limit is not None and count >= limit:
                break
        return count


class ColumnarTable(Table):
    """A :class:`Table` whose rows live in a :class:`ColumnStore`.

    Drop-in for the row store: the full mutation / query / copy API behaves
    identically (asserted by the columnar equivalence suite), rows come back
    as :class:`ColumnRow` views, and ``column_sequences`` exposes the raw
    buffers to per-column hot paths.
    """

    def __init__(self, schema: TableSchema, rows: Iterable[Mapping[str, object]] | None = None) -> None:
        self._schema = schema
        # The base class's row list is deliberately absent: any base method
        # that was missed by the overrides below would fail loudly instead of
        # silently operating on an empty list.
        self._rows = None  # type: ignore[assignment]
        self._owned = None
        self._store = ColumnStore(schema.column_names)
        # True while the store's buffers are shared with another table
        # (lazy_copy / slice_view / from_validated_rows); the first mutation
        # copies the store.
        self._shared = False
        if rows is not None:
            self.insert_many(rows)

    # ------------------------------------------------------------- properties
    @property
    def rows(self) -> list[ColumnRow]:
        """Row views over the store (see :class:`ColumnRow` for semantics)."""
        store = self._store
        return [ColumnRow(store, index) for index in range(store.row_count)]

    def __len__(self) -> int:
        return self._store.row_count

    def __iter__(self) -> Iterator[ColumnRow]:
        store = self._store
        return (ColumnRow(store, index) for index in range(store.row_count))

    def __getitem__(self, index: int) -> ColumnRow:
        count = self._store.row_count
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError("row index out of range")
        return ColumnRow(self._store, index)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ColumnarTable(columns={self._schema.column_names}, rows={len(self)})"

    # -------------------------------------------------------- copy-on-write
    def _unshare(self) -> None:
        if self._shared:
            self._store = self._store.copy()
            self._shared = False

    # ------------------------------------------------------------ row editing
    def insert(self, row: Mapping[str, object]) -> None:
        as_dict = dict(row)
        self._schema.validate_row(as_dict)
        self._unshare()
        self._store.append_row(as_dict)

    def insert_many(self, rows: Iterable[Mapping[str, object]]) -> None:
        """Bulk insert: one CoW check, then straight appends per column."""
        self._unshare()
        validate = self._schema.validate_row
        store = self._store
        for row in rows:
            as_dict = dict(row)
            validate(as_dict)
            store.append_row(as_dict)

    def mutable_row(self, index: int) -> ColumnRow:
        self._unshare()
        return self[index]

    def delete_indices(self, indices: Iterable[int]) -> int:
        to_drop = set(indices)
        count = self._store.row_count
        if any(index < 0 or index >= count for index in to_drop):
            raise IndexError("row index out of range")
        if not to_drop:
            return 0
        kept = [index for index in range(count) if index not in to_drop]
        # One index mask applied to every column; the new store also makes
        # the table private (deletes never write through shared buffers).
        self._store = self._store.take(kept)
        self._shared = False
        return count - len(kept)

    def delete_where(self, predicate: Callable[[Row], bool]) -> int:
        store = self._store
        count = store.row_count
        kept = [index for index in range(count) if not predicate(ColumnRow(store, index))]
        if len(kept) == count:
            return 0
        self._store = store.take(kept)
        self._shared = False
        return count - len(kept)

    def update_where(self, predicate: Callable[[Row], bool], updater: Callable[[Row], None]) -> int:
        touched = 0
        for index in range(len(self)):
            if predicate(self[index]):
                updater(self.mutable_row(index))
                touched += 1
        return touched

    def set_cells(self, name: str, indices: Sequence[int], values: Sequence[object]) -> None:
        self._schema.column(name)
        self._unshare()
        column = self._store.columns[name]
        for index, value in zip(indices, values):
            column[index] = value

    # --------------------------------------------------------------- querying
    def column_values(self, name: str) -> list[object]:
        self._schema.column(name)
        return self._store.columns[name].tolist()

    def distinct_values(self, name: str) -> set[object]:
        self._schema.column(name)
        return set(self._store.columns[name].data)

    def column_sequences(self, names: Sequence[str]) -> dict[str, Sequence] | None:
        columns = self._store.columns
        return {name: columns[name].data for name in names}

    def select(self, predicate: Callable[[Row], bool]) -> "ColumnarTable":
        store = self._store
        indices = [
            index for index in range(store.row_count) if predicate(ColumnRow(store, index))
        ]
        selected = ColumnarTable(self._schema)
        selected._store = store.take(indices)
        return selected

    def group_by_count(self, names: Sequence[str]) -> dict[tuple[object, ...], int]:
        for name in names:
            self._schema.column(name)
        columns = self._store.columns
        if len(names) == 1:
            return dict(Counter((value,) for value in columns[names[0]].data))
        return dict(Counter(zip(*(columns[name].data for name in names))))

    def value_counts(self, name: str) -> dict[object, int]:
        self._schema.column(name)
        return dict(Counter(self._store.columns[name].data))

    # ------------------------------------------------------------------ copies
    def copy(self) -> "ColumnarTable":
        clone = ColumnarTable(self._schema)
        clone._store = self._store.copy()
        return clone

    def lazy_copy(self) -> "ColumnarTable":
        """CoW copy sharing the whole store until either side mutates."""
        twin = ColumnarTable(self._schema)
        twin._store = self._store
        twin._shared = True
        self._shared = True
        return twin

    def with_schema(self, schema: TableSchema) -> "ColumnarTable":
        return ColumnarTable(schema, self)

    @classmethod
    def from_validated_rows(cls, schema: TableSchema, rows: Iterable[Mapping[str, object]]) -> "ColumnarTable":
        table = cls(schema)
        store = table._store
        for row in rows:
            store.append_row(row)
        table._shared = False
        return table

    @classmethod
    def from_columns(cls, schema: TableSchema, columns: Mapping[str, Sequence[object]]) -> "ColumnarTable":
        """Build a table directly from per-column value sequences.

        Each sequence may be a list of cells or a ready :class:`TypedColumn`
        (which is adopted as-is, so builders that already produced typed
        buffers pay no conversion).  All columns must share one length.
        """
        names = schema.column_names
        typed: dict[str, TypedColumn] = {}
        length: int | None = None
        for name in names:
            values = columns[name]
            column = values if isinstance(values, TypedColumn) else TypedColumn.from_values(values)
            if length is None:
                length = len(column)
            elif len(column) != length:
                raise ValueError("columns must all have the same length")
            typed[name] = column
        table = cls(schema)
        table._store = ColumnStore(tuple(names), typed, length or 0)
        return table

    def slice_view(self, start: int, stop: int) -> "ColumnarTable":
        view = ColumnarTable(self._schema)
        view._store = self._store.slice(start, stop)
        return view

    # --------------------------------------------------------------------- IO
    @classmethod
    def from_csv(cls, path: str, schema: TableSchema) -> "ColumnarTable":
        table = cls(schema)
        with open(path, newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            fieldnames = next(reader, None)
            if fieldnames is None:
                return table
            CsvParsePlan(fieldnames, schema).extend_table(table, reader)
        return table

    @classmethod
    def from_csv_chunk(cls, schema: TableSchema, header: str, lines: Iterable[str]) -> "ColumnarTable":
        """Parse one raw CSV chunk (header line + data lines) into columns."""
        table = cls(schema)
        reader = csv.reader(itertools.chain([header], lines))
        fieldnames = next(reader, None)
        if fieldnames is not None:
            CsvParsePlan(fieldnames, schema).extend_table(table, reader)
        return table
