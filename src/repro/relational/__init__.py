"""Minimal in-memory relational substrate.

The paper operates on a single relational table with three kinds of columns
(Section 2):

* **identifying** columns that directly identify an individual (SSN),
* **quasi-identifying** columns that can be linked with external data sets to
  re-identify individuals (age, zip code, ...), and
* **other** columns carrying no identifying information.

The framework needs only a small slice of relational functionality: a typed
schema, a row store with insert/delete/update, projections, group-by counting
(for bin sizes) and the range-delete used by the Subset-Deletion attack of the
evaluation (``DELETE FROM R WHERE SSN > lval AND SSN < uval``).  This package
provides exactly that, with no external dependencies, so the rest of the
library can treat "the database" as a plain Python object.
"""

from repro.relational.schema import Column, ColumnKind, ColumnType, TableSchema
from repro.relational.table import Row, Table
from repro.relational.columnar import ColumnRow, ColumnarTable, ColumnStore, TypedColumn
from repro.relational.query import (
    delete_where,
    equals,
    group_by_count,
    in_range,
    project,
    select_where,
)

__all__ = [
    "Column",
    "ColumnKind",
    "ColumnType",
    "TableSchema",
    "Row",
    "Table",
    "ColumnarTable",
    "ColumnRow",
    "ColumnStore",
    "TypedColumn",
    "select_where",
    "delete_where",
    "project",
    "group_by_count",
    "equals",
    "in_range",
]
