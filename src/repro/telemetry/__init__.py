"""Dependency-free telemetry: tracing, latency histograms, structured logs.

Three stdlib-only modules wired through every layer of the service:

* :mod:`repro.telemetry.trace` — :class:`~repro.telemetry.trace.Span` /
  :class:`~repro.telemetry.trace.Tracer` with contextvar-scoped trace/span
  IDs, wall + CPU timing, and a picklable/JSON wire form so spans recorded
  inside process-pool workers and on remote fleet members travel back to the
  coordinator of one request.
* :mod:`repro.telemetry.metrics` — fixed-bucket
  :class:`~repro.telemetry.metrics.Histogram` (p50/p95/p99 derivable) and the
  Prometheus text-exposition renderer behind ``GET /metrics?format=prometheus``.
* :mod:`repro.telemetry.log` — opt-in structured JSON logging that stamps
  every record with trace/span/tenant-hash and never logs cell values,
  identifiers, secrets, or tokens.

The cardinal rule: telemetry off is a near-free no-op (one contextvar read
per instrumented stage) and never changes output bytes — byte/bit-identity
of protect/detect results with tracing on is asserted by the test suite.
"""

from repro.telemetry.log import (
    JsonLogFormatter,
    configure_json_logging,
    log_event,
    redact_fields,
    tenant_hash,
)
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    render_prometheus,
)
from repro.telemetry.trace import (
    PARENT_HEADER,
    TRACE_HEADER,
    Span,
    TraceContext,
    Tracer,
    activate,
    adopt,
    capture,
    current_tracer,
    format_span_tree,
    span,
)

__all__ = [
    "Span",
    "Tracer",
    "TraceContext",
    "TRACE_HEADER",
    "PARENT_HEADER",
    "span",
    "activate",
    "adopt",
    "capture",
    "current_tracer",
    "format_span_tree",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "render_prometheus",
    "JsonLogFormatter",
    "configure_json_logging",
    "log_event",
    "redact_fields",
    "tenant_hash",
]
