"""Distributed tracing for the protect/detect pipeline — stdlib only.

One *trace* is one request (a protect, a detect, one HTTP call); one
:class:`Span` is one named stage of it (``detect.parse``, ``protect.embed``,
``http.request``, …) with wall-clock and thread-CPU durations.  Spans form a
tree through ``parent_id``, and the tree spans *processes*: a span recorded
inside a :class:`~concurrent.futures.ProcessPoolExecutor` worker, or on a
remote fleet member, carries the coordinator's ``trace_id`` and is shipped
back as JSON to be :meth:`ingested <Tracer.ingest>` into the coordinator's
:class:`Tracer`.

Design rules, in order:

1. **Off is near-free.**  The module-level :func:`span` context manager reads
   one :class:`~contextvars.ContextVar`; with no active tracer it returns a
   shared no-op singleton and touches no clock.  Instrumentation sits at
   chunk/request granularity — never per row.
2. **Explicit propagation.**  ``contextvars`` do not cross pool boundaries,
   so the active scope is captured into a picklable :class:`TraceContext`
   and threaded through task payloads.  Same-process adoption reuses the
   live (thread-safe) tracer; cross-process adoption builds a local tracer
   whose exported spans ride back in the task result.  Over HTTP the context
   travels as the :data:`TRACE_HEADER`/:data:`PARENT_HEADER` request headers.
3. **No payload data in spans.**  Attributes carry counts and names of
   *stages*, never cell values, identifiers, tenant ids, secrets or tokens.
"""

from __future__ import annotations

import os
import re
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

__all__ = [
    "Span",
    "Tracer",
    "TraceContext",
    "TRACE_HEADER",
    "PARENT_HEADER",
    "span",
    "activate",
    "adopt",
    "capture",
    "current_tracer",
    "current_span_id",
    "format_span_tree",
    "new_trace_id",
    "new_span_id",
    "is_valid_trace_id",
]

#: Request header carrying the trace id of the caller's trace.  A server that
#: sees it adopts the id for the request's spans and returns them to the
#: caller (``X-Repro-Trace`` response header, or the ``spans`` key of a
#: ``POST /internal/detect-votes`` response body).
TRACE_HEADER = "X-Repro-Trace-Id"

#: Optional companion header: the caller's active span id, so server-side
#: spans parent correctly into the caller's tree.
PARENT_HEADER = "X-Repro-Parent-Span"

#: Trace/span ids are lowercase hex, bounded — anything else in a header is
#: ignored rather than echoed into spans and logs.
_ID_PATTERN = re.compile(r"^[0-9a-f]{8,32}$")


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 8-hex-char span id."""
    return os.urandom(4).hex()


def is_valid_trace_id(value: object) -> bool:
    """Whether *value* is usable as a trace/span id received from outside."""
    return isinstance(value, str) and _ID_PATTERN.fullmatch(value) is not None


def _origin() -> str:
    """Which process recorded a span; distinguishes coordinator from workers."""
    return f"pid:{os.getpid()}"


@dataclass
class Span:
    """One timed stage of a trace.

    ``start`` is epoch seconds (cross-process comparable to header skew),
    ``wall_seconds`` a monotonic-clock duration, ``cpu_seconds`` the
    recording thread's CPU time (:func:`time.thread_time`) over the same
    window.  ``attrs`` holds counts only — never data values.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    origin: str
    start: float
    wall_seconds: float
    cpu_seconds: float
    attrs: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        doc = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "origin": self.origin,
            "start": round(self.start, 6),
            "wall_seconds": round(self.wall_seconds, 6),
            "cpu_seconds": round(self.cpu_seconds, 6),
        }
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        return doc

    @classmethod
    def from_json(cls, payload: Mapping) -> "Span":
        try:
            parent = payload.get("parent_id")
            return cls(
                trace_id=str(payload["trace_id"]),
                span_id=str(payload["span_id"]),
                parent_id=str(parent) if parent is not None else None,
                name=str(payload["name"]),
                origin=str(payload.get("origin", "?")),
                start=float(payload["start"]),
                wall_seconds=float(payload["wall_seconds"]),
                cpu_seconds=float(payload.get("cpu_seconds", 0.0)),
                attrs=dict(payload.get("attrs") or {}),
            )
        except (AttributeError, KeyError, TypeError, ValueError) as error:
            raise ValueError(f"malformed span document: {error!r}") from None


class Tracer:
    """Collects the spans of one trace; thread-safe.

    One tracer per traced request.  Threads of the same process record into
    the same instance (:meth:`record` takes a lock); foreign processes build
    their own tracer with the same ``trace_id`` and their exported spans are
    merged back with :meth:`ingest`.
    """

    #: Spans beyond this cap are counted, not kept — a tracer is per-request
    #: and chunk-granular, so the cap only guards pathological inputs (and
    #: bounds the ``X-Repro-Trace`` response header).
    MAX_SPANS = 1000

    def __init__(self, trace_id: str | None = None, *, parent_id: str | None = None) -> None:
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        #: Parent for spans opened with no enclosing span in scope — the
        #: remote caller's span id when this tracer was adopted from headers.
        self.root_parent_id = parent_id
        self.origin = _origin()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._dropped = 0

    # -------------------------------------------------------------- recording
    def record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.MAX_SPANS:
                self._dropped += 1
            else:
                self._spans.append(span)

    def ingest(self, spans: Iterable[Mapping]) -> int:
        """Merge foreign span documents (a worker's export) into this trace.

        Documents that do not parse as spans are dropped silently — a fleet
        worker running older code must not fail the detect that traced it.
        Returns the number of spans ingested.
        """
        count = 0
        for payload in spans or ():
            try:
                self.record(Span.from_json(payload))
            except ValueError:
                continue
            count += 1
        return count

    # ---------------------------------------------------------------- reading
    @property
    def spans(self) -> tuple[Span, ...]:
        with self._lock:
            return tuple(self._spans)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def export(self, limit: int | None = None) -> list[dict]:
        """Span documents for the wire, earliest first, optionally capped."""
        spans = sorted(self.spans, key=lambda s: s.start)
        if limit is not None:
            spans = spans[:limit]
        return [span.to_json() for span in spans]

    def to_json(self, limit: int | None = None) -> dict:
        doc = {
            "trace_id": self.trace_id,
            "origin": self.origin,
            "spans": self.export(limit),
        }
        dropped = self.dropped + max(0, len(self.spans) - len(doc["spans"]))
        if dropped:
            doc["dropped"] = dropped
        return doc


class TraceContext:
    """The picklable hand-off of an active trace scope into pool tasks.

    Captured on the submitting thread (:func:`capture`), adopted inside the
    task (:func:`adopt`).  The live tracer reference survives same-process
    hand-offs (thread pools) but is deliberately dropped by pickling, so a
    process-pool worker adopting the context builds a *local* tracer and the
    caller ships its exported spans back in the task result.
    """

    __slots__ = ("trace_id", "parent_id", "tracer")

    def __init__(self, trace_id: str, parent_id: str | None, tracer: Tracer | None) -> None:
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.tracer = tracer

    def __getstate__(self):
        return (self.trace_id, self.parent_id)

    def __setstate__(self, state):
        self.trace_id, self.parent_id = state
        self.tracer = None


# The active scope: ``(tracer, enclosing span id | None)``.  One contextvar
# read is the entire cost of an instrumented stage when tracing is off.
_SCOPE: ContextVar[tuple[Tracer, str | None] | None] = ContextVar("repro_trace_scope", default=None)


def current_tracer() -> Tracer | None:
    scope = _SCOPE.get()
    return scope[0] if scope is not None else None


def current_span_id() -> str | None:
    scope = _SCOPE.get()
    return scope[1] if scope is not None else None


@contextmanager
def activate(tracer: Tracer, parent_id: str | None = None) -> Iterator[Tracer]:
    """Make *tracer* the ambient tracer for the body of the ``with``."""
    token = _SCOPE.set((tracer, parent_id if parent_id is not None else tracer.root_parent_id))
    try:
        yield tracer
    finally:
        _SCOPE.reset(token)


def capture() -> TraceContext | None:
    """The active scope as a :class:`TraceContext`, or ``None`` when untraced."""
    scope = _SCOPE.get()
    if scope is None:
        return None
    tracer, span_id = scope
    return TraceContext(tracer.trace_id, span_id, tracer)


@contextmanager
def adopt(context: TraceContext | None) -> Iterator[Tracer | None]:
    """Re-enter a captured scope inside a pool task.

    Yields ``None`` when there is nothing to ship back: either the context is
    ``None`` (untraced) or it still holds the live tracer (same process —
    spans were recorded directly).  Yields a fresh *local* tracer when the
    context crossed a process boundary; the caller must return
    ``local.export()`` alongside its result.
    """
    if context is None:
        yield None
        return
    if context.tracer is not None:
        with activate(context.tracer, context.parent_id):
            yield None
        return
    local = Tracer(context.trace_id, parent_id=context.parent_id)
    with activate(local):
        yield local


class _NoopSpan:
    """Shared do-nothing scope: the entire cost of telemetry-off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass

    def done(self, **attrs) -> None:
        pass

    @property
    def closed(self) -> bool:
        return True


_NOOP = _NoopSpan()


class _SpanScope:
    """A live span being timed; context manager with an explicit :meth:`done`."""

    __slots__ = ("_tracer", "_span", "_token", "_wall0", "_cpu0", "_closed")

    def __init__(self, tracer: Tracer, name: str, parent_id: str | None, attrs: dict) -> None:
        self._tracer = tracer
        self._span = Span(
            trace_id=tracer.trace_id,
            span_id=new_span_id(),
            parent_id=parent_id,
            name=name,
            origin=tracer.origin,
            start=time.time(),
            wall_seconds=0.0,
            cpu_seconds=0.0,
            attrs=attrs,
        )
        self._token = None
        self._wall0 = 0.0
        self._cpu0 = 0.0
        self._closed = False

    @property
    def span_id(self) -> str:
        return self._span.span_id

    @property
    def closed(self) -> bool:
        return self._closed

    def set(self, **attrs) -> None:
        """Attach count-valued attributes; never pass data values."""
        self._span.attrs.update(attrs)

    def __enter__(self) -> "_SpanScope":
        self._token = _SCOPE.set((self._tracer, self._span.span_id))
        self._wall0 = time.perf_counter()
        self._cpu0 = time.thread_time()
        return self

    def done(self, **attrs) -> None:
        """Close the span now (idempotent); ``__exit__`` calls this."""
        if self._closed:
            return
        self._closed = True
        self._span.wall_seconds = time.perf_counter() - self._wall0
        self._span.cpu_seconds = time.thread_time() - self._cpu0
        if attrs:
            self._span.attrs.update(attrs)
        if self._token is not None:
            _SCOPE.reset(self._token)
            self._token = None
        self._tracer.record(self._span)

    def __exit__(self, *exc_info) -> bool:
        self.done()
        return False


def span(name: str, **attrs):
    """Open a named span under the ambient scope — or a free no-op without one.

    Usage::

        with span("detect.parse", rows=rows):
            ...

    Attributes must be counts/flags, never data values.  The returned scope
    also supports explicit closing (``scope.done(status=200)``) for code that
    cannot structure the stage as a ``with`` block.
    """
    scope = _SCOPE.get()
    if scope is None:
        return _NOOP
    tracer, parent_id = scope
    return _SpanScope(tracer, name, parent_id, attrs)


# ---------------------------------------------------------------- rendering
def format_span_tree(spans: Iterable[Span | Mapping]) -> list[str]:
    """Render spans as an indented tree, one line per span.

    Accepts live :class:`Span` objects or their JSON documents.  Spans whose
    parent is absent (the remote caller's span, a dropped span) become
    roots.  Children sort by start time; cross-process clock skew can only
    reorder siblings, never corrupt the tree.
    """
    parsed = [s if isinstance(s, Span) else Span.from_json(s) for s in spans]
    by_parent: dict[str | None, list[Span]] = {}
    ids = {s.span_id for s in parsed}
    for s in parsed:
        key = s.parent_id if s.parent_id in ids else None
        by_parent.setdefault(key, []).append(s)
    for children in by_parent.values():
        children.sort(key=lambda s: (s.start, s.span_id))

    lines: list[str] = []

    def walk(parent: str | None, depth: int) -> None:
        for s in by_parent.get(parent, ()):
            lines.append(
                "{indent}{name}  wall={wall:.6f}s cpu={cpu:.6f}s  [{origin}]{attrs}".format(
                    indent="  " * depth,
                    name=s.name,
                    wall=s.wall_seconds,
                    cpu=s.cpu_seconds,
                    origin=s.origin,
                    attrs=(" " + " ".join(f"{k}={v}" for k, v in sorted(s.attrs.items())))
                    if s.attrs
                    else "",
                )
            )
            walk(s.span_id, depth + 1)

    walk(None, 0)
    return lines
