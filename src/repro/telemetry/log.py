"""Opt-in structured JSON logging — one JSON object per line, redacted.

Enabled by ``repro serve --log-json`` (and available to any embedder via
:func:`configure_json_logging`).  Every record is stamped with the ambient
trace/span ids from :mod:`repro.telemetry.trace`, so a grep for one trace id
crosses process and machine boundaries exactly like the span tree does.

Redaction is structural, not best-effort: tenants appear only as
:func:`tenant_hash` digests, and :func:`redact_fields` drops any field whose
name suggests payload data or credentials (``token``, ``secret``, ``key``,
``identifier``, ``cell``, ``value``, …) before it ever reaches a formatter.
Cell values and dataset rows never enter log calls in the first place — the
service logs counts, routes, statuses and durations only.
"""

from __future__ import annotations

import hashlib
import json
import logging
import sys
from typing import IO, Mapping

from repro.telemetry import trace as _trace

__all__ = [
    "JsonLogFormatter",
    "configure_json_logging",
    "log_event",
    "redact_fields",
    "tenant_hash",
    "DEFAULT_LOGGER_NAME",
]

DEFAULT_LOGGER_NAME = "repro"

#: Field-name substrings that must never reach a log line.  ``tenant`` itself
#: is allowed only pre-hashed (``tenant_hash``), which the blocklist admits
#: because the check runs against the *raw* name.
_BLOCKED_SUBSTRINGS = (
    "token",
    "secret",
    "password",
    "identifier",
    "ssn",
    "cell",
    "value",
    "mark_bits",
    "k1",
    "k2",
    "encryption",
)

#: Longest string a structured field may carry — anything bigger is payload
#: data masquerading as metadata.
_MAX_FIELD_CHARS = 200


def tenant_hash(tenant_id: str) -> str:
    """A stable, non-reversible per-tenant log label (sha256 prefix)."""
    return hashlib.sha256(str(tenant_id).encode("utf-8")).hexdigest()[:12]


def _blocked(name: str) -> bool:
    lowered = name.lower()
    if lowered == "tenant_hash":
        return False
    if lowered == "tenant" or lowered.startswith("tenant_"):
        return True
    return any(fragment in lowered for fragment in _BLOCKED_SUBSTRINGS)


def redact_fields(fields: Mapping[str, object]) -> dict:
    """The loggable subset of *fields*: blocked names dropped, values coerced.

    Values become JSON scalars (bool/int/float/short str); anything else is
    replaced by its type name, so an accidental ``rows=table`` can never leak
    records.
    """
    out: dict = {}
    for name, value in fields.items():
        if _blocked(str(name)):
            continue
        if isinstance(value, bool) or value is None:
            out[name] = value
        elif isinstance(value, (int, float)):
            out[name] = value
        elif isinstance(value, str):
            out[name] = value if len(value) <= _MAX_FIELD_CHARS else value[:_MAX_FIELD_CHARS]
        else:
            out[name] = f"<{type(value).__name__}>"
    return out


class JsonLogFormatter(logging.Formatter):
    """One sorted-key JSON object per record, trace-stamped."""

    def format(self, record: logging.LogRecord) -> str:
        doc: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        tracer = _trace.current_tracer()
        if tracer is not None:
            doc["trace_id"] = tracer.trace_id
            span_id = _trace.current_span_id()
            if span_id is not None:
                doc["span_id"] = span_id
        fields = getattr(record, "repro_fields", None)
        if fields:
            # Re-redact at format time: fields attached through a bare
            # ``logger.info(..., extra=...)`` get the same guarantees as
            # fields routed through log_event().
            doc.update(redact_fields(fields))
        if record.exc_info and record.exc_info[0] is not None:
            doc["exc_type"] = record.exc_info[0].__name__
        return json.dumps(doc, sort_keys=True)


def configure_json_logging(
    stream: IO[str] | None = None,
    *,
    level: int = logging.INFO,
    name: str = DEFAULT_LOGGER_NAME,
) -> logging.Logger:
    """A logger emitting one JSON line per record to *stream* (default stderr).

    Idempotent per ``(name, stream)``: reconfiguring replaces this module's
    handler instead of stacking another, so tests and repeated ``serve``
    calls don't multiply output lines.
    """
    logger = logging.getLogger(name)
    logger.setLevel(level)
    logger.propagate = False
    target = stream if stream is not None else sys.stderr
    for handler in list(logger.handlers):
        if isinstance(handler.formatter, JsonLogFormatter):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(target)
    handler.setFormatter(JsonLogFormatter())
    logger.addHandler(handler)
    return logger


def log_event(logger: logging.Logger | None, event: str, **fields) -> None:
    """Log *event* with redacted structured *fields*; no-op without a logger."""
    if logger is None:
        return
    logger.info(event, extra={"repro_fields": redact_fields(fields)})
