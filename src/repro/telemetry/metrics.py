"""Fixed-bucket latency histograms and the Prometheus text exposition.

:class:`Histogram` is the one histogram shape the service uses: a fixed,
sorted tuple of finite upper bounds (plus an implicit ``+Inf`` bucket),
cumulative rendering for Prometheus, and interpolated quantiles for the JSON
snapshot.  It is deliberately **not** internally locked — every instance in
the service lives inside :class:`~repro.service.http.metrics.ServiceMetrics`,
which already serialises all recording and reading under one lock; a
per-observation lock here would just double the locking on the hot path.

:func:`render_prometheus` turns ``(name, type, help, samples)`` families into
`text exposition format`__ — the ``# HELP``/``# TYPE`` comment lines,
``le``-labelled cumulative buckets with *inclusive* upper bounds, ``+Inf``,
``_sum`` and ``_count`` series — parsable by any Prometheus scraper and by
``tools/check_prometheus.py``.

__ https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Mapping, Sequence

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "MetricFamily",
    "render_prometheus",
]

#: Upper bounds (seconds) for request/stage latencies: 1 ms to 60 s, roughly
#: logarithmic.  Covers a sub-millisecond ``/healthz`` through a multi-second
#: 100k-row protect; anything slower lands in ``+Inf``.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)


class Histogram:
    """Counts of observations in fixed buckets; quantiles by interpolation.

    Bucket *i* holds observations ``x`` with ``bounds[i-1] < x <= bounds[i]``
    (Prometheus ``le`` semantics: upper bounds are inclusive); one extra
    bucket holds everything above the last bound.  Not thread-safe on its
    own — callers serialise access (see module docstring).
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(bound) for bound in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        # bisect_left gives the first bound >= value, which is exactly the
        # inclusive-upper-bound bucket; values past the last bound land in
        # the +Inf slot at index len(bounds).
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def quantile(self, q: float) -> float:
        """The *q*-quantile (0..1), linearly interpolated within its bucket.

        Observations in the ``+Inf`` bucket are attributed the last finite
        bound — the honest answer ("at least this much") without inventing an
        upper limit.  Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                lower = self.bounds[index - 1] if index else 0.0
                upper = self.bounds[index]
                return lower + (upper - lower) * ((rank - previous) / bucket_count)
        return self.bounds[-1]

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs; ``inf`` bound last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            running += bucket_count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def snapshot(self, *, precision: int = 6) -> dict:
        """The JSON view: count, sum and interpolated p50/p95/p99."""
        return {
            "count": self.count,
            "sum_seconds": round(self.total, precision),
            "p50_seconds": round(self.quantile(0.50), precision),
            "p95_seconds": round(self.quantile(0.95), precision),
            "p99_seconds": round(self.quantile(0.99), precision),
        }


# ------------------------------------------------------------------ exposition
class MetricFamily:
    """One metric name with its type, help text and samples.

    *samples* are ``(labels, value)`` pairs for ``counter``/``gauge``
    families and ``(labels, histogram)`` pairs for ``histogram`` families;
    labels are plain mappings.
    """

    __slots__ = ("name", "kind", "help", "samples")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        samples: Iterable[tuple[Mapping[str, str], object]],
    ) -> None:
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unsupported metric type {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help_text
        self.samples = list(samples)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(labels: Mapping[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [(str(k), str(v)) for k, v in labels.items()] + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape_label(value)}"' for key, value in pairs)
    return "{" + body + "}"


def _number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(families: Iterable[MetricFamily]) -> str:
    """The text exposition of *families*; ends with a newline."""
    lines: list[str] = []
    for family in families:
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if family.kind == "histogram":
            for labels, histogram in family.samples:
                for bound, cumulative in histogram.cumulative_buckets():
                    label_text = _labels(labels, (("le", _number(bound)),))
                    lines.append(f"{family.name}_bucket{label_text} {cumulative}")
                lines.append(f"{family.name}_sum{_labels(labels)} {_number(histogram.total)}")
                lines.append(f"{family.name}_count{_labels(labels)} {histogram.count}")
        else:
            for labels, value in family.samples:
                lines.append(f"{family.name}{_labels(labels)} {_number(float(value))}")
    return "\n".join(lines) + "\n"
