"""Attacker's-eye view: how much damage does it take to erase the mark?

A data thief who bought (or stole) the outsourced table wants to resell it
without the hospital being able to prove ownership.  They do not know the
secret watermarking key, so all they can do is degrade the data and hope the
mark goes with it.  This script plays the four attacks of the paper's
evaluation at increasing intensity and reports the mark loss after each —
together with how much the attack degraded the data itself, which is the
attacker's real constraint: a destroyed table is worthless.

Run with::

    python examples/attack_robustness_study.py
"""

from __future__ import annotations

from repro import (
    KAnonymitySpec,
    ProtectionFramework,
    UsageMetrics,
    generate_medical_table,
    standard_ontology,
    watermarking_information_loss,
)
from repro.attacks import (
    GeneralizationAttack,
    SubsetAdditionAttack,
    SubsetAlterationAttack,
    SubsetDeletionAttack,
)
from repro.binning.kanonymity import EnforcementMode

FRACTIONS = (0.2, 0.4, 0.6, 0.8)


def main() -> None:
    table = generate_medical_table(size=6_000, seed=13)
    trees = dict(standard_ontology().items())
    framework = ProtectionFramework(
        trees,
        UsageMetrics.uniform_depth(trees, depth=1),
        KAnonymitySpec(k=20, mode=EnforcementMode.MONO, epsilon=5),
        encryption_key="owner-encryption-key",
        watermark_secret="owner-watermark-key",
        eta=50,
    )
    protected = framework.protect(table)
    print(f"protected table: {len(protected.outsourced_table)} rows, 20-bit mark embedded (eta=50)")
    print()

    header = f"{'attack':<28} {'intensity':>10} {'rows touched':>13} {'mark loss':>10}"
    print(header)
    print("-" * len(header))

    for fraction in FRACTIONS:
        for name, attack in (
            ("subset alteration", SubsetAlterationAttack(fraction, seed=1)),
            ("subset addition", SubsetAdditionAttack(fraction, seed=2)),
            ("subset deletion", SubsetDeletionAttack(fraction, seed=3)),
        ):
            result = attack.run(protected.watermarked)
            loss = framework.mark_loss(result.attacked, protected.mark)
            print(f"{name:<28} {fraction:>9.0%} {result.rows_touched:>13} {loss:>9.0%}")
        print()

    for levels in (1, 2):
        result = GeneralizationAttack(levels=levels).run(protected.watermarked)
        loss = framework.mark_loss(result.attacked, protected.mark)
        degradation = watermarking_information_loss(protected.binned, result.attacked)["__normalized__"]
        print(
            f"{'generalization attack':<28} {f'{levels} level':>10} {result.rows_touched:>13} {loss:>9.0%}"
            f"   (table degraded by {degradation:.1%})"
        )

    print()
    print(
        "Conclusion: even the heaviest usable attacks leave most of the 20 mark bits\n"
        "intact, and the generalization attack — fatal to single-level schemes — barely\n"
        "dents the hierarchical embedding."
    )


if __name__ == "__main__":
    main()
