"""Quickstart: protect a medical table and verify the mark in ~40 lines.

Run with::

    python examples/quickstart.py
"""

from repro import (
    KAnonymitySpec,
    ProtectionFramework,
    UsageMetrics,
    generate_medical_table,
    mark_loss,
    standard_ontology,
)
from repro.binning.kanonymity import EnforcementMode


def main() -> None:
    # 1. The hospital's raw table: R(ssn, age, zip_code, doctor, symptom, prescription).
    table = generate_medical_table(size=5_000, seed=42)
    print(f"raw table: {len(table)} rows, columns {table.schema.column_names}")
    print(f"  first row: {table[0]}")

    # 2. Configure the protection framework (Figure 2 of the paper):
    #    domain hierarchy trees, usage metrics, k-anonymity spec, secrets.
    trees = dict(standard_ontology().items())
    framework = ProtectionFramework(
        trees,
        UsageMetrics.uniform_depth(trees, depth=1),   # maximal generalization nodes
        KAnonymitySpec(k=20, mode=EnforcementMode.MONO, epsilon=5),
        encryption_key="hospital-encryption-secret",
        watermark_secret="hospital-watermark-secret",
        eta=75,            # on average 1 tuple in 75 carries a mark bit
        mark_length=20,    # the paper's 20-bit mark
    )

    # 3. Protect: bin (k-anonymity + encrypted identifiers), then watermark.
    protected = framework.protect(table)
    print(f"\noutsourced table: {len(protected.outsourced_table)} rows")
    print(f"  first row: {protected.outsourced_table[0]}")
    print(f"  binning information loss: {protected.binning_result.normalized_information_loss:.1%}")
    print(f"  cells changed by watermarking: {protected.embedding_report.cells_changed}")

    # 4. Later: verify ownership of a table found in the wild.
    detection = framework.detect(protected.watermarked)
    loss = mark_loss(protected.mark, detection.mark)
    print(f"\nembedded mark : {protected.mark}")
    print(f"detected mark : {detection.mark}")
    print(f"mark loss     : {loss:.0%}  ->  {'ownership established' if loss == 0 else 'degraded'}")


if __name__ == "__main__":
    main()
