"""Rightful-ownership dispute: hospital vs. data thief in front of the judge.

The scenario of Section 5.4: a biotech reseller obtains the hospital's
outsourced table, embeds their *own* mark on top of it (Attack 1) and claims
they compiled the data themselves.  Both parties can point at "their" mark, so
mark presence alone settles nothing.  The dispute is resolved by the protocol
built on the encrypted identifying column:

* each claimant presents a registered statistic ``v`` and the keys backing it,
* the court recomputes the statistic from the decrypted identifiers — which
  only works with the true owner's encryption key,
* the extracted mark must equal the one-way image ``F(v)``.

Run with::

    python examples/ownership_dispute.py
"""

from __future__ import annotations

from repro import (
    KAnonymitySpec,
    ProtectionFramework,
    UsageMetrics,
    generate_medical_table,
    standard_ontology,
)
from repro.attacks import AdditiveMarkAttack, SubtractiveMarkAttack
from repro.binning.kanonymity import EnforcementMode
from repro.watermarking.hierarchical import HierarchicalWatermarker
from repro.watermarking.mark import mark_loss


def describe(verdict, owner_name: str, attacker_name: str) -> None:
    for assessment in verdict.assessments:
        status = "VALID" if assessment.valid else "rejected"
        print(
            f"    {assessment.claimant:<12} -> {status:<8} "
            f"(decryption {'ok' if assessment.decryption_ok else 'FAILED'}, "
            f"statistic {'ok' if assessment.statistic_ok else 'FAILED'}, "
            f"mark {'ok' if assessment.mark_matches else 'FAILED'})"
        )
    print(f"    court ruling: {verdict.winner or 'unresolved'}")


def main() -> None:
    print("Setting the scene: the hospital protects and outsources its table.")
    table = generate_medical_table(size=5_000, seed=2024)
    trees = dict(standard_ontology().items())
    hospital = ProtectionFramework(
        trees,
        UsageMetrics.uniform_depth(trees, depth=1),
        KAnonymitySpec(k=20, mode=EnforcementMode.MONO, epsilon=5),
        encryption_key="hospital-identifier-key",
        watermark_secret="hospital-watermark-key",
        eta=50,
    )
    protected = hospital.protect(table)
    owner_claim = hospital.owner_claim("hospital")
    print(f"  registered statistic v = {protected.registered_statistic:,.0f}")
    print(f"  registered mark F(v)   = {protected.mark}")

    print()
    print("=" * 70)
    print("Attack 1 — the reseller stamps their own mark on the stolen table")
    print("=" * 70)
    additive = AdditiveMarkAttack(attacker="biotech-reseller", seed=1, eta=50)
    attack1 = additive.run(protected.watermarked, mark_length=20)
    # Both marks really are detectable — that is what makes the dispute hard.
    owner_loss = hospital.mark_loss(attack1.attack.attacked, protected.mark)
    reseller_loss = mark_loss(
        attack1.attacker_mark,
        HierarchicalWatermarker(attack1.attacker_key, copies=4).detect(attack1.attack.attacked, 20).mark,
    )
    print(f"  hospital mark still readable (loss {owner_loss:.0%}); reseller mark readable (loss {reseller_loss:.0%})")
    print("  the court assesses both claims:")
    verdict = hospital.resolve_dispute(attack1.attack.attacked, [owner_claim, attack1.attacker_claim])
    describe(verdict, "hospital", "biotech-reseller")

    print()
    print("=" * 70)
    print("Attack 2 — the reseller fabricates a bogus 'original' table")
    print("=" * 70)
    subtractive = SubtractiveMarkAttack(attacker="biotech-reseller", seed=2, eta=50)
    attack2 = subtractive.run(protected.watermarked, mark_length=20)
    print("  the dispute is over the hospital's published table; the reseller backs")
    print("  their claim with the fabricated original and a made-up statistic:")
    verdict = hospital.resolve_dispute(protected.watermarked, [owner_claim, attack2.attacker_claim])
    describe(verdict, "hospital", "biotech-reseller")

    print()
    print(
        "In both attacks the reseller fails the statistic check — they cannot decrypt\n"
        "the identifying column — so the hospital's is the only valid claim."
    )


if __name__ == "__main__":
    main()
