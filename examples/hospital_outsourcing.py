"""Hospital → research institute outsourcing scenario.

A hospital must hand its clinical records to a research institute for a drug
study (the motivating scenario of the paper's introduction).  Before the data
leave the hospital they are

1. binned so that no quasi-identifier combination singles out fewer than k
   patients, with the SSN column replaced by its encryption (traceability for
   the hospital, anonymity for everyone else), and
2. watermarked so that the hospital can later prove the data came from it.

The script walks through the whole flow, prints what the researcher sees,
checks the privacy guarantee, quantifies the information loss, and exports the
outsourced table to CSV.

Run with::

    python examples/hospital_outsourcing.py
"""

from __future__ import annotations

import os
import tempfile

from repro import (
    KAnonymitySpec,
    ProtectionFramework,
    UsageMetrics,
    generate_medical_table,
    seamlessness_report,
    standard_ontology,
    watermarking_information_loss,
)
from repro.binning.kanonymity import EnforcementMode

K = 25
ETA = 75


def main() -> None:
    print("=" * 70)
    print("Step 0 — the hospital's raw extract")
    print("=" * 70)
    table = generate_medical_table(size=8_000, seed=7)
    print(f"{len(table)} clinical records; example rows:")
    for row in list(table)[:3]:
        print(f"  {row}")

    print()
    print("=" * 70)
    print(f"Step 1 — protection (k = {K}, eta = {ETA})")
    print("=" * 70)
    trees = dict(standard_ontology().items())
    framework = ProtectionFramework(
        trees,
        UsageMetrics.uniform_depth(trees, depth=1),
        KAnonymitySpec(k=K, mode=EnforcementMode.MONO, epsilon=8),
        encryption_key="st-elsewhere-identifier-key",
        watermark_secret="st-elsewhere-watermark-key",
        eta=ETA,
        mark_length=20,
    )
    protected = framework.protect(table)
    binned, watermarked = protected.binned, protected.watermarked

    print("what the research institute receives:")
    for row in list(watermarked.table)[:3]:
        print(f"  {row}")

    print()
    print("per-column binning information loss (Equations 1-3):")
    for column, loss in sorted(protected.binning_result.information_losses.items()):
        print(f"  {column:>14}: {loss:6.1%}")
    print(f"  {'normalized':>14}: {protected.binning_result.normalized_information_loss:6.1%}")

    extra = watermarking_information_loss(binned, watermarked)
    print(f"additional loss caused by watermarking: {extra['__normalized__']:.2%}")

    print()
    print("=" * 70)
    print("Step 2 — privacy check on the outsourced table")
    print("=" * 70)
    for column in watermarked.quasi_columns:
        sizes = watermarked.bin_sizes(column)
        print(
            f"  {column:>14}: {len(sizes):>3} bins, smallest bin {min(sizes.values()):>4} records "
            f"(k = {K}: {'OK' if min(sizes.values()) >= K else 'VIOLATED'})"
        )
    report = seamlessness_report(binned, watermarked)
    print(
        f"  watermarking changed {sum(c.bins_changed for c in report.columns)} bins "
        f"and pushed {sum(c.bins_below_k for c in report.columns)} below k"
    )

    print()
    print("=" * 70)
    print("Step 3 — traceability for the hospital")
    print("=" * 70)
    from repro.crypto.cipher import FieldEncryptor

    encryptor = FieldEncryptor("st-elsewhere-identifier-key")
    token = watermarked.table[0]["ssn"]
    print(f"  outsourced identifier token : {token}")
    print(f"  hospital-side decryption    : {encryptor.decrypt(token)}")
    print(f"  original SSN                : {table[0]['ssn']}")

    print()
    print("=" * 70)
    print("Step 4 — hand-over")
    print("=" * 70)
    out_path = os.path.join(tempfile.gettempdir(), "outsourced_medical_data.csv")
    export = watermarked.table.copy()
    for row in export:
        row["age"] = str(row["age"])  # intervals serialise as "[25,30)"
    export.to_csv(out_path)
    print(f"  outsourced table written to {out_path}")
    print(f"  mark retained by the hospital: {protected.mark} (plus the secret keys)")


if __name__ == "__main__":
    main()
