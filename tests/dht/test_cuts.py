"""Tests for cut enumeration between frontiers (the Figure 6 machinery)."""

import pytest

from repro.dht.builders import binary_numeric_tree, from_nested_mapping
from repro.dht.cuts import (
    count_cuts_between,
    enumerate_cuts,
    enumerate_cuts_between,
    is_frontier_at_or_above,
)


@pytest.fixture()
def figure6_tree():
    """A numeric tree shaped like Figure 6: [0,150) in six 25-year leaves."""
    return binary_numeric_tree("age", 0, 150, n_intervals=6)


class TestFrontierOrdering:
    def test_root_is_above_everything(self, role_tree):
        assert is_frontier_at_or_above(role_tree, [role_tree.root], role_tree.leaves())

    def test_leaves_are_not_above_internal_nodes(self, role_tree):
        assert not is_frontier_at_or_above(role_tree, role_tree.leaves(), [role_tree.node("Doctor")])

    def test_frontier_is_above_itself(self, role_tree):
        frontier = [role_tree.node("Medical staff"), role_tree.node("Administrative staff")]
        assert is_frontier_at_or_above(role_tree, frontier, frontier)


class TestEnumeration:
    def test_all_cuts_of_a_tiny_tree(self, tiny_tree):
        cuts = enumerate_cuts(tiny_tree)
        # Cuts: root | {Medicine, Surgery} | {Medicine, leaves(S)} |
        #       {leaves(M), Surgery} | {leaves(M), leaves(S)}  -> 5
        assert len(cuts) == 5
        assert all(tiny_tree.is_valid_cut(cut) for cut in cuts)

    def test_count_matches_enumeration(self, tiny_tree, role_tree):
        for tree in (tiny_tree, role_tree):
            cuts = enumerate_cuts(tree)
            assert count_cuts_between(tree, [tree.root], tree.leaves()) == len(cuts)

    def test_figure6_allowable_generalizations(self, figure6_tree):
        """The example of Section 4.2.2 lists six allowable generalizations."""
        tree = figure6_tree
        # Minimal generalization nodes as in Figure 6: the three left leaves
        # generalized one level up is not needed; we mimic the figure's shape:
        # minimal = {[0,25),[25,50),[50,75),[75,100),[100,125),[125,150)} and
        # maximal = the two depth-1 nodes.  The count then depends on the tree
        # shape; assert consistency rather than the exact figure (our binary
        # combination differs from the hand-drawn one).
        minimal = tree.leaves()
        maximal = [child for child in tree.root.children]
        cuts = enumerate_cuts_between(tree, maximal, minimal)
        assert count_cuts_between(tree, maximal, minimal) == len(cuts)
        assert all(tree.is_valid_cut(cut) for cut in cuts)
        # Every cut lies between the frontiers.
        minimal_set = set(minimal)
        for cut in cuts:
            assert is_frontier_at_or_above(tree, maximal, cut)
            assert is_frontier_at_or_above(tree, cut, minimal)

    def test_degenerate_frontiers(self, role_tree):
        # upper == lower -> exactly one cut (the frontier itself).
        frontier = [role_tree.node("Medical staff"), role_tree.node("Administrative staff")]
        cuts = enumerate_cuts_between(role_tree, frontier, frontier)
        assert len(cuts) == 1
        assert set(cuts[0]) == set(frontier)

    def test_every_enumerated_cut_is_unique(self, role_tree):
        cuts = enumerate_cuts(role_tree)
        as_sets = {frozenset(node.name for node in cut) for cut in cuts}
        assert len(as_sets) == len(cuts)

    def test_limit_raises_overflow(self, role_tree):
        with pytest.raises(OverflowError):
            enumerate_cuts(role_tree, limit=2)

    def test_invalid_frontiers_rejected(self, role_tree):
        with pytest.raises(ValueError):
            enumerate_cuts_between(role_tree, [role_tree.node("Medical staff")], role_tree.leaves())
        with pytest.raises(ValueError):
            enumerate_cuts_between(role_tree, [role_tree.root], [role_tree.node("Doctor")])
        with pytest.raises(ValueError):
            # Upper below lower.
            enumerate_cuts_between(
                role_tree,
                role_tree.leaves(),
                [role_tree.root],
            )

    def test_count_requires_ordered_frontiers(self, role_tree):
        with pytest.raises(ValueError):
            count_cuts_between(role_tree, role_tree.leaves(), [role_tree.root])

    def test_medium_tree_count(self, role_tree):
        # Role tree: root -> 2 -> 2 each -> leaves (3,3) and (2,2).
        # cuts(leaf-parent with n leaves) = 2; cuts(division) = 1 + 2*2 = 5;
        # cuts(root) = 1 + 5*5 = 26.
        assert count_cuts_between(role_tree, [role_tree.root], role_tree.leaves()) == 26
