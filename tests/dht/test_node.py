"""Tests for DHT nodes and intervals."""

import pytest

from repro.dht.node import DHTNode, Interval


class TestInterval:
    def test_width_and_contains(self):
        interval = Interval(10.0, 20.0)
        assert interval.width == 10.0
        assert interval.contains(10.0)
        assert interval.contains(19.999)
        assert not interval.contains(20.0)
        assert not interval.contains(9.999)

    def test_contains_interval(self):
        outer = Interval(0.0, 100.0)
        assert outer.contains_interval(Interval(10.0, 20.0))
        assert outer.contains_interval(outer)
        assert not Interval(10.0, 20.0).contains_interval(outer)

    def test_merge_adjacent(self):
        assert Interval(0.0, 10.0).merge(Interval(10.0, 25.0)) == Interval(0.0, 25.0)

    def test_merge_disjoint_rejected(self):
        with pytest.raises(ValueError):
            Interval(0.0, 10.0).merge(Interval(20.0, 30.0))

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Interval(10.0, 10.0)
        with pytest.raises(ValueError):
            Interval(10.0, 5.0)

    def test_str_formats_integers_compactly(self):
        assert str(Interval(0.0, 25.0)) == "[0,25)"
        assert str(Interval(2.5, 5.0)) == "[2.5,5)"

    def test_ordering(self):
        assert Interval(0.0, 10.0) < Interval(5.0, 10.0)

    def test_hashable(self):
        assert len({Interval(0, 1), Interval(0, 1), Interval(1, 2)}) == 2


class TestDHTNode:
    def _small_tree(self):
        root = DHTNode("root", "root")
        a = DHTNode("a", "a")
        b = DHTNode("b", "b")
        a1 = DHTNode("a1", "a1")
        a2 = DHTNode("a2", "a2")
        root.add_child(a)
        root.add_child(b)
        a.add_child(a1)
        a.add_child(a2)
        return root, a, b, a1, a2

    def test_leaf_and_root_flags(self):
        root, a, b, a1, a2 = self._small_tree()
        assert root.is_root and not root.is_leaf
        assert b.is_leaf and not b.is_root
        assert not a.is_leaf

    def test_add_child_sets_parent(self):
        root, a, *_ = self._small_tree()
        assert a.parent is root

    def test_add_child_rejects_reparenting(self):
        root, a, b, *_ = self._small_tree()
        with pytest.raises(ValueError):
            b.add_child(a)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            DHTNode("", "value")

    def test_iter_subtree_preorder(self):
        root, a, b, a1, a2 = self._small_tree()
        assert [node.name for node in root.iter_subtree()] == ["root", "a", "a1", "a2", "b"]

    def test_leaves(self):
        root, a, b, a1, a2 = self._small_tree()
        assert [leaf.name for leaf in root.leaves()] == ["a1", "a2", "b"]
        assert [leaf.name for leaf in a.leaves()] == ["a1", "a2"]
        assert b.leaves() == [b]

    def test_depth(self):
        root, a, b, a1, _ = self._small_tree()
        assert root.depth() == 0
        assert a.depth() == 1
        assert a1.depth() == 2

    def test_ancestors(self):
        root, a, _, a1, _ = self._small_tree()
        assert [node.name for node in a1.ancestors()] == ["a", "root"]
        assert [node.name for node in a1.ancestors(include_self=True)] == ["a1", "a", "root"]
        assert root.ancestors() == []

    def test_is_ancestor_of(self):
        root, a, b, a1, _ = self._small_tree()
        assert root.is_ancestor_of(a1)
        assert a.is_ancestor_of(a1)
        assert not b.is_ancestor_of(a1)
        assert not a1.is_ancestor_of(a)
        assert not a.is_ancestor_of(a)
        assert a.is_ancestor_of(a, include_self=True)

    def test_identity_semantics(self):
        node_a = DHTNode("x", "x")
        node_b = DHTNode("x", "x")
        assert node_a != node_b
        assert node_a == node_a
        assert len({node_a, node_b}) == 2

    def test_sort_key_numeric_before_name(self):
        numeric = DHTNode("i", Interval(0, 10))
        categorical = DHTNode("a", "a")
        assert numeric.sort_key < categorical.sort_key

    def test_sort_key_orders_intervals(self):
        low = DHTNode("low", Interval(0, 10))
        high = DHTNode("high", Interval(10, 20))
        assert sorted([high, low], key=lambda n: n.sort_key) == [low, high]
