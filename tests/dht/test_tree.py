"""Tests for the DomainHierarchyTree structure (Table 1 operations)."""

import pytest

from repro.dht.builders import binary_numeric_tree, from_nested_mapping
from repro.dht.node import DHTNode, Interval
from repro.dht.tree import DomainHierarchyTree


class TestConstruction:
    def test_basic_properties(self, role_tree):
        assert role_tree.attribute == "role"
        assert not role_tree.is_numeric
        assert role_tree.root.name == "Person"
        assert len(role_tree.leaves()) == 10
        assert role_tree.height == 3
        assert len(role_tree) == len(role_tree.nodes)

    def test_duplicate_node_names_rejected(self):
        # Duplicate *values* are tolerated when only one of them is a leaf...
        root = DHTNode("root", "root")
        internal = DHTNode("x", "x")
        internal.add_child(DHTNode("xc", "xc"))
        root.add_child(internal)
        root.add_child(DHTNode("x2", "x"))
        DomainHierarchyTree("attr", root)
        # ...but duplicate node *names* never are.
        bad_root = DHTNode("root", "root")
        bad_root.add_child(DHTNode("dup", "a"))
        bad_root.add_child(DHTNode("dup", "b"))
        with pytest.raises(ValueError):
            DomainHierarchyTree("attr", bad_root)

    def test_duplicate_leaf_values_rejected(self):
        root = DHTNode("root", "root")
        root.add_child(DHTNode("a", "same"))
        root.add_child(DHTNode("b", "same"))
        with pytest.raises(ValueError):
            DomainHierarchyTree("attr", root)

    def test_empty_attribute_rejected(self, role_tree):
        with pytest.raises(ValueError):
            DomainHierarchyTree("", role_tree.root)

    def test_numeric_tree_children_must_cover_parent(self):
        root = DHTNode("root", Interval(0, 100))
        root.add_child(DHTNode("a", Interval(0, 40)))
        root.add_child(DHTNode("b", Interval(50, 100)))  # gap 40-50
        with pytest.raises(ValueError):
            DomainHierarchyTree("age", root)


class TestTraversal:
    def test_node_lookup(self, role_tree):
        assert role_tree.node("Doctor").value == "Doctor"
        with pytest.raises(KeyError):
            role_tree.node("missing")

    def test_parent_and_children(self, role_tree):
        doctor = role_tree.node("Doctor")
        assert role_tree.parent(doctor).name == "Medical staff"
        assert role_tree.parent(role_tree.root) is None
        assert {child.name for child in role_tree.children(doctor)} == {"Surgeon", "Physician", "Radiologist"}

    def test_children_are_sorted(self, role_tree):
        names = [child.name for child in role_tree.children(role_tree.node("Paramedic"))]
        assert names == sorted(names)

    def test_siblings_include_self(self, role_tree):
        nurse = role_tree.node("Nurse")
        siblings = role_tree.siblings(nurse)
        assert nurse in siblings
        assert {node.name for node in siblings} == {"Pharmacist", "Nurse", "Consultant"}

    def test_siblings_of_root(self, role_tree):
        assert role_tree.siblings(role_tree.root) == [role_tree.root]

    def test_subtree_leaves(self, role_tree):
        leaves = role_tree.subtree_leaves(role_tree.node("Medical staff"))
        assert {leaf.name for leaf in leaves} == {
            "Surgeon",
            "Physician",
            "Radiologist",
            "Pharmacist",
            "Nurse",
            "Consultant",
        }

    def test_depth_and_path(self, role_tree):
        surgeon = role_tree.node("Surgeon")
        assert role_tree.depth(surgeon) == 3
        assert [node.name for node in role_tree.path_to_root(surgeon)] == [
            "Surgeon",
            "Doctor",
            "Medical staff",
            "Person",
        ]

    def test_is_ancestor(self, role_tree):
        assert role_tree.is_ancestor(role_tree.node("Doctor"), role_tree.node("Surgeon"))
        assert role_tree.is_ancestor(role_tree.node("Surgeon"), role_tree.node("Surgeon"))
        assert not role_tree.is_ancestor(
            role_tree.node("Surgeon"), role_tree.node("Surgeon"), include_self=False
        )
        assert not role_tree.is_ancestor(role_tree.node("Clerk"), role_tree.node("Surgeon"))

    def test_foreign_node_rejected(self, role_tree, tiny_tree):
        with pytest.raises(ValueError):
            role_tree.parent(tiny_tree.root)
        imposter = DHTNode("Doctor", "Doctor")
        with pytest.raises(ValueError):
            role_tree.children(imposter)

    def test_contains(self, role_tree, tiny_tree):
        assert role_tree.node("Nurse") in role_tree
        assert tiny_tree.root not in role_tree
        assert "Nurse" not in role_tree  # only node objects are members


class TestValueResolution:
    def test_leaf_for_raw_categorical(self, role_tree):
        assert role_tree.leaf_for_raw("Nurse").name == "Nurse"
        with pytest.raises(ValueError):
            role_tree.leaf_for_raw("Doctor")  # internal node, not a leaf value
        with pytest.raises(ValueError):
            role_tree.leaf_for_raw("not-a-role")

    def test_leaf_for_raw_numeric(self, age8_tree):
        assert age8_tree.leaf_for_raw(5).value == Interval(0, 10)
        assert age8_tree.leaf_for_raw(79.9).value == Interval(70, 80)
        with pytest.raises(ValueError):
            age8_tree.leaf_for_raw(80)
        with pytest.raises(ValueError):
            age8_tree.leaf_for_raw(-1)

    def test_value_to_node_any_level(self, role_tree):
        assert role_tree.value_to_node("Medical staff").name == "Medical staff"
        assert role_tree.value_to_node("Nurse").name == "Nurse"

    def test_value_to_node_with_candidates(self, role_tree):
        candidates = [role_tree.node("Doctor"), role_tree.node("Paramedic")]
        assert role_tree.value_to_node("Doctor", candidates).name == "Doctor"
        with pytest.raises(ValueError):
            role_tree.value_to_node("Nurse", candidates)

    def test_value_to_node_numeric_raw_scalar(self, age8_tree):
        assert age8_tree.value_to_node(42).value == Interval(40, 50)
        assert age8_tree.value_to_node(Interval(0, 20)).value == Interval(0, 20)

    def test_value_to_node_unknown_value(self, role_tree):
        with pytest.raises(ValueError):
            role_tree.value_to_node("not-in-tree")


class TestCutValidation:
    def test_leaf_cut_and_root_cut_are_valid(self, role_tree):
        assert role_tree.is_valid_cut(role_tree.leaf_cut())
        assert role_tree.is_valid_cut(role_tree.root_cut())

    def test_mixed_level_cut_is_valid(self, role_tree):
        # The broader notion of generalization: nodes at different levels.
        cut = [
            role_tree.node("Doctor"),
            role_tree.node("Pharmacist"),
            role_tree.node("Nurse"),
            role_tree.node("Consultant"),
            role_tree.node("Administrative staff"),
        ]
        assert role_tree.is_valid_cut(cut)

    def test_overlapping_cut_is_invalid(self, role_tree):
        # "Medical staff" covers "Doctor" -> a leaf under Doctor is covered twice.
        assert not role_tree.is_valid_cut([role_tree.node("Medical staff"), role_tree.node("Doctor"), role_tree.node("Administrative staff")])

    def test_incomplete_cut_is_invalid(self, role_tree):
        assert not role_tree.is_valid_cut([role_tree.node("Medical staff")])

    def test_covering_node(self, role_tree):
        cut = [role_tree.node("Medical staff"), role_tree.node("Administrative staff")]
        assert role_tree.covering_node(cut, role_tree.node("Nurse")).name == "Medical staff"
        assert role_tree.covering_node(cut, role_tree.node("Clerk")).name == "Administrative staff"

    def test_covering_node_missing(self, role_tree):
        with pytest.raises(ValueError):
            role_tree.covering_node([role_tree.node("Medical staff")], role_tree.node("Clerk"))

    def test_cut_mapping_covers_every_leaf(self, role_tree):
        cut = [role_tree.node("Medical staff"), role_tree.node("Administrative staff")]
        mapping = role_tree.cut_mapping(cut)
        assert set(mapping) == set(role_tree.leaves())
        assert all(node in cut for node in mapping.values())


class TestNumericTreeStructure:
    def test_root_covers_whole_domain(self, age8_tree):
        assert age8_tree.root.value == Interval(0, 80)
        assert age8_tree.is_numeric

    def test_leaves_partition_domain(self, age8_tree):
        leaves = sorted(age8_tree.leaves(), key=lambda n: n.value.lower)
        assert leaves[0].value.lower == 0
        assert leaves[-1].value.upper == 80
        for first, second in zip(leaves, leaves[1:]):
            assert first.value.upper == second.value.lower

    def test_binary_structure(self, age8_tree):
        internal = [node for node in age8_tree.nodes if not node.is_leaf]
        assert all(len(node.children) == 2 for node in internal)
        assert age8_tree.height == 3  # 8 leaves -> perfectly balanced
