"""Tests for the DHT builders (Figure 1 and Figure 3 constructions)."""

import pytest

from repro.dht.builders import binary_numeric_tree, from_leaf_groups, from_nested_mapping
from repro.dht.node import Interval


class TestCategoricalBuilders:
    def test_from_nested_mapping_structure(self):
        tree = from_nested_mapping(
            "role",
            "Person",
            {"Medical": {"Doctor": ["Surgeon", "Physician"]}, "Admin": ["Clerk"]},
        )
        assert tree.root.name == "Person"
        assert {leaf.name for leaf in tree.leaves()} == {"Surgeon", "Physician", "Clerk"}
        assert tree.node("Doctor").parent.name == "Medical"
        assert tree.height == 3

    def test_node_values_equal_names(self):
        tree = from_nested_mapping("x", "Root", {"A": ["a1", "a2"]})
        for node in tree.nodes:
            assert node.value == node.name

    def test_from_leaf_groups(self):
        tree = from_leaf_groups("ward", "Hospital", {"Medicine": ["Cardio"], "Surgery": ["Ortho", "Trauma"]})
        assert tree.height == 2
        assert len(tree.leaves()) == 3
        assert tree.node("Ortho").parent.name == "Surgery"

    def test_single_leaf_spec(self):
        tree = from_nested_mapping("x", "Root", {"Only": None})
        assert len(tree.leaves()) == 1
        assert tree.leaves()[0].name == "Only"

    def test_bad_spec_type_rejected(self):
        with pytest.raises(TypeError):
            from_nested_mapping("x", "Root", {"A": 42})


class TestBinaryNumericTree:
    def test_equal_width_intervals(self):
        tree = binary_numeric_tree("age", 0, 100, n_intervals=4)
        leaves = sorted(tree.leaves(), key=lambda n: n.value.lower)
        assert [leaf.value for leaf in leaves] == [
            Interval(0, 25),
            Interval(25, 50),
            Interval(50, 75),
            Interval(75, 100),
        ]
        assert tree.root.value == Interval(0, 100)

    def test_figure3_shape(self):
        # Figure 3: [0,150) in six 25-year leaves combined pairwise.
        tree = binary_numeric_tree("age", 0, 150, n_intervals=6)
        assert len(tree.leaves()) == 6
        depth1 = {child.value for child in tree.root.children}
        # The last odd node at every level is promoted unchanged, so the root
        # has the combined [0,100) and the promoted [100,150).
        assert Interval(100, 150) in depth1 or Interval(0, 100) in depth1
        assert tree.root.value == Interval(0, 150)

    def test_explicit_cut_points(self):
        tree = binary_numeric_tree("age", 0, 100, cut_points=[18, 40, 65])
        widths = sorted(leaf.value.width for leaf in tree.leaves())
        assert widths == [18, 22, 25, 35]

    def test_unequal_cut_points_validation(self):
        with pytest.raises(ValueError):
            binary_numeric_tree("age", 0, 100, cut_points=[50, 40])
        with pytest.raises(ValueError):
            binary_numeric_tree("age", 0, 100, cut_points=[0])

    def test_single_interval(self):
        tree = binary_numeric_tree("age", 0, 100, n_intervals=1)
        assert tree.root.is_leaf
        assert len(tree.leaves()) == 1

    def test_exactly_one_spec_required(self):
        with pytest.raises(ValueError):
            binary_numeric_tree("age", 0, 100)
        with pytest.raises(ValueError):
            binary_numeric_tree("age", 0, 100, n_intervals=4, cut_points=[50])

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            binary_numeric_tree("age", 100, 0, n_intervals=4)
        with pytest.raises(ValueError):
            binary_numeric_tree("age", 0, 100, n_intervals=0)

    def test_every_internal_node_covers_children(self):
        tree = binary_numeric_tree("age", 0, 150, n_intervals=10)
        for node in tree.nodes:
            if node.children:
                low = min(child.value.lower for child in node.children)
                high = max(child.value.upper for child in node.children)
                assert node.value == Interval(low, high)

    def test_large_tree_leaf_count(self):
        tree = binary_numeric_tree("age", 0, 150, n_intervals=30)
        assert len(tree.leaves()) == 30
        assert tree.height >= 5
