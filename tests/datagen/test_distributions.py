"""Tests for the data-generation distributions."""

import pytest

from repro.crypto.prng import DeterministicPRNG
from repro.datagen.distributions import AgeMixture, GroupedSkewedCategorical, SkewedCategorical


class TestSkewedCategorical:
    def test_samples_come_from_values(self):
        dist = SkewedCategorical(["a", "b", "c"], seed=1)
        rng = DeterministicPRNG(0)
        assert {dist.sample(rng) for _ in range(200)} <= {"a", "b", "c"}

    def test_skew_present(self):
        dist = SkewedCategorical([f"v{i}" for i in range(40)], exponent=1.3, seed=2)
        rng = DeterministicPRNG(1)
        counts: dict[str, int] = {}
        for _ in range(3000):
            value = dist.sample(rng)
            counts[value] = counts.get(value, 0) + 1
        assert max(counts.values()) > 8 * (3000 / 40)

    def test_probability_sums_to_one(self):
        dist = SkewedCategorical(["a", "b", "c", "d"], seed=3)
        assert abs(sum(dist.probability(v) for v in "abcd") - 1.0) < 1e-9
        assert dist.probability("missing") == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SkewedCategorical([])
        with pytest.raises(ValueError):
            SkewedCategorical(["a"], exponent=-1)

    def test_seed_changes_rank_assignment(self):
        values = [f"v{i}" for i in range(30)]
        a = SkewedCategorical(values, seed="col-a")
        b = SkewedCategorical(values, seed="col-b")
        assert a.values != b.values


class TestGroupedSkewedCategorical:
    GROUPS = {
        "g1": ["a1", "a2", "a3"],
        "g2": ["b1", "b2"],
        "g3": ["c1", "c2", "c3", "c4"],
        "g4": ["d1"],
    }

    def test_samples_respect_group_membership(self):
        dist = GroupedSkewedCategorical(self.GROUPS, seed=0)
        rng = DeterministicPRNG(0)
        all_leaves = {leaf for leaves in self.GROUPS.values() for leaf in leaves}
        assert {dist.sample(rng) for _ in range(500)} <= all_leaves

    def test_minimum_group_share_enforced(self):
        dist = GroupedSkewedCategorical(self.GROUPS, min_group_share=0.1, seed=1)
        for group in self.GROUPS:
            assert dist.group_share(group) >= 0.1 - 1e-9

    def test_group_shares_sum_to_one(self):
        dist = GroupedSkewedCategorical(self.GROUPS, min_group_share=0.05, seed=2)
        assert abs(sum(dist.group_share(group) for group in self.GROUPS) - 1.0) < 1e-9

    def test_empirical_group_floor(self):
        dist = GroupedSkewedCategorical(self.GROUPS, min_group_share=0.1, seed=3)
        rng = DeterministicPRNG(4)
        counts = {group: 0 for group in self.GROUPS}
        leaf_to_group = {leaf: group for group, leaves in self.GROUPS.items() for leaf in leaves}
        n = 4000
        for _ in range(n):
            counts[leaf_to_group[dist.sample(rng)]] += 1
        assert min(counts.values()) > 0.06 * n

    def test_validation(self):
        with pytest.raises(ValueError):
            GroupedSkewedCategorical({})
        with pytest.raises(ValueError):
            GroupedSkewedCategorical(self.GROUPS, min_group_share=0.3)  # 4 * 0.3 > 1


class TestAgeMixture:
    def test_samples_in_domain(self):
        mixture = AgeMixture()
        rng = DeterministicPRNG(5)
        samples = [mixture.sample(rng) for _ in range(2000)]
        assert all(0 <= age < 150 for age in samples)
        assert all(isinstance(age, int) for age in samples)

    def test_adults_dominate(self):
        mixture = AgeMixture()
        rng = DeterministicPRNG(6)
        samples = [mixture.sample(rng) for _ in range(3000)]
        adults = sum(1 for age in samples if 18 <= age < 90)
        assert adults > 0.7 * len(samples)

    def test_elderly_component_present(self):
        mixture = AgeMixture()
        rng = DeterministicPRNG(7)
        samples = [mixture.sample(rng) for _ in range(3000)]
        assert sum(1 for age in samples if age >= 65) > 0.15 * len(samples)

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            AgeMixture(lower=100, upper=50)
