"""Tests for the synthetic clinical data generator."""

import pytest

from repro.datagen.medical import DEFAULT_SIZE, MedicalDataGenerator, generate_medical_table
from repro.ontology.registry import standard_ontology


class TestGeneration:
    def test_size_and_schema(self, small_table):
        assert len(small_table) == 400
        assert small_table.schema.column_names == [
            "ssn",
            "age",
            "zip_code",
            "doctor",
            "symptom",
            "prescription",
        ]

    def test_default_size_matches_paper(self):
        assert DEFAULT_SIZE == 20_000
        assert MedicalDataGenerator().size == 20_000

    def test_deterministic_per_seed(self):
        a = generate_medical_table(size=100, seed=5)
        b = generate_medical_table(size=100, seed=5)
        c = generate_medical_table(size=100, seed=6)
        assert a == b
        assert a != c

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            MedicalDataGenerator(size=0)

    def test_ssns_unique_and_nine_digits(self, small_table):
        ssns = small_table.column_values("ssn")
        assert len(set(ssns)) == len(ssns)
        assert all(len(str(ssn)) == 9 and str(ssn).isdigit() for ssn in ssns)

    def test_ages_are_integers_in_domain(self, small_table):
        ages = small_table.column_values("age")
        assert all(isinstance(age, int) and 0 <= age < 150 for age in ages)


class TestDomainConsistency:
    def test_every_value_resolves_to_an_ontology_leaf(self, small_table):
        registry = standard_ontology()
        for column in registry.columns:
            tree = registry[column]
            for value in small_table.distinct_values(column):
                tree.leaf_for_raw(value)  # must not raise

    def test_top_level_categories_all_populated(self, medium_table):
        """Every depth-1 DHT node holds a non-trivial share of the rows.

        This is the property that keeps binning feasible for the k values the
        paper sweeps (see the generator's min_group_share).
        """
        registry = standard_ontology()
        n = len(medium_table)
        for column in ("zip_code", "doctor", "symptom", "prescription"):
            tree = registry[column]
            for top in tree.children(tree.root):
                leaves = {leaf.value for leaf in top.leaves()}
                count = sum(1 for value in medium_table.column_values(column) if value in leaves)
                assert count >= 0.015 * n, f"{column}/{top.name} has only {count} rows"

    def test_values_are_skewed_not_uniform(self, medium_table):
        counts = sorted(medium_table.value_counts("symptom").values(), reverse=True)
        assert counts[0] > 3 * counts[-1]

    def test_symptom_prescription_correlation(self, medium_table):
        """Circulatory diagnoses should be treated mostly with cardiovascular drugs."""
        from repro.ontology.drugs import PRESCRIPTION_SPEC
        from repro.ontology.icd9 import SYMPTOM_SPEC

        circulatory = {
            condition
            for conditions in SYMPTOM_SPEC["Circulatory system"].values()
            for condition in conditions
        }
        cardio_drugs = {
            drug for drugs in PRESCRIPTION_SPEC["Cardiovascular agents"].values() for drug in drugs
        }
        rows = [row for row in medium_table if row["symptom"] in circulatory]
        assert rows, "the sample should contain circulatory diagnoses"
        cardio_share = sum(1 for row in rows if row["prescription"] in cardio_drugs) / len(rows)
        assert cardio_share > 0.5
