"""Tests for the four data-level attack simulators."""

import pytest

from repro.attacks.addition import SubsetAdditionAttack
from repro.attacks.alteration import SubsetAlterationAttack
from repro.attacks.deletion import DeletionMode, SubsetDeletionAttack
from repro.attacks.generalization_attack import GeneralizationAttack


@pytest.fixture(scope="module")
def watermarked(protected_small):
    return protected_small.watermarked


class TestSubsetAlteration:
    def test_alters_requested_fraction(self, watermarked):
        result = SubsetAlterationAttack(0.3, seed=1).run(watermarked)
        assert result.rows_touched == round(0.3 * len(watermarked.table))
        assert len(result.attacked.table) == len(watermarked.table)

    def test_zero_fraction_is_noop(self, watermarked):
        result = SubsetAlterationAttack(0.0, seed=1).run(watermarked)
        assert result.rows_touched == 0
        assert result.attacked.table == watermarked.table

    def test_original_untouched(self, watermarked):
        before = watermarked.table.copy()
        SubsetAlterationAttack(0.5, seed=2).run(watermarked)
        assert watermarked.table == before

    def test_altered_values_stay_in_generalized_domain(self, watermarked):
        result = SubsetAlterationAttack(0.5, seed=3).run(watermarked)
        for column in watermarked.quasi_columns:
            tree = watermarked.tree(column)
            allowed = {tree.node(name).value for name in watermarked.ultimate_nodes[column]}
            assert set(result.attacked.table.column_values(column)) <= allowed

    def test_column_restriction(self, watermarked):
        result = SubsetAlterationAttack(0.5, seed=4, columns=("symptom",)).run(watermarked)
        assert result.attacked.table.column_values("age") == watermarked.table.column_values("age")

    def test_deterministic_per_seed(self, watermarked):
        a = SubsetAlterationAttack(0.4, seed=9).run(watermarked)
        b = SubsetAlterationAttack(0.4, seed=9).run(watermarked)
        c = SubsetAlterationAttack(0.4, seed=10).run(watermarked)
        assert a.attacked.table == b.attacked.table
        assert a.attacked.table != c.attacked.table

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            SubsetAlterationAttack(1.5)


class TestSubsetAddition:
    def test_adds_requested_fraction(self, watermarked):
        result = SubsetAdditionAttack(0.25, seed=1).run(watermarked)
        assert result.rows_touched == round(0.25 * len(watermarked.table))
        assert len(result.attacked.table) == len(watermarked.table) + result.rows_touched

    def test_bogus_rows_conform_to_schema_and_domain(self, watermarked):
        result = SubsetAdditionAttack(0.2, seed=2).run(watermarked)
        new_rows = result.attacked.table.rows[len(watermarked.table) :]
        for row in new_rows:
            assert set(row) == set(watermarked.table.schema.column_names)
            for column in watermarked.quasi_columns:
                tree = watermarked.tree(column)
                allowed = {tree.node(name).value for name in watermarked.ultimate_nodes[column]}
                assert row[column] in allowed

    def test_bogus_identifiers_are_new(self, watermarked):
        result = SubsetAdditionAttack(0.2, seed=3).run(watermarked)
        originals = set(watermarked.table.column_values("ssn"))
        new_rows = result.attacked.table.rows[len(watermarked.table) :]
        assert all(row["ssn"] not in originals for row in new_rows)

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            SubsetAdditionAttack(-0.1)

    def test_more_than_hundred_percent_allowed(self, watermarked):
        result = SubsetAdditionAttack(1.5, seed=4).run(watermarked)
        assert len(result.attacked.table) == len(watermarked.table) + round(1.5 * len(watermarked.table))


class TestSubsetDeletion:
    def test_random_mode_deletes_exact_count(self, watermarked):
        result = SubsetDeletionAttack(0.3, seed=1, mode=DeletionMode.RANDOM).run(watermarked)
        assert result.rows_touched == round(0.3 * len(watermarked.table))
        assert len(result.attacked.table) == len(watermarked.table) - result.rows_touched

    def test_range_mode_deletes_roughly_requested_share(self, watermarked):
        result = SubsetDeletionAttack(0.4, seed=2, mode=DeletionMode.IDENT_RANGES).run(watermarked)
        deleted = len(watermarked.table) - len(result.attacked.table)
        assert deleted == result.rows_touched
        assert 0.25 * len(watermarked.table) <= deleted <= 0.55 * len(watermarked.table)
        assert result.details["ranges"]

    def test_zero_fraction_is_noop(self, watermarked):
        result = SubsetDeletionAttack(0.0, seed=3).run(watermarked)
        assert result.rows_touched == 0
        assert len(result.attacked.table) == len(watermarked.table)

    def test_surviving_rows_are_original_rows(self, watermarked):
        result = SubsetDeletionAttack(0.5, seed=4, mode=DeletionMode.RANDOM).run(watermarked)
        original_ids = set(watermarked.table.column_values("ssn"))
        assert set(result.attacked.table.column_values("ssn")) <= original_ids

    def test_validation(self):
        with pytest.raises(ValueError):
            SubsetDeletionAttack(2.0)
        with pytest.raises(ValueError):
            SubsetDeletionAttack(0.5, n_ranges=0)


class TestGeneralizationAttack:
    def test_lifts_values_one_level(self, watermarked):
        result = GeneralizationAttack(levels=1).run(watermarked)
        assert result.rows_touched > 0
        assert result.details["cells_changed"] > 0
        for column in watermarked.quasi_columns:
            tree = watermarked.tree(column)
            for before, after in zip(
                watermarked.table.column_values(column), result.attacked.table.column_values(column)
            ):
                node_before = tree.value_to_node(before)
                node_after = tree.value_to_node(after)
                assert node_after is node_before or node_after.is_ancestor_of(node_before)

    def test_never_exceeds_maximal_frontier(self, watermarked):
        result = GeneralizationAttack(levels=5).run(watermarked)
        for column in watermarked.quasi_columns:
            tree = watermarked.tree(column)
            maximal = set(watermarked.maximal_node_objects(column))
            for value in result.attacked.table.column_values(column):
                node = tree.value_to_node(value)
                assert any(anchor is node or anchor.is_ancestor_of(node) for anchor in maximal)

    def test_column_restriction(self, watermarked):
        result = GeneralizationAttack(levels=1, columns=("doctor",)).run(watermarked)
        assert result.attacked.table.column_values("symptom") == watermarked.table.column_values("symptom")

    def test_idempotent_once_at_frontier(self, watermarked):
        once = GeneralizationAttack(levels=10).run(watermarked).attacked
        twice = GeneralizationAttack(levels=10).run(once).attacked
        assert once.table == twice.table

    def test_levels_validation(self):
        with pytest.raises(ValueError):
            GeneralizationAttack(levels=0)
