"""Tests for the rightful-ownership attacks (Figure 10)."""

import pytest

from repro.attacks.ownership_attacks import AdditiveMarkAttack, SubtractiveMarkAttack
from repro.watermarking.hierarchical import HierarchicalWatermarker
from repro.watermarking.mark import mark_loss


class TestAdditiveMarkAttack:
    def test_both_marks_detectable_after_attack(self, protection_framework, protected_small):
        """Attack 1 creates the ambiguity the dispute protocol must resolve."""
        attack = AdditiveMarkAttack(seed=1, eta=25, copies=4)
        result = attack.run(protected_small.watermarked, 20)
        # The owner's mark survives the attacker's embedding...
        owner_loss = protection_framework.mark_loss(result.attack.attacked, protected_small.mark)
        assert owner_loss <= 0.15
        # ...and the attacker's mark is present under the attacker's key.
        attacker_detector = HierarchicalWatermarker(result.attacker_key, copies=4)
        attacker_loss = mark_loss(
            result.attacker_mark, attacker_detector.detect(result.attack.attacked, 20).mark
        )
        assert attacker_loss <= 0.15

    def test_dispute_resolves_for_owner(self, protection_framework, protected_small):
        attack = AdditiveMarkAttack(seed=2, eta=25, copies=4)
        result = attack.run(protected_small.watermarked, 20)
        owner_claim = protection_framework.owner_claim("hospital")
        verdict = protection_framework.resolve_dispute(
            result.attack.attacked, [owner_claim, result.attacker_claim]
        )
        assert verdict.winner == "hospital"
        assert result.attacker_claim.claimant not in verdict.valid_claimants

    def test_attack_result_metadata(self, protected_small):
        result = AdditiveMarkAttack(seed=3, eta=25).run(protected_small.watermarked, 20)
        assert result.attack.rows_touched > 0
        assert "Attack 1" in result.attack.description
        assert result.attacker_claim.claimant == "attacker"

    def test_deterministic(self, protected_small):
        a = AdditiveMarkAttack(seed=7, eta=25).run(protected_small.watermarked, 20)
        b = AdditiveMarkAttack(seed=7, eta=25).run(protected_small.watermarked, 20)
        assert a.attacker_mark == b.attacker_mark
        assert a.attack.attacked.table == b.attack.attacked.table


class TestSubtractiveMarkAttack:
    def test_dispute_over_published_table_resolves_for_owner(
        self, protection_framework, protected_small
    ):
        attack = SubtractiveMarkAttack(seed=4, eta=25, copies=4)
        result = attack.run(protected_small.watermarked, 20)
        owner_claim = protection_framework.owner_claim("hospital")
        verdict = protection_framework.resolve_dispute(
            protected_small.watermarked, [owner_claim, result.attacker_claim]
        )
        assert verdict.winner == "hospital"

    def test_bogus_original_differs_from_published_table(self, protected_small):
        result = SubtractiveMarkAttack(seed=5, eta=25).run(protected_small.watermarked, 20)
        assert result.attack.attacked.table != protected_small.watermarked.table

    def test_attacker_cannot_decrypt_identifiers(self, protection_framework, protected_small):
        result = SubtractiveMarkAttack(seed=6, eta=25).run(protected_small.watermarked, 20)
        assessment = protection_framework.registry.assess_claim(
            protected_small.watermarked, result.attacker_claim
        )
        assert not assessment.valid
        assert not (assessment.decryption_ok and assessment.statistic_ok)
